"""Precomputed correlation index for fast repeated SPELL queries.

The paper's deployed SPELL "runs on a pre-defined collection of
microarray data through a web interface" — i.e. the compendium is static
and queries are interactive, which calls for precomputation.

The index stores, per dataset, a row-normalized matrix ``Xn`` (each row
z-scored over its observed values, missing entries zero-filled, then
scaled to unit norm).  Correlation against any gene then collapses to a
matrix-vector product ``Xn @ Xn[q]``.  With missing data this is an
*approximation* of pairwise-complete Pearson (exact when nothing is
missing); the ablation bench quantifies both the speedup and the rank
agreement against the exact engine.

Hot-path layout (see :mod:`repro.spell.arena`): the shards' normalized
rows live in one contiguous per-dtype arena whenever they are in-RAM
arrays, and ``search`` iterates zero-copy *views* of that one buffer
instead of a Python list of independent allocations; the three
universe-sized accumulators a query needs come from a per-thread
scratch pool instead of being allocated fresh every call.  Shards
reopened from the persistent store stay memory-mapped (fusing would
fault in every page and destroy the zero-copy cold start), in which
case the views are simply the per-shard maps.

:meth:`search_batch` is the batched kernel: it makes **one pass over
the arena per batch**, stacking every query's rows per dataset into a
single ``Xn @ Qall.T`` matmul and de-interleaving the per-query means,
instead of B independent passes.  Its rankings are bit-identical to
per-query :meth:`search` (each output column of the stacked matmul
depends only on its own query rows, and the per-query mean reduces the
same values in the same order) — asserted by the oracle tests and the
throughput bench.

Because each dataset's shard is independent, the index supports both a
parallel sharded :meth:`build` (normalization fanned over
``parallel_map``) and *incremental* maintenance: :meth:`add_dataset` /
:meth:`remove_dataset` splice one shard without touching the others, so
growing the compendium no longer forces a full rebuild.  Shards carry
their source dataset's content fingerprint, which is what the
persistent store (:mod:`repro.spell.store`) uses to rewrite only stale
shards and what :meth:`updated` falls back on to reuse shards across
processes (where object identity is useless).

Shards may be held in ``float32`` (``build(..., dtype=np.float32)``):
half the memory and faster matmuls, at the cost of last-digit score
differences against the float64 reference — the ablation bench
validates rank agreement between the two dtypes.  Aggregation always
accumulates in float64 regardless of shard dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.parallel.pmap import parallel_map
from repro.spell.arena import ScratchPool, ShardArena
from repro.spell.engine import (
    DatasetScore,
    SpellResult,
    MIN_QUERY_PRESENT,
    ranked_gene_table,
)
from repro.stats.correlation import fisher_z
from repro.util.errors import SearchError, ValidationError

__all__ = ["SpellIndex", "BatchQuery"]

#: Shard dtypes the index (and its on-disk store) supports.
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


@dataclass(frozen=True)
class BatchQuery:
    """One member of a :meth:`SpellIndex.search_batch` batch.

    Mirrors the per-call keywords of :meth:`SpellIndex.search` so each
    batch member can carry its own truncation and dataset filter.
    """

    genes: tuple[str, ...]
    top_k: int | None = None
    datasets: tuple[str, ...] | None = None


@dataclass
class _DatasetIndex:
    """One immutable shard.  ``source`` is the exact :class:`Dataset` the
    shard was normalized from — identity comparison against the live
    compendium detects same-name replacements that a name diff misses.
    ``fingerprint`` is the source dataset's content hash, the durable
    (cross-process) form of the same identity.

    ``normalized`` may be repointed (value-preserving) at an arena view
    when the owning index fuses its shards; every rebind keeps the exact
    same float values, so shard sharing across copy-on-write indexes
    stays sound.
    """

    name: str
    gene_ids: list[str]
    normalized: np.ndarray  # (genes, conditions) unit-norm rows, contiguous
    source: Dataset | None = None
    fingerprint: str | None = None
    _gene_pos: dict[str, int] | None = None

    @property
    def gene_pos(self) -> dict[str, int]:
        """gene id -> local row; built lazily (cold start never needs it)."""
        if self._gene_pos is None:
            self._gene_pos = {g: i for i, g in enumerate(self.gene_ids)}
        return self._gene_pos


def _index_dataset(ds: Dataset, dtype=np.float64) -> _DatasetIndex:
    """Normalize one dataset into its index shard (pure per-dataset work).

    Normalization always runs in float64; ``dtype`` only controls the
    stored (and therefore matmul) precision.
    """
    X = ds.matrix.values
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(X, axis=1, keepdims=True)
        std = np.nanstd(X, axis=1, keepdims=True)
    centered = X - mean
    z = np.divide(centered, std, out=np.zeros_like(centered), where=std > 0)
    z = np.where(np.isnan(X), 0.0, z)
    norms = np.sqrt((z * z).sum(axis=1, keepdims=True))
    z = np.divide(z, norms, out=np.zeros_like(z), where=norms > 0)
    return _DatasetIndex(
        name=ds.name,
        gene_ids=list(ds.matrix.gene_ids),
        normalized=np.ascontiguousarray(z, dtype=np.dtype(dtype)),
        source=ds,
        fingerprint=ds.fingerprint,
    )


class SpellIndex:
    """Search index over a compendium snapshot, maintained shard-by-shard.

    Build with :meth:`build` (optionally parallel across datasets);
    ``search`` answers queries without touching the raw datasets again.
    The index does not *watch* the compendium — callers keep it current
    through :meth:`add_dataset` / :meth:`remove_dataset` (in-place,
    single-threaded use) or :meth:`updated` (copy-on-write: returns a new
    index sharing unchanged shards, safe to swap in while other threads
    keep searching the old one — the discipline ``SpellService`` uses).
    """

    def __init__(self, entries: list[_DatasetIndex]) -> None:
        if not entries:
            raise SearchError("index is empty")
        self._entries = list(entries)
        self.dtype = np.dtype(self._entries[0].normalized.dtype)
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValidationError(f"unsupported shard dtype {self.dtype}")
        # Global gene universe: aggregation runs over dense arrays indexed
        # by universe slot instead of per-gene dicts (the old inner loop
        # was pure Python over every gene of every dataset and dominated
        # query time).  The universe only grows — removed datasets leave
        # their slots behind, which costs memory proportional to genes
        # ever seen but keeps every other shard's mapping valid.  Slot
        # tables and per-shard row maps are index-local so shards can be
        # shared between indexes (copy-on-write updates).
        self._gene_slot: dict[str, int] = {}
        self._slot_gene: list[str] = []
        self._slot_gene_arr: np.ndarray | None = None  # cache, rebuilt on growth
        self._global_rows: list[np.ndarray] = []  # parallel to _entries
        # per-shard inverse map (universe slot -> local row, -1 = absent);
        # sized to the universe at shard-registration time, so probes must
        # bounds-check slots assigned by later shards
        self._slot_to_row: list[np.ndarray] = []
        # Bulk slot assignment: one np.unique over every shard's gene list
        # instead of a per-gene Python dict probe — the cold-start path
        # (store load) spends its time here, and slot *numbering* is
        # irrelevant to results (each gene aggregates in its own slot and
        # the final ranking sorts by score/id).
        id_arrays = [np.asarray(e.gene_ids, dtype=str) for e in self._entries]
        uniq, inv = np.unique(np.concatenate(id_arrays), return_inverse=True)
        self._slot_gene = uniq.tolist()
        self._gene_slot = {g: i for i, g in enumerate(self._slot_gene)}
        n_slots = len(self._slot_gene)
        # datasets currently containing each slot's gene: slots are never
        # retired, so membership questions must consult this, not the
        # slot table (a gene unique to a removed dataset keeps its slot
        # but stops being live)
        self._slot_live = np.zeros(n_slots, dtype=np.int64)
        inv = np.asarray(inv, dtype=np.intp)
        offset = 0
        for arr in id_arrays:
            rows = inv[offset : offset + arr.shape[0]]
            offset += arr.shape[0]
            inverse = np.full(n_slots, -1, dtype=np.intp)
            inverse[rows] = np.arange(rows.shape[0], dtype=np.intp)
            self._global_rows.append(rows)
            self._slot_to_row.append(inverse)
            self._slot_live[rows] += 1
        # Fused arena: freshly-normalized shards' rows land in one
        # contiguous buffer and the entries are repointed
        # (value-preserving) at the views, so the per-shard allocations
        # are released and the scoring loop walks windows of a single
        # array.  Shards that are already arena views (copy-on-write
        # updated()) are reused without re-copying — an incremental sync
        # costs O(changed shards), not O(index bytes) — and
        # memory-mapped shards are left alone: fusing would fault in
        # every page and destroy the store's zero-copy cold start.
        self._arena = ShardArena([e.normalized for e in self._entries])
        if self._arena.fused:
            for entry, view in zip(self._entries, self._arena.views):
                entry.normalized = view
        self._scratch = ScratchPool()

    def _register(self, entry: _DatasetIndex) -> None:
        rows = np.empty(len(entry.gene_ids), dtype=np.intp)
        for i, g in enumerate(entry.gene_ids):
            slot = self._gene_slot.get(g)
            if slot is None:
                slot = len(self._slot_gene)
                self._gene_slot[g] = slot
                self._slot_gene.append(g)
            rows[i] = slot
        n_slots = len(self._slot_gene)
        inverse = np.full(n_slots, -1, dtype=np.intp)
        inverse[rows] = np.arange(len(entry.gene_ids), dtype=np.intp)
        self._global_rows.append(rows)
        self._slot_to_row.append(inverse)
        if self._slot_live.shape[0] < n_slots:
            grown = np.zeros(n_slots, dtype=np.int64)
            grown[: self._slot_live.shape[0]] = self._slot_live
            self._slot_live = grown
        self._slot_live[rows] += 1
        self._arena.append(entry.normalized)

    def _slot_ids(self) -> np.ndarray:
        """Universe slot -> gene id, as an array (cached; universe only grows)."""
        if self._slot_gene_arr is None or len(self._slot_gene_arr) != len(
            self._slot_gene
        ):
            self._slot_gene_arr = np.asarray(self._slot_gene)
        return self._slot_gene_arr

    @classmethod
    def build(
        cls, compendium: Compendium, *, n_workers: int = 1, dtype=np.float64
    ) -> "SpellIndex":
        """Index every dataset; ``n_workers > 1`` shards the normalization."""
        entries = parallel_map(
            partial(_index_dataset, dtype=dtype),
            list(compendium),
            n_workers=max(1, int(n_workers)),
        )
        return cls(entries)

    # ------------------------------------------------------------ maintenance
    def add_dataset(self, dataset: Dataset) -> None:
        """Index one new dataset in place — no rebuild of existing shards.

        In-place maintenance is not safe under concurrent ``search``
        calls; concurrent callers use :meth:`updated` instead.  A late
        shard stays outside the fused arena buffer (extending it would
        copy every live view); a fresh build or ``updated()`` re-fuses.
        """
        if dataset.name in self.dataset_names:
            raise ValidationError(f"dataset {dataset.name!r} already indexed")
        entry = _index_dataset(dataset, dtype=self.dtype)
        self._register(entry)
        self._entries.append(entry)

    def remove_dataset(self, name: str) -> None:
        """Drop one dataset's shard; other shards are untouched."""
        for i, entry in enumerate(self._entries):
            if entry.name == name:
                self._slot_live[self._global_rows[i]] -= 1
                del self._entries[i]
                del self._global_rows[i]
                del self._slot_to_row[i]
                self._arena.remove(i)
                return
        raise ValidationError(f"dataset {name!r} not in index")

    def updated(self, compendium: Compendium) -> "SpellIndex":
        """Copy-on-write sync: a new index matching ``compendium``.

        Shards are reused *by dataset identity* — a dataset re-added
        under the same name with different values gets re-normalized,
        which a name diff would miss.  Shards whose source identity is
        gone (e.g. an index reopened from the persistent store) are
        matched by content fingerprint instead, which is equivalent and
        survives process restarts.  The receiver is left untouched, so
        threads searching it mid-swap stay consistent; only genuinely
        new datasets pay normalization cost.
        """
        by_identity = {id(e.source): e for e in self._entries if e.source is not None}
        by_fingerprint = {
            (e.name, e.fingerprint): e
            for e in self._entries
            if e.fingerprint is not None
        }

        def match(ds: Dataset) -> _DatasetIndex:
            entry = by_identity.get(id(ds))
            if entry is None:
                entry = by_fingerprint.get((ds.name, ds.fingerprint))
            if entry is None:
                entry = _index_dataset(ds, dtype=self.dtype)
            elif entry.source is None:
                # bind the live dataset so future syncs match by identity
                entry.source = ds
            return entry

        return SpellIndex([match(ds) for ds in compendium])

    @property
    def dataset_names(self) -> list[str]:
        return [e.name for e in self._entries]

    @property
    def n_datasets(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        return self._arena.nbytes()

    def fingerprints(self) -> list[tuple[str, str | None]]:
        """Ordered ``(name, fingerprint)`` identity of every shard.

        This is the durable version token the multi-process serving pool
        compares against its own reopened store, so a stale worker index
        is detected (and resynced) rather than silently served.
        """
        return [(e.name, e.fingerprint) for e in self._entries]

    # -------------------------------------------------------- query resolution
    def _select(self, datasets: Sequence[str] | None) -> list[int]:
        """Shard indices a ``datasets`` filter admits (all, when ``None``)."""
        if datasets is None:
            return list(range(len(self._entries)))
        allowed = {str(d) for d in datasets}
        unknown = sorted(allowed - set(self.dataset_names))
        if unknown:
            raise SearchError(f"unknown dataset(s) in filter: {unknown}")
        return [i for i, e in enumerate(self._entries) if e.name in allowed]

    def _resolve_query(
        self,
        query: list[str],
        selected: list[int],
        *,
        filtered: bool,
    ) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray]:
        """Vectorized membership split: (query_used, query_missing, q_slots).

        Membership against the cached global universe — no per-gene scan
        over every shard (``_slot_live`` guards against slots whose only
        dataset was removed).  Under a dataset filter, membership means
        "present in a selected shard": one boolean scatter per selected
        shard plus a single gather, replacing the old per-gene ``any()``
        Python inner loop over ``_slot_to_row``.
        """
        slot_arr = np.fromiter(
            (self._gene_slot.get(g, -1) for g in query),
            dtype=np.intp,
            count=len(query),
        )
        known = slot_arr >= 0
        alive = np.zeros(len(query), dtype=bool)
        if filtered:
            mask = np.zeros(len(self._slot_gene), dtype=bool)
            for i in selected:
                mask[self._global_rows[i]] = True
            alive[known] = mask[slot_arr[known]]
        else:
            alive[known] = self._slot_live[slot_arr[known]] > 0
        query_used = tuple(g for g, a in zip(query, alive) if a)
        query_missing = tuple(g for g, a in zip(query, alive) if not a)
        return query_used, query_missing, slot_arr[alive]

    def _query_rows(self, i: int, q_slots: np.ndarray) -> np.ndarray:
        """Local rows of the query genes in shard ``i`` via the precomputed
        slot->row map (vectorized; bounds-checked for late-assigned slots)."""
        inverse = self._slot_to_row[i]
        local = np.full(q_slots.shape, -1, dtype=np.intp)
        in_range = q_slots < inverse.shape[0]
        local[in_range] = inverse[q_slots[in_range]]
        return local[local >= 0]

    def _weigh(self, i: int, rows: np.ndarray) -> tuple[float, np.ndarray]:
        """Coherence weight of shard ``i`` for query rows, plus the query
        submatrix ``Q`` (reused by the scoring matmul)."""
        Q = self._arena.views[i][rows]  # (q, cond) unit rows
        qcorr = np.clip(Q @ Q.T, -1.0, 1.0)
        iu = np.triu_indices(rows.shape[0], k=1)
        mean_r = float(np.tanh(np.mean(fisher_z(qcorr[iu]))))
        return max(0.0, mean_r) ** 2, Q

    def _finalize(
        self,
        query: list[str],
        query_used: tuple[str, ...],
        query_missing: tuple[str, ...],
        dataset_scores: list[DatasetScore],
        totals: np.ndarray,
        weight_mass: np.ndarray,
        counts: np.ndarray,
        q_slots: np.ndarray,
        *,
        exclude_query_from_genes: bool,
        top_k: int | None,
    ) -> SpellResult:
        """Rank the accumulated universe arrays into a :class:`SpellResult`.

        The gathered slices (``totals[scored]`` etc.) are fresh arrays,
        so the result never aliases pooled scratch.
        """
        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        scored = np.flatnonzero(counts)
        if exclude_query_from_genes:
            scored = scored[~np.isin(scored, q_slots)]
        with np.errstate(invalid="ignore", divide="ignore"):
            final = totals[scored] / weight_mass[scored]
        genes = ranked_gene_table(
            self._slot_ids()[scored], final, counts[scored], top_k=top_k
        )
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=genes,
        )

    @staticmethod
    def _validate_query(query) -> list[str]:
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        return query

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: list[str] | tuple[str, ...],
        *,
        exclude_query_from_genes: bool = True,
        top_k: int | None = None,
        datasets: list[str] | tuple[str, ...] | None = None,
    ) -> SpellResult:
        """SPELL search against the index; same output contract as the engine.

        ``top_k`` returns only the first ``k`` ranked genes (selected
        with ``argpartition``, bit-identical to the head of the full
        ranking) — the page-serving path, which skips sorting the whole
        gene universe.  ``result.total_genes`` still reports the full
        candidate count.  ``datasets`` restricts the search to the named
        shards: only they are weighted, only their genes aggregate, and
        query presence is judged against the filtered subset.
        """
        if not self._entries:
            raise SearchError("index is empty")
        query = self._validate_query(query)
        selected = self._select(datasets)
        query_used, query_missing, q_slots = self._resolve_query(
            query, selected, filtered=datasets is not None
        )
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")

        dataset_scores: list[DatasetScore] = []
        scratch = self._scratch.acquire()
        try:
            totals, weight_mass, counts = scratch.arrays(len(self._slot_gene))

            for i in selected:
                entry, slots = self._entries[i], self._global_rows[i]
                rows = self._query_rows(i, q_slots)
                if rows.shape[0] < MIN_QUERY_PRESENT:
                    dataset_scores.append(
                        DatasetScore(entry.name, 0.0, rows.shape[0])
                    )
                    continue
                weight, Q = self._weigh(i, rows)
                dataset_scores.append(DatasetScore(entry.name, weight, rows.shape[0]))
                if weight <= 0.0:
                    continue
                # all-gene scores in one matmul: mean corr to query rows;
                # scatter-add into the dense universe arrays (row slots are
                # unique within a dataset, so fancy-index += is safe)
                scores = np.clip(self._arena.views[i] @ Q.T, -1.0, 1.0).mean(
                    axis=1, dtype=np.float64
                )
                totals[slots] += weight * scores
                weight_mass[slots] += weight
                counts[slots] += 1

            return self._finalize(
                query, query_used, query_missing, dataset_scores,
                totals, weight_mass, counts, q_slots,
                exclude_query_from_genes=exclude_query_from_genes, top_k=top_k,
            )
        finally:
            self._scratch.release(scratch)

    # --------------------------------------------------------------- partials
    def search_partials(
        self,
        query: list[str] | tuple[str, ...],
        *,
        datasets: Sequence[str] | None = None,
    ):
        """Per-dataset contributions for the scatter-gather serving tier.

        Returns one :class:`~repro.spell.partials.DatasetPartial` per
        selected shard, in this index's shard order, *without* any
        cross-dataset aggregation: the coordinator replays the canonical
        accumulation itself (see :mod:`repro.spell.partials`), which is
        what keeps sharded rankings bit-identical to single-node search.
        Each partial's score vector is exactly the ``scores`` the
        single-node loop would scatter-add for that dataset — same
        matmul, same clip, same fixed-order float64 mean.

        Unlike :meth:`search`, a query with *no* gene in this shard is
        legal (the genes may live on other shards); it simply yields
        zero-weight partials.
        """
        from repro.spell.partials import DatasetPartial

        if not self._entries:
            raise SearchError("index is empty")
        query = self._validate_query(query)
        selected = self._select(datasets)
        # Slots of query genes known to this shard's universe; per-dataset
        # presence is judged by _query_rows exactly as single-node search
        # does (a gene absent from this shard is absent from every one of
        # its datasets, so the per-dataset row sets are unchanged).
        slot_arr = np.fromiter(
            (self._gene_slot.get(g, -1) for g in query),
            dtype=np.intp,
            count=len(query),
        )
        q_slots = slot_arr[slot_arr >= 0]

        partials = []
        for i in selected:
            entry = self._entries[i]
            rows = self._query_rows(i, q_slots)
            if rows.shape[0] < MIN_QUERY_PRESENT:
                partials.append(
                    DatasetPartial(entry.name, entry.fingerprint, rows.shape[0], 0.0, None)
                )
                continue
            weight, Q = self._weigh(i, rows)
            if weight <= 0.0:
                partials.append(
                    DatasetPartial(entry.name, entry.fingerprint, rows.shape[0], weight, None)
                )
                continue
            scores = np.clip(self._arena.views[i] @ Q.T, -1.0, 1.0).mean(
                axis=1, dtype=np.float64
            )
            partials.append(
                DatasetPartial(entry.name, entry.fingerprint, rows.shape[0], weight, scores)
            )
        return partials

    # ---------------------------------------------------------- batched search
    def search_batch(
        self,
        queries: Sequence[Sequence[str] | BatchQuery],
        *,
        exclude_query_from_genes: bool = True,
    ) -> list[SpellResult]:
        """Score a whole batch in one pass over the arena.

        Each member may be a plain gene sequence or a :class:`BatchQuery`
        carrying its own ``top_k`` / ``datasets`` filter.  Per dataset,
        every participating query's rows are stacked into a single
        ``Xn @ Qall.T`` matmul whose per-query column blocks are then
        averaged separately — B queries cost one BLAS dispatch per shard
        instead of B.  Results are bit-identical to calling
        :meth:`search` per member (all-or-nothing: any invalid member
        raises, answering none of them).
        """
        if not self._entries:
            raise SearchError("index is empty")
        specs = [
            q if isinstance(q, BatchQuery)
            else BatchQuery(genes=tuple(str(g) for g in q))
            for q in queries
        ]
        if not specs:
            return []

        n_slots = len(self._slot_gene)
        resolved: list[tuple[list[str], tuple, tuple, np.ndarray, list[int]]] = []
        for spec in specs:
            query = self._validate_query(spec.genes)
            selected = self._select(spec.datasets)
            query_used, query_missing, q_slots = self._resolve_query(
                query, selected, filtered=spec.datasets is not None
            )
            if not query_used:
                raise SearchError(f"no query gene exists in any dataset: {query}")
            resolved.append((query, query_used, query_missing, q_slots, selected))

        # phase 1 — weights: per (query, shard) coherence from the small
        # Q @ Q.T matmuls (identical code path to single search), and the
        # roster of positive-weight participants per shard
        B = len(specs)
        dataset_scores: list[list[DatasetScore]] = [[] for _ in range(B)]
        participants: dict[int, list[tuple[int, np.ndarray, float]]] = {}
        for qi, (_, _, _, q_slots, selected) in enumerate(resolved):
            for i in selected:
                entry = self._entries[i]
                rows = self._query_rows(i, q_slots)
                if rows.shape[0] < MIN_QUERY_PRESENT:
                    dataset_scores[qi].append(
                        DatasetScore(entry.name, 0.0, rows.shape[0])
                    )
                    continue
                weight, _ = self._weigh(i, rows)
                dataset_scores[qi].append(
                    DatasetScore(entry.name, weight, rows.shape[0])
                )
                if weight > 0.0:
                    participants.setdefault(i, []).append((qi, rows, weight))

        # phase 2 — one stacked matmul per shard, de-interleaved per query.
        # Shards ascend so each query's accumulation order matches the
        # single-query loop exactly (float addition is order-sensitive).
        # The B per-query accumulator triples come from the same
        # ScratchPool as single-query search (one pooled ScoreScratch
        # per batch member) instead of three fresh (B, n_slots)
        # allocations per batch; acquire/release is try/finally-guarded
        # so a failure mid-scoring (e.g. a bad top_k surfacing in
        # _finalize) can never leak buffers and silently regrow the
        # pool query after failed query.
        scratches = [self._scratch.acquire() for _ in range(B)]
        try:
            accum = [s.arrays(n_slots) for s in scratches]
            for i in sorted(participants):
                view = self._arena.views[i]
                roster = participants[i]
                Qall = np.concatenate([view[rows] for (_, rows, _) in roster], axis=0)
                big = np.clip(view @ Qall.T, -1.0, 1.0)
                slots = self._global_rows[i]
                col = 0
                for qi, rows, weight in roster:
                    q = rows.shape[0]
                    scores = big[:, col : col + q].mean(axis=1, dtype=np.float64)
                    col += q
                    totals, weight_mass, counts = accum[qi]
                    totals[slots] += weight * scores
                    weight_mass[slots] += weight
                    counts[slots] += 1

            # _finalize gathers copies, so the results outlive the
            # scratch buffers released below
            return [
                self._finalize(
                    query, query_used, query_missing, dataset_scores[qi],
                    accum[qi][0], accum[qi][1], accum[qi][2], q_slots,
                    exclude_query_from_genes=exclude_query_from_genes,
                    top_k=specs[qi].top_k,
                )
                for qi, (query, query_used, query_missing, q_slots, _) in enumerate(resolved)
            ]
        finally:
            for scratch in scratches:
                self._scratch.release(scratch)
