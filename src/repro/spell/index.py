"""Precomputed correlation index for fast repeated SPELL queries.

The paper's deployed SPELL "runs on a pre-defined collection of
microarray data through a web interface" — i.e. the compendium is static
and queries are interactive, which calls for precomputation.

The index stores, per dataset, a row-normalized matrix ``Xn`` (each row
z-scored over its observed values, missing entries zero-filled, then
scaled to unit norm).  Correlation against any gene then collapses to a
matrix-vector product ``Xn @ Xn[q]``.  With missing data this is an
*approximation* of pairwise-complete Pearson (exact when nothing is
missing); the ablation bench quantifies both the speedup and the rank
agreement against the exact engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.compendium import Compendium
from repro.spell.engine import DatasetScore, GeneScore, SpellResult, MIN_QUERY_PRESENT
from repro.stats.correlation import fisher_z
from repro.util.errors import SearchError

__all__ = ["SpellIndex"]


@dataclass
class _DatasetIndex:
    name: str
    gene_ids: list[str]
    gene_pos: dict[str, int]
    normalized: np.ndarray  # (genes, conditions) unit-norm rows, contiguous


class SpellIndex:
    """Immutable search index over a compendium snapshot.

    Build once with :meth:`build`; ``search`` answers queries without
    touching the raw datasets again.  The index does not track later
    compendium mutations — rebuild after adding datasets.
    """

    def __init__(self, entries: list[_DatasetIndex]) -> None:
        if not entries:
            raise SearchError("index is empty")
        self._entries = entries

    @classmethod
    def build(cls, compendium: Compendium) -> "SpellIndex":
        entries: list[_DatasetIndex] = []
        for ds in compendium:
            X = ds.matrix.values
            with np.errstate(invalid="ignore"):
                mean = np.nanmean(X, axis=1, keepdims=True)
                std = np.nanstd(X, axis=1, keepdims=True)
            centered = X - mean
            z = np.divide(centered, std, out=np.zeros_like(centered), where=std > 0)
            z = np.where(np.isnan(X), 0.0, z)
            norms = np.sqrt((z * z).sum(axis=1, keepdims=True))
            z = np.divide(z, norms, out=np.zeros_like(z), where=norms > 0)
            entries.append(
                _DatasetIndex(
                    name=ds.name,
                    gene_ids=list(ds.matrix.gene_ids),
                    gene_pos={g: i for i, g in enumerate(ds.matrix.gene_ids)},
                    normalized=np.ascontiguousarray(z),
                )
            )
        return cls(entries)

    @property
    def n_datasets(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        return sum(e.normalized.nbytes for e in self._entries)

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: list[str] | tuple[str, ...],
        *,
        exclude_query_from_genes: bool = True,
    ) -> SpellResult:
        """SPELL search against the index; same output contract as the engine."""
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        query_used = tuple(
            g for g in query if any(g in e.gene_pos for e in self._entries)
        )
        query_missing = tuple(g for g in query if g not in set(query_used))
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")

        dataset_scores: list[DatasetScore] = []
        totals: dict[str, float] = {}
        weight_mass: dict[str, float] = {}
        counts: dict[str, int] = {}
        query_set = set(query_used)

        for entry in self._entries:
            present = [g for g in query_used if g in entry.gene_pos]
            if len(present) < MIN_QUERY_PRESENT:
                dataset_scores.append(DatasetScore(entry.name, 0.0, len(present)))
                continue
            rows = np.asarray([entry.gene_pos[g] for g in present], dtype=np.intp)
            Q = entry.normalized[rows]  # (q, cond) unit rows
            qcorr = np.clip(Q @ Q.T, -1.0, 1.0)
            iu = np.triu_indices(len(present), k=1)
            mean_r = float(np.tanh(np.mean(fisher_z(qcorr[iu]))))
            weight = max(0.0, mean_r) ** 2
            dataset_scores.append(DatasetScore(entry.name, weight, len(present)))
            if weight <= 0.0:
                continue
            # all-gene scores in one matmul: mean corr to query rows
            scores = np.clip(entry.normalized @ Q.T, -1.0, 1.0).mean(axis=1)
            for g, s in zip(entry.gene_ids, scores):
                totals[g] = totals.get(g, 0.0) + weight * float(s)
                weight_mass[g] = weight_mass.get(g, 0.0) + weight
                counts[g] = counts.get(g, 0) + 1

        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        gene_scores = [
            GeneScore(gene_id=g, score=totals[g] / weight_mass[g], n_datasets=counts[g])
            for g in totals
            if not (exclude_query_from_genes and g in query_set)
        ]
        gene_scores.sort(key=lambda s: (-s.score, s.gene_id))
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=tuple(gene_scores),
        )
