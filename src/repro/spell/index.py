"""Precomputed correlation index for fast repeated SPELL queries.

The paper's deployed SPELL "runs on a pre-defined collection of
microarray data through a web interface" — i.e. the compendium is static
and queries are interactive, which calls for precomputation.

The index stores, per dataset, a row-normalized matrix ``Xn`` (each row
z-scored over its observed values, missing entries zero-filled, then
scaled to unit norm).  Correlation against any gene then collapses to a
matrix-vector product ``Xn @ Xn[q]``.  With missing data this is an
*approximation* of pairwise-complete Pearson (exact when nothing is
missing); the ablation bench quantifies both the speedup and the rank
agreement against the exact engine.

Because each dataset's shard is independent, the index supports both a
parallel sharded :meth:`build` (normalization fanned over
``parallel_map``) and *incremental* maintenance: :meth:`add_dataset` /
:meth:`remove_dataset` splice one shard without touching the others, so
growing the compendium no longer forces a full rebuild.  Shards carry
their source dataset's content fingerprint, which is what the
persistent store (:mod:`repro.spell.store`) uses to rewrite only stale
shards and what :meth:`updated` falls back on to reuse shards across
processes (where object identity is useless).

Shards may be held in ``float32`` (``build(..., dtype=np.float32)``):
half the memory and faster matmuls, at the cost of last-digit score
differences against the float64 reference — the ablation bench
validates rank agreement between the two dtypes.  Aggregation always
accumulates in float64 regardless of shard dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.parallel.pmap import parallel_map
from repro.spell.engine import (
    DatasetScore,
    SpellResult,
    MIN_QUERY_PRESENT,
    ranked_gene_table,
)
from repro.stats.correlation import fisher_z
from repro.util.errors import SearchError, ValidationError

__all__ = ["SpellIndex"]

#: Shard dtypes the index (and its on-disk store) supports.
SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


@dataclass
class _DatasetIndex:
    """One immutable shard.  ``source`` is the exact :class:`Dataset` the
    shard was normalized from — identity comparison against the live
    compendium detects same-name replacements that a name diff misses.
    ``fingerprint`` is the source dataset's content hash, the durable
    (cross-process) form of the same identity."""

    name: str
    gene_ids: list[str]
    normalized: np.ndarray  # (genes, conditions) unit-norm rows, contiguous
    source: Dataset | None = None
    fingerprint: str | None = None
    _gene_pos: dict[str, int] | None = None

    @property
    def gene_pos(self) -> dict[str, int]:
        """gene id -> local row; built lazily (cold start never needs it)."""
        if self._gene_pos is None:
            self._gene_pos = {g: i for i, g in enumerate(self.gene_ids)}
        return self._gene_pos


def _index_dataset(ds: Dataset, dtype=np.float64) -> _DatasetIndex:
    """Normalize one dataset into its index shard (pure per-dataset work).

    Normalization always runs in float64; ``dtype`` only controls the
    stored (and therefore matmul) precision.
    """
    X = ds.matrix.values
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(X, axis=1, keepdims=True)
        std = np.nanstd(X, axis=1, keepdims=True)
    centered = X - mean
    z = np.divide(centered, std, out=np.zeros_like(centered), where=std > 0)
    z = np.where(np.isnan(X), 0.0, z)
    norms = np.sqrt((z * z).sum(axis=1, keepdims=True))
    z = np.divide(z, norms, out=np.zeros_like(z), where=norms > 0)
    return _DatasetIndex(
        name=ds.name,
        gene_ids=list(ds.matrix.gene_ids),
        normalized=np.ascontiguousarray(z, dtype=np.dtype(dtype)),
        source=ds,
        fingerprint=ds.fingerprint,
    )


class SpellIndex:
    """Search index over a compendium snapshot, maintained shard-by-shard.

    Build with :meth:`build` (optionally parallel across datasets);
    ``search`` answers queries without touching the raw datasets again.
    The index does not *watch* the compendium — callers keep it current
    through :meth:`add_dataset` / :meth:`remove_dataset` (in-place,
    single-threaded use) or :meth:`updated` (copy-on-write: returns a new
    index sharing unchanged shards, safe to swap in while other threads
    keep searching the old one — the discipline ``SpellService`` uses).
    """

    def __init__(self, entries: list[_DatasetIndex]) -> None:
        if not entries:
            raise SearchError("index is empty")
        self._entries = list(entries)
        self.dtype = np.dtype(self._entries[0].normalized.dtype)
        if self.dtype not in SUPPORTED_DTYPES:
            raise ValidationError(f"unsupported shard dtype {self.dtype}")
        # Global gene universe: aggregation runs over dense arrays indexed
        # by universe slot instead of per-gene dicts (the old inner loop
        # was pure Python over every gene of every dataset and dominated
        # query time).  The universe only grows — removed datasets leave
        # their slots behind, which costs memory proportional to genes
        # ever seen but keeps every other shard's mapping valid.  Slot
        # tables and per-shard row maps are index-local so shards can be
        # shared between indexes (copy-on-write updates).
        self._gene_slot: dict[str, int] = {}
        self._slot_gene: list[str] = []
        self._slot_gene_arr: np.ndarray | None = None  # cache, rebuilt on growth
        self._global_rows: list[np.ndarray] = []  # parallel to _entries
        # per-shard inverse map (universe slot -> local row, -1 = absent);
        # sized to the universe at shard-registration time, so probes must
        # bounds-check slots assigned by later shards
        self._slot_to_row: list[np.ndarray] = []
        # Bulk slot assignment: one np.unique over every shard's gene list
        # instead of a per-gene Python dict probe — the cold-start path
        # (store load) spends its time here, and slot *numbering* is
        # irrelevant to results (each gene aggregates in its own slot and
        # the final ranking sorts by score/id).
        id_arrays = [np.asarray(e.gene_ids, dtype=str) for e in self._entries]
        uniq, inv = np.unique(np.concatenate(id_arrays), return_inverse=True)
        self._slot_gene = uniq.tolist()
        self._gene_slot = {g: i for i, g in enumerate(self._slot_gene)}
        n_slots = len(self._slot_gene)
        # datasets currently containing each slot's gene: slots are never
        # retired, so membership questions must consult this, not the
        # slot table (a gene unique to a removed dataset keeps its slot
        # but stops being live)
        self._slot_live = np.zeros(n_slots, dtype=np.int64)
        inv = np.asarray(inv, dtype=np.intp)
        offset = 0
        for arr in id_arrays:
            rows = inv[offset : offset + arr.shape[0]]
            offset += arr.shape[0]
            inverse = np.full(n_slots, -1, dtype=np.intp)
            inverse[rows] = np.arange(rows.shape[0], dtype=np.intp)
            self._global_rows.append(rows)
            self._slot_to_row.append(inverse)
            self._slot_live[rows] += 1

    def _register(self, entry: _DatasetIndex) -> None:
        rows = np.empty(len(entry.gene_ids), dtype=np.intp)
        for i, g in enumerate(entry.gene_ids):
            slot = self._gene_slot.get(g)
            if slot is None:
                slot = len(self._slot_gene)
                self._gene_slot[g] = slot
                self._slot_gene.append(g)
            rows[i] = slot
        n_slots = len(self._slot_gene)
        inverse = np.full(n_slots, -1, dtype=np.intp)
        inverse[rows] = np.arange(len(entry.gene_ids), dtype=np.intp)
        self._global_rows.append(rows)
        self._slot_to_row.append(inverse)
        if self._slot_live.shape[0] < n_slots:
            grown = np.zeros(n_slots, dtype=np.int64)
            grown[: self._slot_live.shape[0]] = self._slot_live
            self._slot_live = grown
        self._slot_live[rows] += 1

    def _slot_ids(self) -> np.ndarray:
        """Universe slot -> gene id, as an array (cached; universe only grows)."""
        if self._slot_gene_arr is None or len(self._slot_gene_arr) != len(
            self._slot_gene
        ):
            self._slot_gene_arr = np.asarray(self._slot_gene)
        return self._slot_gene_arr

    @classmethod
    def build(
        cls, compendium: Compendium, *, n_workers: int = 1, dtype=np.float64
    ) -> "SpellIndex":
        """Index every dataset; ``n_workers > 1`` shards the normalization."""
        entries = parallel_map(
            partial(_index_dataset, dtype=dtype),
            list(compendium),
            n_workers=max(1, int(n_workers)),
        )
        return cls(entries)

    # ------------------------------------------------------------ maintenance
    def add_dataset(self, dataset: Dataset) -> None:
        """Index one new dataset in place — no rebuild of existing shards.

        In-place maintenance is not safe under concurrent ``search``
        calls; concurrent callers use :meth:`updated` instead.
        """
        if dataset.name in self.dataset_names:
            raise ValidationError(f"dataset {dataset.name!r} already indexed")
        entry = _index_dataset(dataset, dtype=self.dtype)
        self._register(entry)
        self._entries.append(entry)

    def remove_dataset(self, name: str) -> None:
        """Drop one dataset's shard; other shards are untouched."""
        for i, entry in enumerate(self._entries):
            if entry.name == name:
                self._slot_live[self._global_rows[i]] -= 1
                del self._entries[i]
                del self._global_rows[i]
                del self._slot_to_row[i]
                return
        raise ValidationError(f"dataset {name!r} not in index")

    def updated(self, compendium: Compendium) -> "SpellIndex":
        """Copy-on-write sync: a new index matching ``compendium``.

        Shards are reused *by dataset identity* — a dataset re-added
        under the same name with different values gets re-normalized,
        which a name diff would miss.  Shards whose source identity is
        gone (e.g. an index reopened from the persistent store) are
        matched by content fingerprint instead, which is equivalent and
        survives process restarts.  The receiver is left untouched, so
        threads searching it mid-swap stay consistent; only genuinely
        new datasets pay normalization cost.
        """
        by_identity = {id(e.source): e for e in self._entries if e.source is not None}
        by_fingerprint = {
            (e.name, e.fingerprint): e
            for e in self._entries
            if e.fingerprint is not None
        }

        def match(ds: Dataset) -> _DatasetIndex:
            entry = by_identity.get(id(ds))
            if entry is None:
                entry = by_fingerprint.get((ds.name, ds.fingerprint))
            if entry is None:
                entry = _index_dataset(ds, dtype=self.dtype)
            elif entry.source is None:
                # bind the live dataset so future syncs match by identity
                entry.source = ds
            return entry

        return SpellIndex([match(ds) for ds in compendium])

    @property
    def dataset_names(self) -> list[str]:
        return [e.name for e in self._entries]

    @property
    def n_datasets(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        return sum(e.normalized.nbytes for e in self._entries)

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: list[str] | tuple[str, ...],
        *,
        exclude_query_from_genes: bool = True,
        top_k: int | None = None,
        datasets: list[str] | tuple[str, ...] | None = None,
    ) -> SpellResult:
        """SPELL search against the index; same output contract as the engine.

        ``top_k`` returns only the first ``k`` ranked genes (selected
        with ``argpartition``, bit-identical to the head of the full
        ranking) — the page-serving path, which skips sorting the whole
        gene universe.  ``result.total_genes`` still reports the full
        candidate count.  ``datasets`` restricts the search to the named
        shards: only they are weighted, only their genes aggregate, and
        query presence is judged against the filtered subset.
        """
        if not self._entries:
            raise SearchError("index is empty")
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        if datasets is None:
            selected = list(range(len(self._entries)))
        else:
            allowed = {str(d) for d in datasets}
            unknown = sorted(allowed - set(self.dataset_names))
            if unknown:
                raise SearchError(f"unknown dataset(s) in filter: {unknown}")
            selected = [i for i, e in enumerate(self._entries) if e.name in allowed]

        # membership against the cached global universe — no per-gene scan
        # over every shard, and no rebuilt membership set (_slot_live
        # guards against slots whose only dataset was removed).  Under a
        # dataset filter, membership means "present in a selected shard".
        def live(g: str) -> bool:
            slot = self._gene_slot.get(g)
            if slot is None or self._slot_live[slot] <= 0:
                return False
            if datasets is None:
                return True
            return any(
                slot < self._slot_to_row[i].shape[0] and self._slot_to_row[i][slot] >= 0
                for i in selected
            )

        query_used = tuple(g for g in query if live(g))
        query_missing = tuple(g for g in query if not live(g))
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")
        q_slots = np.fromiter(
            (self._gene_slot[g] for g in query_used), dtype=np.intp, count=len(query_used)
        )

        dataset_scores: list[DatasetScore] = []
        n_slots = len(self._slot_gene)
        totals = np.zeros(n_slots)
        weight_mass = np.zeros(n_slots)
        counts = np.zeros(n_slots, dtype=np.intp)

        for i in selected:
            entry, slots, inverse = (
                self._entries[i],
                self._global_rows[i],
                self._slot_to_row[i],
            )
            # local rows of the query genes via the precomputed slot->row
            # map (vectorized; replaces per-gene gene_pos dict probing)
            local = np.full(q_slots.shape, -1, dtype=np.intp)
            in_range = q_slots < inverse.shape[0]
            local[in_range] = inverse[q_slots[in_range]]
            rows = local[local >= 0]
            if rows.shape[0] < MIN_QUERY_PRESENT:
                dataset_scores.append(DatasetScore(entry.name, 0.0, rows.shape[0]))
                continue
            Q = entry.normalized[rows]  # (q, cond) unit rows
            qcorr = np.clip(Q @ Q.T, -1.0, 1.0)
            iu = np.triu_indices(rows.shape[0], k=1)
            mean_r = float(np.tanh(np.mean(fisher_z(qcorr[iu]))))
            weight = max(0.0, mean_r) ** 2
            dataset_scores.append(DatasetScore(entry.name, weight, rows.shape[0]))
            if weight <= 0.0:
                continue
            # all-gene scores in one matmul: mean corr to query rows;
            # scatter-add into the dense universe arrays (row slots are
            # unique within a dataset, so fancy-index += is safe)
            scores = np.clip(entry.normalized @ Q.T, -1.0, 1.0).mean(
                axis=1, dtype=np.float64
            )
            totals[slots] += weight * scores
            weight_mass[slots] += weight
            counts[slots] += 1

        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        scored = np.flatnonzero(counts)
        if exclude_query_from_genes:
            scored = scored[~np.isin(scored, q_slots)]
        with np.errstate(invalid="ignore", divide="ignore"):
            final = totals[scored] / weight_mass[scored]
        genes = ranked_gene_table(
            self._slot_ids()[scored], final, counts[scored], top_k=top_k
        )
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=genes,
        )
