"""Precomputed correlation index for fast repeated SPELL queries.

The paper's deployed SPELL "runs on a pre-defined collection of
microarray data through a web interface" — i.e. the compendium is static
and queries are interactive, which calls for precomputation.

The index stores, per dataset, a row-normalized matrix ``Xn`` (each row
z-scored over its observed values, missing entries zero-filled, then
scaled to unit norm).  Correlation against any gene then collapses to a
matrix-vector product ``Xn @ Xn[q]``.  With missing data this is an
*approximation* of pairwise-complete Pearson (exact when nothing is
missing); the ablation bench quantifies both the speedup and the rank
agreement against the exact engine.

Because each dataset's shard is independent, the index supports both a
parallel sharded :meth:`build` (normalization fanned over
``parallel_map``) and *incremental* maintenance: :meth:`add_dataset` /
:meth:`remove_dataset` splice one shard without touching the others, so
growing the compendium no longer forces a full rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.parallel.pmap import parallel_map
from repro.spell.engine import DatasetScore, GeneScore, SpellResult, MIN_QUERY_PRESENT
from repro.stats.correlation import fisher_z
from repro.util.errors import SearchError, ValidationError

__all__ = ["SpellIndex"]


@dataclass
class _DatasetIndex:
    """One immutable shard.  ``source`` is the exact :class:`Dataset` the
    shard was normalized from — identity comparison against the live
    compendium detects same-name replacements that a name diff misses."""

    name: str
    gene_ids: list[str]
    gene_pos: dict[str, int]
    normalized: np.ndarray  # (genes, conditions) unit-norm rows, contiguous
    source: Dataset | None = None


def _index_dataset(ds: Dataset) -> _DatasetIndex:
    """Normalize one dataset into its index shard (pure per-dataset work)."""
    X = ds.matrix.values
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(X, axis=1, keepdims=True)
        std = np.nanstd(X, axis=1, keepdims=True)
    centered = X - mean
    z = np.divide(centered, std, out=np.zeros_like(centered), where=std > 0)
    z = np.where(np.isnan(X), 0.0, z)
    norms = np.sqrt((z * z).sum(axis=1, keepdims=True))
    z = np.divide(z, norms, out=np.zeros_like(z), where=norms > 0)
    return _DatasetIndex(
        name=ds.name,
        gene_ids=list(ds.matrix.gene_ids),
        gene_pos={g: i for i, g in enumerate(ds.matrix.gene_ids)},
        normalized=np.ascontiguousarray(z),
        source=ds,
    )


class SpellIndex:
    """Search index over a compendium snapshot, maintained shard-by-shard.

    Build with :meth:`build` (optionally parallel across datasets);
    ``search`` answers queries without touching the raw datasets again.
    The index does not *watch* the compendium — callers keep it current
    through :meth:`add_dataset` / :meth:`remove_dataset` (in-place,
    single-threaded use) or :meth:`updated` (copy-on-write: returns a new
    index sharing unchanged shards, safe to swap in while other threads
    keep searching the old one — the discipline ``SpellService`` uses).
    """

    def __init__(self, entries: list[_DatasetIndex]) -> None:
        if not entries:
            raise SearchError("index is empty")
        self._entries = list(entries)
        # Global gene universe: aggregation runs over dense arrays indexed
        # by universe slot instead of per-gene dicts (the old inner loop
        # was pure Python over every gene of every dataset and dominated
        # query time).  The universe only grows — removed datasets leave
        # their slots behind, which costs memory proportional to genes
        # ever seen but keeps every other shard's mapping valid.  Slot
        # tables and per-shard row maps are index-local so shards can be
        # shared between indexes (copy-on-write updates).
        self._gene_slot: dict[str, int] = {}
        self._slot_gene: list[str] = []
        self._global_rows: list[np.ndarray] = []  # parallel to _entries
        for entry in self._entries:
            self._global_rows.append(self._assign_slots(entry))

    def _assign_slots(self, entry: _DatasetIndex) -> np.ndarray:
        rows = np.empty(len(entry.gene_ids), dtype=np.intp)
        for i, g in enumerate(entry.gene_ids):
            slot = self._gene_slot.get(g)
            if slot is None:
                slot = len(self._slot_gene)
                self._gene_slot[g] = slot
                self._slot_gene.append(g)
            rows[i] = slot
        return rows

    @classmethod
    def build(cls, compendium: Compendium, *, n_workers: int = 1) -> "SpellIndex":
        """Index every dataset; ``n_workers > 1`` shards the normalization."""
        entries = parallel_map(
            _index_dataset, list(compendium), n_workers=max(1, int(n_workers))
        )
        return cls(entries)

    # ------------------------------------------------------------ maintenance
    def add_dataset(self, dataset: Dataset) -> None:
        """Index one new dataset in place — no rebuild of existing shards.

        In-place maintenance is not safe under concurrent ``search``
        calls; concurrent callers use :meth:`updated` instead.
        """
        if dataset.name in self.dataset_names:
            raise ValidationError(f"dataset {dataset.name!r} already indexed")
        entry = _index_dataset(dataset)
        self._global_rows.append(self._assign_slots(entry))
        self._entries.append(entry)

    def remove_dataset(self, name: str) -> None:
        """Drop one dataset's shard; other shards are untouched."""
        for i, entry in enumerate(self._entries):
            if entry.name == name:
                del self._entries[i]
                del self._global_rows[i]
                return
        raise ValidationError(f"dataset {name!r} not in index")

    def updated(self, compendium: Compendium) -> "SpellIndex":
        """Copy-on-write sync: a new index matching ``compendium``.

        Shards are reused *by dataset identity* — a dataset re-added
        under the same name with different values gets re-normalized,
        which a name diff would miss.  The receiver is left untouched,
        so threads searching it mid-swap stay consistent; only genuinely
        new datasets pay normalization cost.
        """
        by_identity = {id(e.source): e for e in self._entries if e.source is not None}
        entries = [
            by_identity.get(id(ds)) or _index_dataset(ds) for ds in compendium
        ]
        return SpellIndex(entries)

    @property
    def dataset_names(self) -> list[str]:
        return [e.name for e in self._entries]

    @property
    def n_datasets(self) -> int:
        return len(self._entries)

    def nbytes(self) -> int:
        return sum(e.normalized.nbytes for e in self._entries)

    # ----------------------------------------------------------------- search
    def search(
        self,
        query: list[str] | tuple[str, ...],
        *,
        exclude_query_from_genes: bool = True,
    ) -> SpellResult:
        """SPELL search against the index; same output contract as the engine."""
        if not self._entries:
            raise SearchError("index is empty")
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        query_used = tuple(
            g for g in query if any(g in e.gene_pos for e in self._entries)
        )
        query_missing = tuple(g for g in query if g not in set(query_used))
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")

        dataset_scores: list[DatasetScore] = []
        n_slots = len(self._slot_gene)
        totals = np.zeros(n_slots)
        weight_mass = np.zeros(n_slots)
        counts = np.zeros(n_slots, dtype=np.intp)
        query_set = set(query_used)

        for entry, slots in zip(self._entries, self._global_rows):
            present = [g for g in query_used if g in entry.gene_pos]
            if len(present) < MIN_QUERY_PRESENT:
                dataset_scores.append(DatasetScore(entry.name, 0.0, len(present)))
                continue
            rows = np.asarray([entry.gene_pos[g] for g in present], dtype=np.intp)
            Q = entry.normalized[rows]  # (q, cond) unit rows
            qcorr = np.clip(Q @ Q.T, -1.0, 1.0)
            iu = np.triu_indices(len(present), k=1)
            mean_r = float(np.tanh(np.mean(fisher_z(qcorr[iu]))))
            weight = max(0.0, mean_r) ** 2
            dataset_scores.append(DatasetScore(entry.name, weight, len(present)))
            if weight <= 0.0:
                continue
            # all-gene scores in one matmul: mean corr to query rows;
            # scatter-add into the dense universe arrays (row slots are
            # unique within a dataset, so fancy-index += is safe)
            scores = np.clip(entry.normalized @ Q.T, -1.0, 1.0).mean(axis=1)
            totals[slots] += weight * scores
            weight_mass[slots] += weight
            counts[slots] += 1

        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        scored = np.flatnonzero(counts)
        with np.errstate(invalid="ignore", divide="ignore"):
            final = totals[scored] / weight_mass[scored]
        gene_scores = [
            GeneScore(gene_id=g, score=float(s), n_datasets=int(n))
            for g, s, n in zip(
                (self._slot_gene[i] for i in scored), final, counts[scored]
            )
            if not (exclude_query_from_genes and g in query_set)
        ]
        gene_scores.sort(key=lambda s: (-s.score, s.gene_id))
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=tuple(gene_scores),
        )
