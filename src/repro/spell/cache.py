"""Result caching for the SPELL query service.

The deployed SPELL answers many users over one fixed compendium, and the
same handful of queries recur ("popular gene sets"); memoizing results is
the cheapest scaling lever.  Keys are *canonicalized*: the gene set is
deduped and sorted so that ``["B", "A"]`` and ``["A", "B"]`` share one
entry, and paging parameters are part of the key only for paged lookups.
Every key also embeds the compendium's version token, so a mutation
(dataset added/removed/reordered) silently invalidates all prior entries
— stale answers miss, then age out of the LRU.

A cached :class:`~repro.spell.engine.SpellResult` stores the canonical
gene order; :func:`rebind_result` restates the query-attribution fields
in the caller's original order before serving, so hits are
indistinguishable from fresh computes.  Results carry their gene
ranking as an array-backed :class:`~repro.spell.engine.GeneTable`;
rebinding never touches it, so a hit costs three tuple rebuilds no
matter how many genes the ranking holds.  Top-k (truncated) results are
keyed with ``extra=("top_k", k)`` so a partial ranking can never be
served where a full one was requested.

**Admission policy**: under heavy traffic most queries are one-offs;
letting every result in churns the LRU and evicts the hot gene sets the
cache exists for.  ``QueryCache(min_cost=...)`` only *admits* results
whose cost — the candidate-gene-universe size the search had to rank,
passed by the caller as ``cost=`` — meets the threshold; cheap results
are recomputed on demand instead of displacing expensive ones.
Admission and rejection are counted (and per-entry hit counts tracked)
so ``/v1/health`` can report how the policy behaves in production.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import Sequence

from repro.spell.engine import SpellResult
from repro.util.lru import LruCache

__all__ = ["canonical_query", "query_key", "rebind_result", "QueryCache"]

#: Default number of cached results per service.
DEFAULT_CACHE_SIZE = 256


def canonical_query(query: Sequence[str]) -> tuple[str, ...]:
    """Deduped, sorted gene tuple — the order-insensitive cache identity."""
    return tuple(sorted({str(g) for g in query}))


def query_key(
    version: int,
    query: Sequence[str],
    *,
    extra: tuple = (),
) -> tuple:
    """Full cache key: compendium version + canonical genes + extras.

    ``extra`` carries anything else that changes the answer (page,
    page_size, top_datasets, index vs engine path, ...).
    """
    return (int(version), canonical_query(query), tuple(extra))


def rebind_result(result: SpellResult, query: Sequence[str]) -> SpellResult:
    """Restate a cached result's query-attribution fields for ``query``.

    Rankings (datasets, genes) are order-independent and reused verbatim;
    only ``query``/``query_used``/``query_missing`` follow the caller's
    gene order.
    """
    query = tuple(str(g) for g in query)
    used = set(result.query_used)
    return replace(
        result,
        query=query,
        query_used=tuple(g for g in query if g in used),
        query_missing=tuple(g for g in query if g not in used),
    )


class QueryCache:
    """LRU of SPELL answers keyed on canonicalized queries.

    Thin wrapper over :class:`repro.util.lru.LruCache` that owns the key
    discipline (the service never builds keys by hand) plus the
    *admission* discipline: with ``min_cost > 0``, :meth:`store` only
    admits values whose ``cost`` (for SPELL results, the candidate gene
    universe the search ranked) meets the threshold — cheap answers are
    cheaper to recompute than the hot entry they would evict.  A
    ``cost=None`` store (caller opted out of costing) is always
    admitted.
    """

    def __init__(
        self, max_entries: int = DEFAULT_CACHE_SIZE, *, min_cost: int = 0
    ) -> None:
        self._lru: LruCache[tuple, object] = LruCache(max_entries)
        self.min_cost = max(0, int(min_cost))
        self.admitted = 0
        self.rejected = 0
        self._admission_lock = threading.Lock()  # the LRU locks its own counters

    def lookup(self, version: int, query: Sequence[str], *, extra: tuple = ()):
        return self._lru.get(query_key(version, query, extra=extra))

    def store(
        self,
        version: int,
        query: Sequence[str],
        value,
        *,
        extra: tuple = (),
        cost: int | None = None,
    ) -> bool:
        """Admit ``value`` unless the admission policy rejects it.

        Returns True when the entry was admitted.
        """
        if cost is not None and cost < self.min_cost:
            with self._admission_lock:
                self.rejected += 1
            return False
        with self._admission_lock:
            self.admitted += 1
        self._lru.put(query_key(version, query, extra=extra), value)
        return True

    def entry_hits(self, version: int, query: Sequence[str], *, extra: tuple = ()) -> int:
        """Hits served by one resident entry (0 if absent or evicted)."""
        return self._lru.entry_hits(query_key(version, query, extra=extra))

    def hottest(self, n: int = 5) -> list[tuple[tuple, int]]:
        """The ``n`` resident entries that served the most hits."""
        return self._lru.hottest(n)

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def stats(self) -> dict[str, int]:
        stats = self._lru.stats()
        stats["min_cost"] = self.min_cost
        stats["admitted"] = self.admitted
        stats["rejected"] = self.rejected
        return stats
