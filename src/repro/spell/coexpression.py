"""Coexpression networks from SPELL's correlation machinery.

An "Other Analysis" plug-in (Figure 1): build a gene-gene coexpression
graph from one dataset or a weighted compendium consensus, with edges
above a correlation threshold.  Output is a :mod:`networkx` graph plus
module extraction via connected components — a common downstream of the
paper's export workflow.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.stats.correlation import pearson_matrix
from repro.util.errors import ValidationError

__all__ = ["coexpression_graph", "consensus_graph", "extract_modules"]


def coexpression_graph(
    dataset: Dataset,
    *,
    threshold: float = 0.7,
    genes: list[str] | None = None,
) -> nx.Graph:
    """Gene-gene graph with edges where |pearson| >= ``threshold``.

    Edge attributes: ``weight`` (the correlation, signed).  Restricting
    ``genes`` keeps the O(n^2) correlation tractable for big datasets.
    """
    if not (0.0 < threshold <= 1.0):
        raise ValidationError(f"threshold must be in (0, 1], got {threshold}")
    matrix = dataset.matrix if genes is None else dataset.matrix.subset_genes(genes, missing="skip")
    if matrix.n_genes < 2:
        raise ValidationError("need at least 2 genes for a coexpression graph")
    corr = pearson_matrix(matrix.values)
    graph = nx.Graph()
    graph.add_nodes_from(matrix.gene_ids)
    iu, ju = np.triu_indices(matrix.n_genes, k=1)
    values = corr[iu, ju]
    keep = ~np.isnan(values) & (np.abs(values) >= threshold)
    for i, j, r in zip(iu[keep], ju[keep], values[keep]):
        graph.add_edge(matrix.gene_ids[i], matrix.gene_ids[j], weight=float(r))
    return graph


def consensus_graph(
    compendium: Compendium,
    *,
    threshold: float = 0.6,
    min_support: int = 2,
    genes: list[str] | None = None,
) -> nx.Graph:
    """Edges supported by >= ``min_support`` datasets at ``threshold``.

    Edge attributes: ``support`` (dataset count) and ``weight`` (mean
    correlation over supporting datasets).  This is the §4 analysis in
    graph form: structure that persists across studies.
    """
    if len(compendium) == 0:
        raise ValidationError("compendium is empty")
    if min_support < 1:
        raise ValidationError(f"min_support must be >= 1, got {min_support}")
    votes: dict[tuple[str, str], list[float]] = {}
    for dataset in compendium:
        try:
            g = coexpression_graph(dataset, threshold=threshold, genes=genes)
        except ValidationError:
            continue  # dataset lacks the requested genes
        for u, v, data in g.edges(data=True):
            key = (u, v) if u < v else (v, u)
            votes.setdefault(key, []).append(data["weight"])
    out = nx.Graph()
    for (u, v), weights in votes.items():
        if len(weights) >= min_support:
            out.add_edge(u, v, support=len(weights), weight=float(np.mean(weights)))
    return out


def extract_modules(graph: nx.Graph, *, min_size: int = 3) -> list[list[str]]:
    """Connected components of size >= ``min_size``, largest first.

    Deterministic: members sorted within a module, modules sorted by
    (-size, first member).
    """
    if min_size < 1:
        raise ValidationError(f"min_size must be >= 1, got {min_size}")
    modules = [sorted(c) for c in nx.connected_components(graph) if len(c) >= min_size]
    modules.sort(key=lambda m: (-len(m), m[0]))
    return modules
