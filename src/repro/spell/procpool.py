"""Multi-process batch serving over the memory-mapped index store.

Thread-level batching (``SpellService.respond_batch``) only overlaps the
BLAS matmuls — on small shards the Python side of a query (validation,
pagination, result assembly) holds the GIL and pins a whole batch to one
core.  This module gives the batch path real multi-core scaling without
copying the index into every process: worker processes **reopen the
persistent** :class:`~repro.spell.store.IndexStore` **with**
``mmap=True``, so every worker's shard views are windows onto the same
OS page cache — the index's bytes exist once in physical memory no
matter how many workers serve it (the store is the enabler; nothing is
pickled between processes except queries and ranked results).

Consistency is guarded by the store's durable version tokens: every
batch carries the dispatching service's ordered ``(dataset name,
content fingerprint)`` list, and a worker whose reopened index does not
match **resyncs** (reloads the store, which the parent synced before
dispatch) before serving; if it still disagrees it refuses the batch
(:class:`WorkerPoolError`) and the parent falls back to the in-process
threaded path.  A stale worker index is therefore never silently
served.

Workers are spawned (not forked — the parent may be running server
threads) lazily on first use and reused across batches; each holds one
:class:`~repro.spell.index.SpellIndex` and answers its slice of the
batch with the fused batched kernel
(:meth:`~repro.spell.index.SpellIndex.search_batch`).
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from pathlib import Path
from time import perf_counter
from typing import Sequence

from repro.spell.index import BatchQuery, SpellIndex
from repro.spell.store import IndexStore
from repro.util.deadline import Deadline
from repro.util.errors import ReproError, SearchError

__all__ = ["IndexWorkerPool", "WorkerPoolError", "REPLY_TIMEOUT_SECONDS"]

#: Default seconds a gather will wait on one worker before declaring the
#: pool broken.  Generous — a batch slice is milliseconds of work; only a
#: dead or wedged worker ever gets near this.  Configurable per pool via
#: ``IndexWorkerPool(reply_timeout=...)`` and clamped further by a
#: request deadline when one rides on the batch.
REPLY_TIMEOUT_SECONDS = 120.0


class WorkerPoolError(ReproError):
    """The pool cannot (or must not) serve this batch; caller falls back."""


def _worker_main(conn, store_dir: str, mmap: bool) -> None:
    """One worker: reopen the store, answer batch slices until EOF.

    The index is loaded lazily (the parent may sync the store after
    spawning) and reloaded whenever the parent's expected fingerprints
    disagree with the loaded shards — the resync-never-serve-stale
    contract.  Every reply is a tagged tuple; exceptions travel back to
    the parent as values, never kill the worker.
    """
    index: SpellIndex | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        expected, specs = message
        try:
            resynced = False
            if index is None or index.fingerprints() != expected:
                if index is not None:
                    resynced = True
                # sweep=False: workers are concurrent readers — reclaiming
                # crash debris is the owning service's job, and a worker
                # must never race the parent's in-flight (unpublished)
                # shard writes by deleting them as orphans
                index = IndexStore.load(store_dir, mmap=mmap, sweep=False)
            if index.fingerprints() != expected:
                conn.send(("stale", repr(store_dir)))
                index = None  # force a fresh look next batch
                continue
            start = perf_counter()
            results = index.search_batch(specs)
            conn.send(("ok", results, perf_counter() - start, resynced))
        except Exception as exc:  # noqa: BLE001 — exceptions are data here
            conn.send(("error", exc))
    conn.close()


class IndexWorkerPool:
    """N worker processes sharing one on-disk index, serving batch slices.

    ``run_batch`` scatters a list of :class:`BatchQuery` across the
    workers in contiguous slices, gathers the per-slice results, and
    returns them in input order.  All-or-nothing: any worker error
    re-raises in the parent (after every reply is drained, so the pipes
    never desync).  A dead, wedged, or persistently-stale worker raises
    :class:`WorkerPoolError` and marks the pool ``broken`` — the owner
    is expected to fall back to in-process serving.
    """

    def __init__(
        self,
        store_dir: str | Path,
        *,
        n_procs: int,
        mmap: bool = True,
        reply_timeout: float = REPLY_TIMEOUT_SECONDS,
    ) -> None:
        if n_procs < 1:
            raise WorkerPoolError(f"n_procs must be >= 1, got {n_procs}")
        if reply_timeout <= 0:
            raise WorkerPoolError(f"reply_timeout must be > 0, got {reply_timeout}")
        self.store_dir = str(store_dir)
        self.n_procs = int(n_procs)
        self.reply_timeout = float(reply_timeout)
        self.broken = False
        self.batches = 0
        self.resyncs = 0  # worker index reloads forced by a token mismatch
        self.dispatch_waiters = 0  # callers queued on the pipe lock
        self.dispatching = 0  # callers inside scatter-gather (0 or 1)
        self._gauge_lock = threading.Lock()
        self._lock = threading.Lock()  # pipes are not thread-safe
        ctx = mp.get_context("spawn")
        self._workers: list[tuple[mp.process.BaseProcess, object]] = []
        try:
            for _ in range(self.n_procs):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self.store_dir, mmap),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append((proc, parent_conn))
        except Exception as exc:
            self.close()
            raise WorkerPoolError(f"failed to spawn index workers: {exc}") from exc

    # ------------------------------------------------------------------ serve
    def run_batch(
        self,
        expected: list[tuple[str, str | None]],
        specs: Sequence[BatchQuery],
        *,
        deadline: Deadline | None = None,
    ) -> tuple[list, float]:
        """Answer ``specs`` across the workers; returns (results, busy_seconds).

        ``expected`` is the dispatching index's ordered (name,
        fingerprint) token list; ``busy_seconds`` is the sum of worker
        compute time (for utilization accounting — wall time is the
        caller's to measure).  ``deadline`` clamps every gather wait; a
        spent budget raises :class:`~repro.util.errors.DeadlineExceeded`
        (the pool is marked broken — replies were abandoned mid-gather,
        so the pipes can no longer be trusted) and the caller must *not*
        fall back to in-process work, which would blow the same budget.
        """
        if self.broken:
            raise WorkerPoolError("worker pool is broken")
        specs = list(specs)
        if not specs:
            return [], 0.0
        # the dispatch gauges exist for the asyncio tier: its executor
        # threads all funnel through this one pipe lock, so "how many
        # callers are queued on the pool right now" is the signal that
        # says whether the pool — not the event loop — is the bottleneck
        dispatching = False
        with self._gauge_lock:
            self.dispatch_waiters += 1
        try:
            with self._lock:
                with self._gauge_lock:
                    self.dispatch_waiters -= 1
                    self.dispatching += 1
                    dispatching = True
                try:
                    return self._scatter_gather(expected, specs, deadline)
                finally:
                    with self._gauge_lock:
                        self.dispatching -= 1
        finally:
            if not dispatching:
                with self._gauge_lock:
                    self.dispatch_waiters -= 1

    def _scatter_gather(self, expected, specs, deadline) -> tuple[list, float]:
        n = min(self.n_procs, len(specs))
        bounds = [(len(specs) * j) // n for j in range(n + 1)]
        jobs = []  # (worker, chunk slice)
        try:
            for j in range(n):
                chunk = specs[bounds[j] : bounds[j + 1]]
                _, conn = self._workers[j]
                conn.send((expected, chunk))
                jobs.append(conn)
        except (OSError, ValueError) as exc:
            self.broken = True
            raise WorkerPoolError(f"worker pipe failed mid-scatter: {exc}") from exc

        results: list = []
        busy = 0.0
        failure: BaseException | None = None
        stale = False
        for conn in jobs:  # drain every reply before raising anything
            wait = (
                self.reply_timeout
                if deadline is None
                else deadline.clamp(self.reply_timeout)
            )
            try:
                if not conn.poll(wait):
                    if deadline is not None and deadline.expired:
                        # the budget ran out, not the worker: abandoning
                        # undrained replies desyncs the pipes, so the
                        # pool is done — but this is the *client's*
                        # deadline, not a pool fault, and must surface
                        # as such (no in-process fallback)
                        self.broken = True
                        deadline.check("worker pool gather")
                    raise TimeoutError(
                        f"no reply within {self.reply_timeout:.0f}s"
                    )
                reply = conn.recv()
            except (EOFError, OSError, TimeoutError) as exc:
                self.broken = True
                raise WorkerPoolError(f"index worker died: {exc}") from exc
            if reply[0] == "ok":
                _, chunk_results, seconds, resynced = reply
                results.extend(chunk_results)
                busy += seconds
                if resynced:
                    self.resyncs += 1
            elif reply[0] == "stale":
                stale = True
            elif failure is None:
                failure = reply[1]
        if stale:
            raise WorkerPoolError(
                f"worker index at {self.store_dir} does not match the "
                "dispatched version tokens even after resync"
            )
        if failure is not None:
            if isinstance(failure, SearchError):
                # a member-request error: the batch's own contract, the
                # caller must fail it all-or-nothing
                raise failure
            # anything else is environmental (store being rewritten under
            # the worker, corrupt shard, ...) — the caller should fall
            # back to in-process serving, not fail the client's batch
            raise WorkerPoolError(
                f"index worker failed: {type(failure).__name__}: {failure}"
            ) from failure
        self.batches += 1
        return results, busy

    # ------------------------------------------------------------------ admin
    def stats(self) -> dict[str, int | float | bool]:
        with self._gauge_lock:
            waiters, dispatching = self.dispatch_waiters, self.dispatching
        return {
            "n_procs": self.n_procs,
            "batches": self.batches,
            "resyncs": self.resyncs,
            "dispatch_waiters": waiters,
            "dispatching": dispatching,
            "broken": self.broken,
            "reply_timeout_seconds": self.reply_timeout,
        }

    def close(self) -> None:
        """Shut every worker down; safe to call twice."""
        for proc, conn in self._workers:
            try:
                conn.send(None)
            except (OSError, ValueError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        for proc, _ in self._workers:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
        self._workers = []
        self.broken = True

    def __enter__(self) -> "IndexWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
