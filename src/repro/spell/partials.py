"""Per-dataset score partials and their exact scatter-gather merge.

The SPELL aggregate is a per-dataset weighted mean: each dataset
contributes an independent ``(weight, score vector)`` pair, and the
final gene score is ``Σ w_d · s_d / Σ w_d`` over the datasets containing
the gene.  That makes dataset-sharded serving *exact* — but bit-exact
only if the float additions happen in the same order as the single-node
loop.  Pre-summed per-shard accumulators would regroup the additions
(``(a + c) + b ≠ (a + b) + c`` in floats), so shards instead return the
**per-dataset** contributions (:class:`DatasetPartial`) and the
coordinator replays the canonical accumulation: walk the datasets in
compendium order, scatter-add each contribution into universe-slot
arrays, then finalize exactly like
:meth:`repro.spell.index.SpellIndex.search`.  The per-dataset score
vector itself is deterministic for given shard values (one matmul, one
fixed-order mean), so *where* it is computed cannot change it.

:class:`GeneUniverse` is the coordinator's metadata-only replica of the
index's slot bookkeeping — gene universe, per-dataset row slots, query
membership — built from dataset gene lists alone, no matrices.  The
merge is a pure function of (universe, contributions), which is what
makes determinism under shard reply reordering testable without any
transport in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.spell.engine import DatasetScore, SpellResult, ranked_gene_table
from repro.util.errors import SearchError

__all__ = ["DatasetPartial", "GeneUniverse"]


@dataclass(frozen=True)
class DatasetPartial:
    """One dataset's contribution to one query.

    ``scores`` aligns with the dataset's gene-id order (the coordinator
    knows that order from its catalog) and is ``None`` exactly when the
    dataset does not contribute (``weight == 0``) — too few query genes
    present, or non-positive query coherence.  ``fingerprint`` is the
    content hash of the dataset the shard actually scored, which the
    coordinator verifies against its catalog before merging: a partial
    from stale data is refused, never folded in.
    """

    name: str
    fingerprint: str | None
    n_query_present: int
    weight: float
    scores: np.ndarray | None  # float64, len == len(dataset gene_ids), or None


class GeneUniverse:
    """Metadata-only replica of the index's gene-slot bookkeeping.

    Built from ordered ``(name, gene_ids)`` pairs — the same inputs
    :class:`~repro.spell.index.SpellIndex` derives its universe from, so
    slot numbering and membership semantics match the single-node index
    exactly (``np.unique`` sorts, hence equal inputs give equal slots).
    """

    def __init__(self, datasets: Sequence[tuple[str, Sequence[str]]]) -> None:
        if not datasets:
            raise SearchError("gene universe needs at least one dataset")
        self.dataset_names: list[str] = [name for name, _ in datasets]
        if len(set(self.dataset_names)) != len(self.dataset_names):
            raise SearchError("duplicate dataset names in universe")
        id_arrays = [np.asarray(list(ids), dtype=str) for _, ids in datasets]
        uniq, inv = np.unique(np.concatenate(id_arrays), return_inverse=True)
        self._slot_gene: np.ndarray = uniq
        self._gene_slot: dict[str, int] = {g: i for i, g in enumerate(uniq.tolist())}
        self._slot_live = np.zeros(uniq.shape[0], dtype=np.int64)
        self.rows: dict[str, np.ndarray] = {}
        inv = np.asarray(inv, dtype=np.intp)
        offset = 0
        for (name, _), arr in zip(datasets, id_arrays):
            rows = inv[offset : offset + arr.shape[0]]
            offset += arr.shape[0]
            self.rows[name] = rows
            self._slot_live[rows] += 1

    @property
    def n_slots(self) -> int:
        return int(self._slot_gene.shape[0])

    def gene_count(self) -> int:
        """Number of live genes (every slot is live in a static universe)."""
        return int((self._slot_live > 0).sum())

    # ------------------------------------------------------------- resolution
    def resolve_query(
        self, query: Sequence[str], selected: Sequence[str], *, filtered: bool
    ) -> tuple[tuple[str, ...], tuple[str, ...], np.ndarray]:
        """Mirror of ``SpellIndex._resolve_query`` over catalog metadata.

        Returns ``(query_used, query_missing, q_slots)`` with membership
        judged against the selected datasets when ``filtered`` (else the
        whole universe), preserving query order.
        """
        slot_arr = np.fromiter(
            (self._gene_slot.get(g, -1) for g in query),
            dtype=np.intp,
            count=len(query),
        )
        known = slot_arr >= 0
        alive = np.zeros(len(query), dtype=bool)
        if filtered:
            mask = np.zeros(self.n_slots, dtype=bool)
            for name in selected:
                mask[self.rows[name]] = True
            alive[known] = mask[slot_arr[known]]
        else:
            alive[known] = self._slot_live[slot_arr[known]] > 0
        query_used = tuple(g for g, a in zip(query, alive) if a)
        query_missing = tuple(g for g, a in zip(query, alive) if not a)
        return query_used, query_missing, slot_arr[alive]

    # ------------------------------------------------------------------ merge
    def merge(
        self,
        query: Sequence[str],
        query_used: tuple[str, ...],
        query_missing: tuple[str, ...],
        q_slots: np.ndarray,
        selected: Sequence[str],
        contributions: Mapping[str, DatasetPartial],
        *,
        exclude_query_from_genes: bool = True,
        top_k: int | None = None,
        skipped: Iterable[str] = (),
    ) -> SpellResult:
        """Replay the canonical accumulation over gathered partials.

        ``selected`` is the dataset walk order — the compendium order of
        the selected datasets, exactly the order the single-node search
        loop accumulates in.  ``contributions`` may arrive keyed in any
        order (shard replies race); only the walk order touches floats,
        so reply reordering cannot perturb the result.  Datasets in
        ``skipped`` (unreachable shards) are left out entirely — the
        caller is responsible for surfacing that partiality; this
        function never hides it.
        """
        skipped = set(skipped)
        totals = np.zeros(self.n_slots, dtype=np.float64)
        weight_mass = np.zeros(self.n_slots, dtype=np.float64)
        counts = np.zeros(self.n_slots, dtype=np.int64)
        dataset_scores: list[DatasetScore] = []
        for name in selected:
            if name in skipped:
                continue
            part = contributions.get(name)
            if part is None:
                raise SearchError(f"missing partial for dataset {name!r}")
            dataset_scores.append(
                DatasetScore(part.name, part.weight, part.n_query_present)
            )
            if part.weight <= 0.0 or part.scores is None:
                continue
            slots = self.rows[name]
            if part.scores.shape[0] != slots.shape[0]:
                raise SearchError(
                    f"partial for {name!r} has {part.scores.shape[0]} scores, "
                    f"expected {slots.shape[0]}"
                )
            totals[slots] += part.weight * part.scores
            weight_mass[slots] += part.weight
            counts[slots] += 1

        dataset_scores.sort(key=lambda d: (-d.weight, d.name))
        scored = np.flatnonzero(counts)
        if exclude_query_from_genes:
            scored = scored[~np.isin(scored, q_slots)]
        with np.errstate(invalid="ignore", divide="ignore"):
            final = totals[scored] / weight_mass[scored]
        genes = ranked_gene_table(
            self._slot_gene[scored], final, counts[scored], top_k=top_k
        )
        return SpellResult(
            query=tuple(query),
            query_used=query_used,
            query_missing=query_missing,
            datasets=tuple(dataset_scores),
            genes=genes,
        )
