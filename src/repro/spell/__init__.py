"""SPELL: query-driven search over a microarray compendium (paper §3, Fig 4).

Given a small set of related genes, SPELL weights every dataset by how
coherently the query co-expresses in it, ranks all other genes by
weighted correlation to the query, and returns both orderings —
exactly the output ForestView's integration displays.
"""

from repro.spell.engine import (
    SpellEngine,
    SpellResult,
    DatasetScore,
    GeneScore,
    GeneTable,
    ranked_gene_table,
    MIN_QUERY_PRESENT,
)
from repro.spell.cache import (
    QueryCache,
    canonical_query,
    query_key,
    rebind_result,
)
from repro.spell.arena import ScoreScratch, ScratchPool, ShardArena
from repro.spell.index import BatchQuery, SpellIndex
from repro.spell.procpool import IndexWorkerPool, WorkerPoolError
from repro.spell.store import IndexStore, SyncReport
from repro.spell.service import SpellService, SearchPage, BatchSearchResult
from repro.spell.baseline import TextSearchBaseline
from repro.spell.coexpression import coexpression_graph, consensus_graph, extract_modules

__all__ = [
    "SpellEngine",
    "SpellResult",
    "DatasetScore",
    "GeneScore",
    "GeneTable",
    "ranked_gene_table",
    "MIN_QUERY_PRESENT",
    "SpellIndex",
    "BatchQuery",
    "ShardArena",
    "ScoreScratch",
    "ScratchPool",
    "IndexWorkerPool",
    "WorkerPoolError",
    "IndexStore",
    "SyncReport",
    "SpellService",
    "SearchPage",
    "BatchSearchResult",
    "QueryCache",
    "canonical_query",
    "query_key",
    "rebind_result",
    "TextSearchBaseline",
    "coexpression_graph",
    "consensus_graph",
    "extract_modules",
]
