"""Scatter-gather query router: the coordinator of the sharded tier.

:class:`RouterService` duck-types :class:`~repro.spell.service.SpellService`
— it plugs into the unmodified :class:`~repro.api.app.ApiApp` (and hence
the HTTP facade, auth, rate limits, and body caps) as a drop-in engine.
The difference is *where* scoring happens: the router holds only the
compendium catalog (names, gene lists, fingerprints — via
:class:`~repro.spell.partials.GeneUniverse`) and never builds an index;
each query fans out to the shard nodes owning the selected datasets,
and the returned per-dataset partials are merged by replaying the exact
single-node accumulation order.  Rankings are therefore **bit-identical**
to a one-node :class:`~repro.spell.index.SpellIndex` over the same
compendium — the oracle property the tests pin down.

Degradation is structured, never silent:

* A dead or stale shard triggers failover to the dataset's next replica
  owner (replica preference comes from the consistent-hash ring,
  reordered so heartbeat-alive nodes are tried first).
* Datasets with *no* reachable owner are skipped from the merge and
  surfaced as ``SearchResponse.partial=True`` plus a ``shards`` map
  naming every skipped dataset and each node's failure; partial results
  are never cached.
* When nothing is reachable (or the caller demands completeness — the
  export path does) the query fails with ``SHARD_UNAVAILABLE`` via
  :class:`~repro.util.errors.RpcError`.
* A request-scoped :class:`~repro.util.deadline.Deadline` bounds the
  whole gather: per-call timeouts and hedge waits are clamped to the
  remaining budget, and a spent budget raises
  :class:`~repro.util.deadline.DeadlineExceeded` (a structured 504)
  instead of blocking past what the client asked for.
* Tail latency is fought with **hedged replica requests**
  (:mod:`repro.cluster_serving.hedging`): once a shard call outlives the
  recent latency percentile, the same datasets are requested from their
  next replica and the first answer wins — merge order is canonical and
  partials are fingerprint-verified, so hedging can never change a
  ranking bit.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Sequence

from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ExportRequest,
    SearchRequest,
    SearchResponse,
)
from repro.cluster_serving.hedging import HedgePolicy, LatencyTracker
from repro.cluster_serving.ring import DEFAULT_VNODES, plan_assignment
from repro.data.compendium import Compendium
from repro.parallel.pmap import parallel_map
from repro.parallel.workqueue import WorkStealingPool
from repro.rpc.membership import Membership
from repro.spell.cache import DEFAULT_CACHE_SIZE, QueryCache, rebind_result
from repro.spell.engine import SpellResult
from repro.spell.partials import DatasetPartial, GeneUniverse
from repro.spell.service import SpellService
from repro.util.deadline import Deadline, DeadlineExceeded
from repro.util.errors import RpcError, SearchError
from repro.util.timing import Stopwatch

__all__ = ["RouterService"]


class RouterService:
    """SpellService-compatible engine that scores on remote shards.

    ``replication`` must match what the shards were loaded with (both
    sides compute the same consistent-hash plan); it is clamped to the
    node count.  ``allow_partial=False`` turns shard loss into a hard
    ``SHARD_UNAVAILABLE`` instead of a flagged partial ranking.
    """

    def __init__(
        self,
        compendium: Compendium,
        membership: Membership,
        *,
        replication: int = 1,
        vnodes: int = DEFAULT_VNODES,
        n_workers: int = 4,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_min_cost: int = 0,
        allow_partial: bool = True,
        rpc_timeout: float | None = None,
        hedge: HedgePolicy | None = None,
    ) -> None:
        if len(compendium) == 0:
            raise SearchError("router needs a non-empty compendium catalog")
        self.compendium = compendium
        self.n_workers = max(1, int(n_workers))
        self.allow_partial = bool(allow_partial)
        self._membership = membership
        self._replication = max(1, min(int(replication), len(membership.node_ids)))
        self._vnodes = int(vnodes)
        self._rpc_timeout = rpc_timeout
        #: label -> zero-arg callable; serving facades report through here
        self._transport_probes: dict = {}
        self._hedge = HedgePolicy() if hedge is None else hedge
        self._latency = LatencyTracker()
        self._hedges_fired = 0
        self._hedge_wins = 0
        self._deadline_exceeded = 0
        self._cache = (
            QueryCache(cache_size, min_cost=cache_min_cost) if cache_size > 0 else None
        )
        self._history: list[tuple[tuple[str, ...], float]] = []
        self._lock = threading.Lock()  # guards history + catalog rebuilds
        self._catalog_version: int | None = None
        self._rebuild_catalog()
        # seed liveness + per-shard info so routing can prefer known-alive
        # replicas from the first query; a dead node here is not an error
        # (it will simply be failed over until a heartbeat revives it)
        membership.heartbeat()

    # ---------------------------------------------------------------- catalog
    def _rebuild_catalog(self) -> None:
        """(Re)derive universe + placement from the compendium catalog."""
        self._universe = GeneUniverse(
            [(ds.name, ds.gene_ids) for ds in self.compendium]
        )
        self._fingerprints = {ds.name: ds.fingerprint for ds in self.compendium}
        self._plan = plan_assignment(
            [(ds.name, ds.fingerprint) for ds in self.compendium],
            self._membership.node_ids,
            replication=self._replication,
            vnodes=self._vnodes,
        )
        self._catalog_version = self.compendium.version

    def _sync_catalog(self) -> None:
        with self._lock:
            if self.compendium.version != self._catalog_version:
                self._rebuild_catalog()

    def _select(self, datasets: Sequence[str] | None) -> list[str]:
        """Selected dataset names in compendium order (the merge walk order).

        Mirrors ``SpellIndex._select`` — including its unknown-dataset
        error — so filter validation is transport-independent.
        """
        names = self._universe.dataset_names
        if datasets is None:
            return list(names)
        allowed = {str(d) for d in datasets}
        unknown = sorted(allowed - set(names))
        if unknown:
            raise SearchError(f"unknown dataset(s) in filter: {unknown}")
        return [n for n in names if n in allowed]

    # ----------------------------------------------------------- fan-out core
    def _owner_order(self, name: str) -> list[str]:
        """Replica preference for one dataset: ring order, alive-first.

        Heartbeat/liveness state only *reorders* the replicas — a node
        marked dead is still tried last rather than written off, so a
        stale liveness table can cost latency but never correctness.
        """
        owners = self._plan[name]
        alive = [n for n in owners if self._membership.state(n).alive]
        return alive + [n for n in owners if n not in alive]

    def _launch(
        self,
        nid: str,
        names: list[str],
        query: list[str],
        deadline: Deadline,
        results: "queue.Queue",
        is_hedge: bool,
    ) -> None:
        """Fire one shard call on its own thread; the outcome lands on
        ``results`` as ``(is_hedge, nid, names, reply|None, error|None,
        elapsed)`` — every launch posts exactly one item."""
        payload = {
            "genes": query,
            "datasets": [(n, self._fingerprints[n]) for n in names],
        }

        def run() -> None:
            t0 = time.monotonic()
            try:
                reply = self._membership.call(
                    nid, "partials", payload,
                    timeout=self._rpc_timeout, deadline=deadline,
                )
            except (RpcError, DeadlineExceeded) as exc:
                results.put(
                    (is_hedge, nid, names, None, str(exc), time.monotonic() - t0)
                )
                return
            results.put((is_hedge, nid, names, reply, None, time.monotonic() - t0))

        threading.Thread(target=run, name=f"gather-{nid}", daemon=True).start()

    def _gather(
        self,
        query: list[str],
        top_k: int | None,
        datasets: Sequence[str] | None,
        *,
        require_complete: bool,
        deadline: Deadline,
    ) -> tuple[SpellResult, dict]:
        """One scatter-gather search.  Returns ``(result, report)`` where
        ``report`` carries the partiality verdict and per-shard detail.

        Event-driven rather than round-synchronized: every dataset
        independently walks its replica preference list.  A failed call
        triggers immediate failover; a call that merely outlives the
        hedge delay triggers a *hedge* to the next replica while the
        original stays in flight — first answer wins.  The whole loop is
        bounded by ``deadline``; expiry raises
        :class:`~repro.util.deadline.DeadlineExceeded`.
        """
        selected = self._select(datasets)
        query_used, query_missing, q_slots = self._universe.resolve_query(
            query, selected, filtered=datasets is not None
        )
        if not query_used:
            raise SearchError(f"no query gene exists in any dataset: {query}")

        contributions: dict[str, DatasetPartial] = {}
        node_report: dict[str, dict] = {}
        failures: dict[str, list[str]] = {name: [] for name in selected}
        owners_left = {name: self._owner_order(name) for name in selected}
        inflight = {name: 0 for name in selected}
        oldest_launch: dict[str, float] = {}
        hedges_used = {name: 0 for name in selected}
        done: set[str] = set()
        results: queue.Queue = queue.Queue()
        hedging = self._hedge.enabled and self._hedge.max_hedges > 0

        def assign_next(names: list[str], *, is_hedge: bool) -> None:
            group: dict[str, list[str]] = {}
            for name in names:
                if owners_left[name]:
                    group.setdefault(owners_left[name].pop(0), []).append(name)
            now = time.monotonic()
            for nid, batch in group.items():
                for name in batch:
                    inflight[name] += 1
                    oldest_launch.setdefault(name, now)
                    if is_hedge:
                        hedges_used[name] += 1
                self._launch(nid, batch, query, deadline, results, is_hedge)
            if is_hedge and group:
                with self._lock:
                    self._hedges_fired += len(group)

        assign_next(list(selected), is_hedge=False)
        while len(done) < len(selected):
            # failed datasets with replicas left and nothing in flight
            # fail over immediately
            stalled = [
                n for n in selected
                if n not in done and inflight[n] == 0 and owners_left[n]
            ]
            if stalled:
                assign_next(stalled, is_hedge=False)
            if all(
                n in done or (inflight[n] == 0 and not owners_left[n])
                for n in selected
            ):
                break  # every unanswered dataset exhausted its replicas
            deadline.check("sharded gather")

            hedge_delay = self._hedge.delay(self._latency) if hedging else None
            wait: float | None = None
            if hedge_delay is not None:
                now = time.monotonic()
                fuses = [
                    hedge_delay - (now - oldest_launch[n])
                    for n in selected
                    if n not in done and inflight[n] > 0 and owners_left[n]
                    and hedges_used[n] < self._hedge.max_hedges
                ]
                if fuses:
                    wait = max(0.0, min(fuses))
            wait = deadline.clamp(wait)
            try:
                item = results.get(timeout=wait) if wait is not None else results.get()
            except queue.Empty:
                if hedge_delay is not None:
                    now = time.monotonic()
                    mature = [
                        n for n in selected
                        if n not in done and inflight[n] > 0 and owners_left[n]
                        and hedges_used[n] < self._hedge.max_hedges
                        and now - oldest_launch[n] >= hedge_delay
                    ]
                    if mature:
                        assign_next(mature, is_hedge=True)
                continue

            is_hedge, nid, names, reply, error, elapsed = item
            for name in names:
                inflight[name] -= 1
                if inflight[name] <= 0:
                    oldest_launch.pop(name, None)
            report = node_report.setdefault(nid, {"served": [], "refused": {}})
            if error is not None:
                report["error"] = error
                for name in names:
                    if name not in done:
                        failures[name].append(f"{nid}: {error}")
                continue
            self._latency.add(elapsed)
            for name, wire in reply["partials"].items():
                if name in done:
                    continue  # a faster replica already answered
                contributions[name] = DatasetPartial(
                    name=wire["name"],
                    fingerprint=wire["fingerprint"],
                    n_query_present=wire["n_query_present"],
                    weight=wire["weight"],
                    scores=wire["scores"],
                )
                report["served"].append(name)
                done.add(name)
                if is_hedge:
                    with self._lock:
                        self._hedge_wins += 1
            for name, reason in reply["refused"].items():
                report["refused"][name] = reason
                if name not in done:
                    failures[name].append(f"{nid}: {reason}")

        skipped = [n for n in selected if n not in contributions]
        if len(skipped) == len(selected):
            raise RpcError(
                f"no shard reachable for any of the {len(selected)} selected "
                f"dataset(s): {dict((n, failures[n]) for n in skipped)}"
            )
        if skipped and (require_complete or not self.allow_partial):
            raise RpcError(
                f"shard(s) unavailable for dataset(s) {skipped}: "
                f"{dict((n, failures[n]) for n in skipped)}"
            )
        merged = self._universe.merge(
            query,
            query_used,
            query_missing,
            q_slots,
            selected,
            contributions,
            top_k=top_k,
            skipped=skipped,
        )
        report = {
            "partial": bool(skipped),
            "shards": (
                {
                    "missing_datasets": sorted(skipped),
                    "failures": {n: failures[n] for n in skipped},
                    "nodes": node_report,
                }
                if skipped
                else {}
            ),
        }
        return merged, report

    # ----------------------------------------------------------------- search
    def _search_report(
        self,
        query: Sequence[str],
        *,
        use_cache: bool = True,
        top_k: int | None = None,
        datasets: Sequence[str] | None = None,
        require_complete: bool = False,
        deadline: Deadline | None = None,
    ) -> tuple[SpellResult, dict]:
        """Cache-aware search returning ``(result, partiality report)``.

        Cache keys, admission, and rebind semantics are exactly
        :meth:`SpellService.search`'s (shared ``_cache_extra``), so the
        router's cache behaves indistinguishably — except that partial
        results are *never* admitted: a later identical query must retry
        the missing shards, not replay the gap.
        """
        query = [str(g) for g in query]
        if not query:
            raise SearchError("query must contain at least one gene")
        if len(set(query)) != len(query):
            raise SearchError("query contains duplicate genes")
        if datasets is not None:
            datasets = tuple(str(d) for d in datasets)
        budget = Deadline.never() if deadline is None else deadline

        self._sync_catalog()
        version = self.compendium.version
        extra = SpellService._cache_extra(top_k, datasets)
        complete_report = {"partial": False, "shards": {}}
        with Stopwatch() as sw:
            cached = (
                self._cache.lookup(version, query, extra=extra)
                if (self._cache is not None and use_cache)
                else None
            )
            if cached is not None:
                result, report = rebind_result(cached, query), complete_report
            else:
                try:
                    result, report = self._gather(
                        query, top_k, datasets,
                        require_complete=require_complete, deadline=budget,
                    )
                except DeadlineExceeded:
                    with self._lock:
                        self._deadline_exceeded += 1
                    raise
                if self._cache is not None and use_cache and not report["partial"]:
                    self._cache.store(
                        version, query, result, extra=extra, cost=result.total_genes
                    )
        with self._lock:
            self._history.append((tuple(query), sw.elapsed))
        return result, report

    def search(
        self,
        query: Sequence[str],
        *,
        use_cache: bool = True,
        top_k: int | None = None,
        datasets: Sequence[str] | None = None,
    ) -> SpellResult:
        """Raw sharded search; same contract as :meth:`SpellService.search`."""
        result, _report = self._search_report(
            query, use_cache=use_cache, top_k=top_k, datasets=datasets
        )
        return result

    # -------------------------------------------------- protocol entry points
    def respond(
        self,
        request: SearchRequest,
        *,
        strict_page: bool = True,
        deadline: Deadline | None = None,
    ) -> SearchResponse:
        """Answer one protocol request; partiality rides the v1 fields.

        ``deadline`` is the budget started at admission (the API layer
        passes it); if absent, one is derived from the request's own
        ``deadline_ms`` so direct callers get the same contract.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        caching = self._cache is not None and request.use_cache
        top_k = request.top_k
        if top_k is None and not caching:
            top_k = (request.page + 1) * request.page_size
        with Stopwatch() as sw:
            result, report = self._search_report(
                request.genes,
                use_cache=request.use_cache,
                top_k=top_k,
                datasets=request.datasets,
                deadline=budget,
            )
        return SearchResponse.from_result(
            result,
            request,
            elapsed_seconds=sw.elapsed,
            strict=strict_page,
            partial=report["partial"],
            shards=report["shards"],
        )

    def respond_batch(
        self,
        request: BatchSearchRequest,
        *,
        strict_page: bool = True,
        deadline: Deadline | None = None,
    ) -> BatchSearchResponse:
        """Answer a batch concurrently; each member fans out independently.

        All-or-nothing like the single-node service: a failing member
        fails the batch with its error (a *partial* member does not fail
        — it is a success carrying ``partial=True``).  The batch-level
        ``deadline_ms`` bounds every member; a member's own
        ``deadline_ms`` can only tighten it further.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        hits0 = self._cache.hits if self._cache is not None else 0
        misses0 = self._cache.misses if self._cache is not None else 0
        searches = list(request.searches)

        def one(req: SearchRequest) -> SearchResponse:
            return self.respond(req, strict_page=strict_page, deadline=budget)

        with Stopwatch() as sw:
            if request.scheduler == "steal" and self.n_workers > 1:
                results = WorkStealingPool(self.n_workers).map(one, searches)
            else:
                results = parallel_map(one, searches, n_workers=self.n_workers)
        return BatchSearchResponse(
            results=tuple(results),
            total_seconds=sw.elapsed,
            n_workers=self.n_workers,
            cache_hits=(self._cache.hits - hits0) if self._cache is not None else 0,
            cache_misses=(self._cache.misses - misses0)
            if self._cache is not None else 0,
        )

    def iter_result(self, request: ExportRequest, *, deadline: Deadline | None = None):
        """Deep-export cursor; **requires** a complete ranking.

        An export must never silently omit an unreachable shard's genes
        (the trailer checksums the stream as the full ranking), so shard
        loss here raises ``SHARD_UNAVAILABLE`` instead of degrading.
        """
        budget = Deadline.tighter(deadline, Deadline.after_ms(request.deadline_ms))
        with Stopwatch() as sw:
            result, _report = self._search_report(
                request.genes,
                use_cache=request.use_cache,
                top_k=request.top_k,
                datasets=request.datasets,
                require_complete=True,
                deadline=budget,
            )
        return SpellService._iter_chunks(result, request, sw.elapsed)

    # ------------------------------------------------------------------ stats
    @property
    def query_count(self) -> int:
        with self._lock:
            return len(self._history)

    def mean_latency(self) -> float:
        with self._lock:
            if not self._history:
                raise SearchError("no queries executed yet")
            return sum(t for _, t in self._history) / len(self._history)

    def index_bytes(self) -> int:
        """Summed shard index footprint (from the latest heartbeat info)."""
        return sum(
            int(self._membership.state(nid).info.get("index_bytes", 0))
            for nid in self._membership.node_ids
        )

    def cache_stats(self) -> dict[str, int]:
        if self._cache is None:
            return {
                "entries": 0, "max_entries": 0, "hits": 0, "misses": 0,
                "evictions": 0,
            }
        return self._cache.stats()

    def register_transport_stats(self, label: str, probe) -> None:
        """Attach a transport's counter snapshot to ``serving_stats``
        (same contract as :meth:`repro.spell.service.SpellService.register_transport_stats`)."""
        self._transport_probes[str(label)] = probe

    def unregister_transport_stats(self, label: str) -> None:
        self._transport_probes.pop(str(label), None)

    def serving_stats(self) -> dict:
        stats: dict = {
            "n_workers": self.n_workers,
            "n_procs": 1,
            "router": {
                "n_shards": len(self._membership.node_ids),
                "replication": self._replication,
                "datasets": len(self.compendium),
            },
        }
        if self._transport_probes:
            stats["transport"] = {
                label: probe() for label, probe in sorted(self._transport_probes.items())
            }
        return stats

    def shard_stats(self) -> dict:
        """Per-shard routing state for ``/v1/health`` (``shards`` field).

        Each node snapshot carries its circuit-breaker state plus
        ``catalog_synced`` — whether the fingerprints the node reported
        on its last heartbeat cover everything the placement plan says
        it owns (the rejoin resync check).
        """
        self._sync_catalog()
        nodes = self._membership.stats()
        for nid, snap in nodes.items():
            snap["catalog_synced"] = self._catalog_synced(nid, snap.get("info") or {})
        with self._lock:
            hedging = {
                "enabled": self._hedge.enabled and self._hedge.max_hedges > 0,
                "fired": self._hedges_fired,
                "wins": self._hedge_wins,
                "observed_p95_seconds": self._latency.percentile(95.0),
            }
            deadline_exceeded = self._deadline_exceeded
        return {
            "replication": self._replication,
            "nodes": nodes,
            "hedging": hedging,
            "deadline_exceeded": deadline_exceeded,
        }

    def _catalog_synced(self, node_id: str, info: dict) -> bool | None:
        """Does the node's last-reported catalog match its planned subset?

        ``None`` when the node has never reported fingerprints (no
        heartbeat landed yet) — unknown, not out of sync.
        """
        reported = info.get("fingerprints")
        if not isinstance(reported, dict):
            return None
        owned = {
            name: fp
            for name, fp in self._fingerprints.items()
            if node_id in self._plan[name]
        }
        return all(reported.get(name) == fp for name, fp in owned.items())

    def heartbeat(self) -> None:
        """Refresh shard liveness and heal breakers (the rejoin path).

        Pings bypass open breakers, so a sweep after a shard restart
        immediately re-registers the node: its breaker closes, its
        reported catalog is refreshed for the resync check, and replica
        ordering prefers it again on the next query — no router restart.
        """
        self._membership.heartbeat()

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._membership.close()

    def __enter__(self) -> "RouterService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
