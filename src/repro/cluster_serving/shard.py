"""One store node of the sharded serving tier.

A :class:`ShardNode` owns a *subset* of the compendium (chosen by the
consistent-hash plan in :mod:`repro.cluster_serving.ring`), builds a
normal :class:`~repro.spell.index.SpellIndex` over just that subset, and
serves per-dataset score partials over the generic RPC layer.  The node
never ranks anything — ranking happens once, at the router, by replaying
the canonical accumulation (:mod:`repro.spell.partials`), which is what
keeps sharded answers bit-identical to a single-node index.

Staleness is refused, never served: every ``partials`` request names the
``(name, fingerprint)`` it expects per dataset, and a dataset this node
does not hold *at that exact content version* comes back in the reply's
``refused`` map (the router fails over to a replica).  A fingerprint is
a content hash, so "refused" is a structural guarantee, not a heuristic.

CLI (one process per shard; all shards and the router must share the
same ``--seed``/``--shards``/``--replication`` so placement agrees)::

    python -m repro.cluster_serving.shard --port 8201 --shards 3 --shard-index 0
"""

from __future__ import annotations

import argparse
import threading

import numpy as np

from repro.cluster_serving.ring import DEFAULT_VNODES, plan_assignment
from repro.data.compendium import Compendium
from repro.rpc.faults import FaultPlan
from repro.rpc.server import RpcServer
from repro.spell.index import SpellIndex
from repro.util.errors import ValidationError

__all__ = ["ShardNode", "shard_compendium", "main"]


def shard_compendium(
    compendium: Compendium,
    node_ids: list[str],
    node_id: str,
    *,
    replication: int = 1,
    vnodes: int = DEFAULT_VNODES,
) -> Compendium:
    """The sub-compendium ``node_id`` owns under the consistent-hash plan.

    With ``replication > 1`` a dataset appears in every replica's
    subset; the router still asks exactly one owner per query, so
    duplicated ownership never double-counts.
    """
    if node_id not in node_ids:
        raise ValidationError(f"node {node_id!r} is not in the node set {node_ids}")
    plan = plan_assignment(
        [(ds.name, ds.fingerprint) for ds in compendium],
        node_ids,
        replication=replication,
        vnodes=vnodes,
    )
    return Compendium(ds for ds in compendium if node_id in plan[ds.name])


class ShardNode:
    """RPC server over one shard's index; answers ``partials`` requests.

    An *empty* shard (the plan assigned it nothing) is legal: it serves,
    heartbeats, and refuses every dataset — so topology bring-up never
    depends on the data distribution.
    """

    def __init__(
        self,
        compendium: Compendium,
        *,
        node_id: str,
        host: str = "127.0.0.1",
        port: int = 0,
        n_workers: int = 1,
        dtype=np.float64,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.node_id = str(node_id)
        self.compendium = compendium
        self.fault_plan = fault_plan
        if len(compendium) > 0:
            self._index: SpellIndex | None = SpellIndex.build(
                compendium, n_workers=n_workers, dtype=dtype
            )
            self._fingerprints = dict(self._index.fingerprints())
        else:
            self._index = None
            self._fingerprints = {}
        self._served = 0
        self._refused = 0
        self._lock = threading.Lock()
        self._server = RpcServer(
            {"partials": self._rpc_partials, "info": lambda payload: self._info()},
            node_id=self.node_id,
            host=host,
            port=port,
            info=self._info,
            fault_plan=fault_plan,
        )

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        return self._server.address

    def serve_background(self) -> tuple[str, int]:
        self._server.serve_background()
        return self.address

    def close(self) -> None:
        self._server.close()

    def __enter__(self) -> "ShardNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------- info
    def _info(self) -> dict:
        with self._lock:
            served, refused = self._served, self._refused
        return {
            "fingerprints": dict(self._fingerprints),
            "n_datasets": len(self._fingerprints),
            # durable roll-up of this shard's subset — what a rejoining
            # node advertises so the router can resync its catalog view
            "compendium_fingerprint": (
                self.compendium.fingerprint if len(self.compendium) > 0 else None
            ),
            "index_bytes": self._index.nbytes() if self._index is not None else 0,
            "served": served,
            "refused": refused,
        }

    # --------------------------------------------------------------- handlers
    def _rpc_partials(self, payload: dict) -> dict:
        """Score one query against the requested (and owned) datasets.

        Payload: ``{"genes": [...], "datasets": [(name, fingerprint), ...]}``.
        Reply: ``{"partials": {name: partial-dict}, "refused": {name: reason}}``.
        Every requested dataset lands in exactly one of the two maps.
        """
        genes = [str(g) for g in payload["genes"]]
        wanted = [(str(n), str(fp)) for n, fp in payload["datasets"]]
        owned: list[str] = []
        refused: dict[str, str] = {}
        for name, fingerprint in wanted:
            have = self._fingerprints.get(name)
            if have is None:
                refused[name] = "dataset not owned by this shard"
            elif have != fingerprint:
                refused[name] = (
                    f"stale content: shard holds {have[:12]}, "
                    f"router expects {fingerprint[:12]}"
                )
            else:
                owned.append(name)
        partials: dict[str, dict] = {}
        if owned:
            assert self._index is not None  # owned names imply an index
            for part in self._index.search_partials(genes, datasets=owned):
                partials[part.name] = {
                    "name": part.name,
                    "fingerprint": part.fingerprint,
                    "n_query_present": part.n_query_present,
                    "weight": part.weight,
                    "scores": part.scores,
                }
        with self._lock:
            self._served += len(partials)
            self._refused += len(refused)
        return {"partials": partials, "refused": refused}


# --------------------------------------------------------------------------
# CLI: python -m repro.cluster_serving.shard
# --------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster_serving.shard",
        description=(
            "Serve one shard of the demo compendium over RPC.  Placement "
            "is deterministic: every shard (and the router) rebuilds the "
            "same synthetic compendium from --seed and computes the same "
            "consistent-hash plan, so they agree on ownership without "
            "any coordination service."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listening port (0 = ephemeral, printed on boot)")
    parser.add_argument("--shards", type=int, required=True,
                        help="total shard count in the topology")
    parser.add_argument("--shard-index", type=int, required=True,
                        help="this node's index in [0, --shards)")
    parser.add_argument("--replication", type=int, default=1,
                        help="replica owners per dataset")
    parser.add_argument("--dtype", choices=("float64", "float32"), default="float64")
    parser.add_argument("--n-workers", type=int, default=1)
    parser.add_argument(
        "--fault-plan", default=None, metavar="SPEC",
        help=(
            "inject seeded transport faults, e.g. "
            "'seed=7,reset_mid_frame=0.3,stall=0.1,stall_seconds=2' "
            "(kinds: connect_refused, reset_mid_frame, stall, slow_drip, "
            "garbage; rates in [0,1])"
        ),
    )
    parser.add_argument("--synth-datasets", type=int, default=12)
    parser.add_argument("--synth-genes", type=int, default=300)
    parser.add_argument("--synth-conditions", type=int, default=14)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if not 0 <= args.shard_index < args.shards:
        parser.error(f"--shard-index must be in [0, {args.shards})")

    from repro.synth import make_spell_compendium

    compendium, _truth = make_spell_compendium(
        n_datasets=args.synth_datasets,
        n_relevant=max(1, args.synth_datasets // 4),
        n_genes=args.synth_genes,
        n_conditions=args.synth_conditions,
        module_size=max(6, args.synth_genes // 20),
        query_size=4,
        seed=args.seed,
    )
    node_ids = [f"shard-{i}" for i in range(args.shards)]
    node_id = node_ids[args.shard_index]
    subset = shard_compendium(
        compendium, node_ids, node_id, replication=args.replication
    )
    fault_plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    node = ShardNode(
        subset,
        node_id=node_id,
        host=args.host,
        port=args.port,
        n_workers=args.n_workers,
        dtype=np.float32 if args.dtype == "float32" else np.float64,
        fault_plan=fault_plan,
    )
    host, port = node.serve_background()
    names = ", ".join(sorted(ds.name for ds in subset)) or "(none)"
    faults = f" [faults: {fault_plan.describe()}]" if fault_plan is not None else ""
    print(
        f"shard {node_id} serving {len(subset)}/{len(compendium)} datasets "
        f"on {host}:{port}: {names}{faults}",
        flush=True,
    )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        node.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
