"""In-process sharded topologies — the test and demo harness.

:func:`build_local_topology` stands up N :class:`ShardNode` servers on
ephemeral loopback ports plus a :class:`RouterService` wired to them,
all in one process.  Real RPC runs over real sockets, so everything the
distributed deployment exercises — framing, fan-out, timeouts, replica
failover — is exercised here too; only process isolation is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster_serving.ring import DEFAULT_VNODES
from repro.cluster_serving.router import RouterService
from repro.cluster_serving.shard import ShardNode, shard_compendium
from repro.data.compendium import Compendium
from repro.rpc.membership import Membership
from repro.spell.cache import DEFAULT_CACHE_SIZE

__all__ = ["LocalTopology", "build_local_topology"]


@dataclass
class LocalTopology:
    """A router plus its in-process shard fleet."""

    router: RouterService
    shards: list[ShardNode]

    def shard(self, node_id: str) -> ShardNode:
        for node in self.shards:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def kill(self, node_id: str) -> ShardNode:
        """Stop one shard's server (simulating node death); returns it."""
        node = self.shard(node_id)
        node.close()
        return node

    def close(self) -> None:
        self.router.close()
        for node in self.shards:
            node.close()

    def __enter__(self) -> "LocalTopology":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_local_topology(
    compendium: Compendium,
    *,
    n_shards: int = 3,
    replication: int = 1,
    vnodes: int = DEFAULT_VNODES,
    dtype=np.float64,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    allow_partial: bool = True,
    rpc_timeout: float | None = 10.0,
) -> LocalTopology:
    """Shard ``compendium`` across ``n_shards`` local nodes and route to them."""
    node_ids = [f"shard-{i}" for i in range(n_shards)]
    shards: list[ShardNode] = []
    addresses: dict[str, tuple[str, int]] = {}
    for node_id in node_ids:
        subset = shard_compendium(
            compendium, node_ids, node_id, replication=replication, vnodes=vnodes
        )
        node = ShardNode(subset, node_id=node_id, dtype=dtype, n_workers=n_workers)
        addresses[node_id] = node.serve_background()
        shards.append(node)
    membership = Membership(
        addresses, timeout=rpc_timeout if rpc_timeout is not None else 30.0
    )
    router = RouterService(
        compendium,
        membership,
        replication=replication,
        vnodes=vnodes,
        n_workers=n_workers,
        cache_size=cache_size,
        allow_partial=allow_partial,
        rpc_timeout=rpc_timeout,
    )
    return LocalTopology(router=router, shards=shards)
