"""In-process sharded topologies — the test, demo, and chaos harness.

:func:`build_local_topology` stands up N :class:`ShardNode` servers on
ephemeral loopback ports plus a :class:`RouterService` wired to them,
all in one process.  Real RPC runs over real sockets, so everything the
distributed deployment exercises — framing, fan-out, timeouts, replica
failover, fault injection, restart/rejoin — is exercised here too; only
process isolation is simulated.

:meth:`LocalTopology.kill` models node death (the server drops its
listener *and* live connections); :meth:`LocalTopology.restart` models
the rejoin path: a brand-new :class:`ShardNode` is rebuilt over the same
subset and re-bound to the same port, then a router heartbeat
re-registers it — closing its circuit breaker and restoring full
(non-partial) service without touching the router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster_serving.hedging import HedgePolicy
from repro.cluster_serving.ring import DEFAULT_VNODES
from repro.cluster_serving.router import RouterService
from repro.cluster_serving.shard import ShardNode, shard_compendium
from repro.data.compendium import Compendium
from repro.rpc.faults import FaultPlan
from repro.rpc.membership import Membership
from repro.rpc.policy import RetryPolicy
from repro.spell.cache import DEFAULT_CACHE_SIZE
from repro.util.errors import ValidationError

__all__ = ["LocalTopology", "build_local_topology"]


@dataclass
class LocalTopology:
    """A router plus its in-process shard fleet."""

    router: RouterService
    shards: list[ShardNode]
    #: everything needed to rebuild a shard on restart
    compendium: Compendium | None = None
    replication: int = 1
    vnodes: int = DEFAULT_VNODES
    dtype: type = np.float64
    n_workers: int = 1
    addresses: dict[str, tuple[str, int]] = field(default_factory=dict)

    def shard(self, node_id: str) -> ShardNode:
        for node in self.shards:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    def kill(self, node_id: str) -> ShardNode:
        """Stop one shard's server (simulating node death); returns it."""
        node = self.shard(node_id)
        node.close()
        return node

    def restart(
        self,
        node_id: str,
        *,
        fault_plan: FaultPlan | None = None,
        compendium: Compendium | None = None,
    ) -> ShardNode:
        """Rebuild a (possibly killed) shard on its original port.

        The new node re-derives its subset from the topology's placement
        inputs — the same resync a real restarted process performs from
        its store — and binds the address the membership table already
        points at, so rejoin needs no router-side change beyond a
        heartbeat.  Pass ``compendium`` to model a node coming back with
        *different* content: its stale fingerprints are refused per
        dataset, never served.
        """
        if self.compendium is None:
            raise ValidationError("topology was not built with restart support")
        old = self.shard(node_id)
        old.close()  # idempotent; frees the port if still bound
        host, port = self.addresses[node_id]
        node_ids = [node.node_id for node in self.shards]
        subset = shard_compendium(
            compendium if compendium is not None else self.compendium,
            node_ids,
            node_id,
            replication=self.replication,
            vnodes=self.vnodes,
        )
        node = ShardNode(
            subset,
            node_id=node_id,
            host=host,
            port=port,
            n_workers=self.n_workers,
            dtype=self.dtype,
            fault_plan=fault_plan,
        )
        node.serve_background()
        self.shards[self.shards.index(old)] = node
        return node

    def close(self) -> None:
        self.router.close()
        for node in self.shards:
            node.close()

    def __enter__(self) -> "LocalTopology":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_local_topology(
    compendium: Compendium,
    *,
    n_shards: int = 3,
    replication: int = 1,
    vnodes: int = DEFAULT_VNODES,
    dtype=np.float64,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    allow_partial: bool = True,
    rpc_timeout: float | None = 10.0,
    hedge: HedgePolicy | None = None,
    retry: RetryPolicy | None = None,
    breaker_failure_threshold: int = 3,
    breaker_reset_timeout: float = 3.0,
    fault_plans: Mapping[str, FaultPlan] | None = None,
) -> LocalTopology:
    """Shard ``compendium`` across ``n_shards`` local nodes and route to them.

    ``fault_plans`` maps node ids to seeded :class:`FaultPlan`\\ s for
    chaos runs; ``hedge``/``retry``/``breaker_*`` tune the router-side
    fault policy (defaults match production defaults).
    """
    node_ids = [f"shard-{i}" for i in range(n_shards)]
    shards: list[ShardNode] = []
    addresses: dict[str, tuple[str, int]] = {}
    for node_id in node_ids:
        subset = shard_compendium(
            compendium, node_ids, node_id, replication=replication, vnodes=vnodes
        )
        node = ShardNode(
            subset,
            node_id=node_id,
            dtype=dtype,
            n_workers=n_workers,
            fault_plan=(fault_plans or {}).get(node_id),
        )
        addresses[node_id] = node.serve_background()
        shards.append(node)
    membership = Membership(
        addresses,
        timeout=rpc_timeout if rpc_timeout is not None else 30.0,
        retry=retry,
        breaker_failure_threshold=breaker_failure_threshold,
        breaker_reset_timeout=breaker_reset_timeout,
    )
    router = RouterService(
        compendium,
        membership,
        replication=replication,
        vnodes=vnodes,
        n_workers=n_workers,
        cache_size=cache_size,
        allow_partial=allow_partial,
        rpc_timeout=rpc_timeout,
        hedge=hedge,
    )
    return LocalTopology(
        router=router,
        shards=shards,
        compendium=compendium,
        replication=replication,
        vnodes=vnodes,
        dtype=dtype,
        n_workers=n_workers,
        addresses=addresses,
    )
