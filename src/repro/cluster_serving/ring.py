"""Consistent-hash placement of datasets onto shard nodes.

Partitioning is keyed on :attr:`~repro.data.dataset.Dataset.fingerprint`
— the durable content token — not on names or list positions, so the
same dataset lands on the same owners from any process that knows the
node-id set (the shard CLI and the router compute placement
independently and *must* agree).  The ring hashes each node id at
``vnodes`` virtual points; a dataset's owners are the first
``replication`` distinct nodes clockwise from its key, so adding or
removing one node only reassigns the datasets adjacent to its points
instead of reshuffling everything.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.util.errors import ValidationError

__all__ = ["DEFAULT_VNODES", "HashRing", "plan_assignment"]

#: Virtual points per node.  Part of the placement contract: every
#: participant (router, each shard CLI) must hash with the same value or
#: they will disagree about who owns what.
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """Stable 64-bit ring position of a key (sha1; not security-sensitive)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring over a fixed set of node ids."""

    def __init__(self, node_ids: Iterable[str], *, vnodes: int = DEFAULT_VNODES) -> None:
        ids = [str(n) for n in node_ids]
        if not ids:
            raise ValidationError("hash ring needs at least one node")
        if len(set(ids)) != len(ids):
            raise ValidationError("duplicate node ids in hash ring")
        if vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {vnodes}")
        self.node_ids = ids
        points = sorted(
            (_point(f"{nid}#{v}"), nid) for nid in ids for v in range(int(vnodes))
        )
        self._points = [p for p, _ in points]
        self._node_at = [n for _, n in points]

    def owners(self, key: str, n: int = 1) -> list[str]:
        """The first ``n`` distinct nodes clockwise from ``key``.

        The list is the dataset's replica preference order: entry 0 is
        the primary, later entries are failover targets.  ``n`` is
        clamped to the node count (a 2-node ring cannot 3-replicate).
        """
        n = max(1, min(int(n), len(self.node_ids)))
        start = bisect_right(self._points, _point(key))
        out: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._node_at)):
            nid = self._node_at[(start + i) % len(self._node_at)]
            if nid not in seen:
                seen.add(nid)
                out.append(nid)
                if len(out) == n:
                    break
        return out


def plan_assignment(
    identities: Sequence[tuple[str, str]],
    node_ids: Iterable[str],
    *,
    replication: int = 1,
    vnodes: int = DEFAULT_VNODES,
) -> dict[str, list[str]]:
    """``dataset name -> replica owners`` for ``(name, fingerprint)`` pairs.

    Keys on the fingerprint, so renaming a dataset does not move its
    data; duplicate fingerprints (identical content under two names)
    simply share owners.
    """
    ring = HashRing(node_ids, vnodes=vnodes)
    return {
        str(name): ring.owners(str(fingerprint), replication)
        for name, fingerprint in identities
    }
