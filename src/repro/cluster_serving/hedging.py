"""Hedged-request policy: racing replicas against tail latency.

The classic tail-at-scale trick: when a shard call has been outstanding
longer than the recent latency percentile, fire the *same* work at the
dataset's next replica and take whichever answer lands first.  The merge
stays bit-identical because partials are keyed by dataset name and
fingerprint-verified — two replicas can only ever contribute the same
content, so "first answer wins" changes latency, never rankings.

:class:`LatencyTracker` is a bounded reservoir of recent per-call RPC
latencies; :class:`HedgePolicy` turns its percentile into the hedge
delay.  Both live at the router (not the membership layer) because
hedging needs the replica map — only the router knows who else can
answer for a dataset.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from repro.util.errors import ValidationError

__all__ = ["HedgePolicy", "LatencyTracker"]


class LatencyTracker:
    """Thread-safe bounded reservoir of recent call latencies (seconds)."""

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValidationError(f"maxlen must be >= 1, got {maxlen}")
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile of the reservoir; None when empty."""
        if not (0.0 <= p <= 100.0):
            raise ValidationError(f"percentile must be in [0, 100], got {p}")
        with self._lock:
            if not self._samples:
                return None
            ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


@dataclass(frozen=True)
class HedgePolicy:
    """When (and how much) to hedge an outstanding replica call.

    The hedge delay is ``factor × percentile(p)`` of recently observed
    call latencies, clamped to ``[min_delay, max_delay]``; before any
    samples exist ``initial_delay`` is used.  ``max_hedges`` bounds
    extra calls per dataset per query, so hedging can at most double
    (with the default 1) the call volume for the affected datasets —
    and only for requests actually stuck in the tail.
    """

    enabled: bool = True
    percentile: float = 95.0
    factor: float = 1.0
    min_delay: float = 0.01
    max_delay: float = 2.0
    initial_delay: float = 0.05
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.percentile <= 100.0):
            raise ValidationError(f"percentile must be in [0, 100], got {self.percentile}")
        if self.factor <= 0:
            raise ValidationError(f"factor must be > 0, got {self.factor}")
        if not (0.0 <= self.min_delay <= self.max_delay):
            raise ValidationError("need 0 <= min_delay <= max_delay")
        if self.max_hedges < 0:
            raise ValidationError(f"max_hedges must be >= 0, got {self.max_hedges}")

    @classmethod
    def disabled(cls) -> "HedgePolicy":
        return cls(enabled=False, max_hedges=0)

    def delay(self, tracker: LatencyTracker) -> float:
        """Seconds an outstanding call may age before its hedge fires."""
        observed = tracker.percentile(self.percentile)
        if observed is None:
            return max(self.min_delay, min(self.initial_delay, self.max_delay))
        return max(self.min_delay, min(self.factor * observed, self.max_delay))
