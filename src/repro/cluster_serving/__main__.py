"""Router CLI: serve the v1 HTTP API over a fleet of shard nodes.

The router rebuilds the same synthetic compendium as its shards (same
``--seed``) to obtain the *catalog* — names, gene lists, fingerprints —
but never normalizes a matrix or builds an index; all scoring happens on
the shards.  The full HTTP surface (auth, rate limits, body caps,
streaming export) is the unmodified :mod:`repro.api.http` facade.

::

    python -m repro.cluster_serving --port 8200 \\
        --shard-addresses 127.0.0.1:8201,127.0.0.1:8202,127.0.0.1:8203
"""

from __future__ import annotations

import argparse
import json

from repro.api.app import ApiApp
from repro.api.limits import DEFAULT_MAX_BODY_BYTES, RequestGate
from repro.cluster_serving.hedging import HedgePolicy
from repro.cluster_serving.router import RouterService
from repro.rpc.membership import Membership
from repro.rpc.policy import RetryPolicy


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster_serving",
        description=(
            "Serve the v1 SPELL query API over HTTP, routing every query "
            "to a fleet of shard nodes (see repro.cluster_serving.shard)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="HTTP listening port (0 = ephemeral)")
    parser.add_argument("--shard-addresses", required=True,
                        help="comma-separated host:port list, in shard-index "
                             "order (entry i is node shard-i)")
    parser.add_argument("--replication", type=int, default=1,
                        help="replica owners per dataset (must match the "
                             "shards' --replication)")
    parser.add_argument("--rpc-timeout", type=float, default=10.0,
                        help="per-shard call timeout in seconds; a slower "
                             "shard is treated as failed for that query")
    parser.add_argument("--no-partial", action="store_true",
                        help="fail queries with SHARD_UNAVAILABLE instead "
                             "of serving flagged partial rankings")
    parser.add_argument("--no-hedge", action="store_true",
                        help="disable hedged replica requests (with "
                             "replication > 1 a shard call stuck past the "
                             "observed latency percentile is raced against "
                             "the next replica; first answer wins)")
    parser.add_argument("--hedge-percentile", type=float, default=95.0,
                        help="latency percentile that arms a hedge")
    parser.add_argument("--hedge-factor", type=float, default=1.0,
                        help="hedge delay = factor x observed percentile")
    parser.add_argument("--retry-tries", type=int, default=2,
                        help="transport tries per shard call (1 disables "
                             "retry); retries use jittered exponential "
                             "backoff and never follow handler errors")
    parser.add_argument("--breaker-threshold", type=int, default=3,
                        help="consecutive transport failures that open a "
                             "shard's circuit breaker")
    parser.add_argument("--breaker-reset", type=float, default=3.0,
                        help="seconds an open breaker waits before "
                             "admitting a half-open probe")
    parser.add_argument("--n-workers", type=int, default=4)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--synth-datasets", type=int, default=12)
    parser.add_argument("--synth-genes", type=int, default=300)
    parser.add_argument("--synth-conditions", type=int, default=14)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--auth-token-file", default=None,
                        help="file holding the shared bearer token; when "
                             "set, requests (except /v1/health) must send "
                             "'Authorization: Bearer <token>' or get 401")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        help="per-client request budget in requests/second "
                             "(token bucket; 0 disables)")
    parser.add_argument("--rate-burst", type=int, default=None)
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)

    addresses: dict[str, tuple[str, int]] = {}
    for i, spec in enumerate(args.shard_addresses.split(",")):
        host, _, port = spec.strip().rpartition(":")
        if not host or not port.isdigit():
            parser.error(f"bad --shard-addresses entry {spec!r} (want host:port)")
        addresses[f"shard-{i}"] = (host, int(port))

    auth_token = None
    if args.auth_token_file is not None:
        with open(args.auth_token_file, encoding="utf-8") as fh:
            auth_token = fh.read().strip()
        if not auth_token:
            parser.error(f"auth token file {args.auth_token_file!r} is empty")

    from repro.api.http import serve
    from repro.synth import make_spell_compendium

    compendium, truth = make_spell_compendium(
        n_datasets=args.synth_datasets,
        n_relevant=max(1, args.synth_datasets // 4),
        n_genes=args.synth_genes,
        n_conditions=args.synth_conditions,
        module_size=max(6, args.synth_genes // 20),
        query_size=4,
        seed=args.seed,
    )
    if args.retry_tries < 1:
        parser.error("--retry-tries must be >= 1")
    membership = Membership(
        addresses,
        timeout=args.rpc_timeout,
        retry=RetryPolicy(max_tries=args.retry_tries),
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_timeout=args.breaker_reset,
    )
    hedge = (
        HedgePolicy.disabled()
        if args.no_hedge
        else HedgePolicy(
            percentile=args.hedge_percentile, factor=args.hedge_factor
        )
    )
    service = RouterService(
        compendium,
        membership,
        replication=args.replication,
        n_workers=args.n_workers,
        cache_size=args.cache_size,
        allow_partial=not args.no_partial,
        rpc_timeout=args.rpc_timeout,
        hedge=hedge,
    )
    gate = RequestGate(
        auth_token=auth_token,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        max_body_bytes=args.max_body_bytes,
    )
    app = ApiApp(service, gate=gate)
    server = serve(app, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    alive = service.shard_stats()["nodes"]
    n_alive = sum(1 for st in alive.values() if st["alive"])
    example = json.dumps({"genes": list(truth.query_genes), "page_size": 10})
    print(
        f"routing v1 API on http://{host}:{port}/v1 over "
        f"{n_alive}/{len(addresses)} live shard(s)",
        flush=True,
    )
    print(f"  try: curl http://{host}:{port}/v1/health", flush=True)
    print(
        f"  try: curl -X POST http://{host}:{port}/v1/search -d '{example}'",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
