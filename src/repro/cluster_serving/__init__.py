"""Scatter-gather sharded serving: shard nodes + query router.

The serving tier that lets the SPELL backend outgrow one machine's
memory: datasets are partitioned across independent store nodes by
consistent hashing on their content fingerprints
(:mod:`~repro.cluster_serving.ring`), each node indexes only its subset
(:mod:`~repro.cluster_serving.shard`), and a coordinator fans every
query out and merges the per-dataset partials bit-identically to a
single-node index (:mod:`~repro.cluster_serving.router`).  The router
duck-types :class:`~repro.spell.service.SpellService`, so the whole v1
API surface — auth, rate limits, body caps, streaming export — serves a
sharded backend unchanged.

Run a demo topology (shared ``--seed`` keeps placement in agreement)::

    python -m repro.cluster_serving.shard --port 8201 --shards 3 --shard-index 0 &
    python -m repro.cluster_serving.shard --port 8202 --shards 3 --shard-index 1 &
    python -m repro.cluster_serving.shard --port 8203 --shards 3 --shard-index 2 &
    python -m repro.cluster_serving --port 8200 \\
        --shard-addresses 127.0.0.1:8201,127.0.0.1:8202,127.0.0.1:8203
"""

from repro.cluster_serving.ring import DEFAULT_VNODES, HashRing, plan_assignment
from repro.cluster_serving.router import RouterService
from repro.cluster_serving.shard import ShardNode, shard_compendium
from repro.cluster_serving.topology import LocalTopology, build_local_topology

__all__ = [
    "DEFAULT_VNODES",
    "HashRing",
    "LocalTopology",
    "RouterService",
    "ShardNode",
    "build_local_topology",
    "plan_assignment",
    "shard_compendium",
]
