"""Work-stealing task pool for irregular workloads (dynamic tile scheduling).

Static tile assignment wastes nodes when content is uneven across the
wall (dense heatmap tiles cost more than empty bezels).  The
work-stealing pool keeps one deque per worker; a worker pops from its own
deque's front and steals from the *back* of the busiest victim when
empty — the standard Cilk-style discipline, here with a single lock per
deque since tasks are coarse (whole tiles).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Sequence

from repro.util.errors import ValidationError

__all__ = ["WorkStealingPool", "StealStats"]


class StealStats:
    """Counters the scheduler bench reports: tasks run and steals per worker."""

    def __init__(self, n_workers: int) -> None:
        self.tasks_run = [0] * n_workers
        self.steals = [0] * n_workers

    @property
    def total_steals(self) -> int:
        return sum(self.steals)

    def imbalance(self) -> float:
        """max/mean tasks-per-worker ratio (1.0 = perfectly even)."""
        total = sum(self.tasks_run)
        if total == 0:
            return 1.0
        mean = total / len(self.tasks_run)
        return max(self.tasks_run) / mean if mean else 1.0


class WorkStealingPool:
    """Execute ``tasks[i] = (fn, args)`` across workers with stealing.

    ``run`` partitions the task list round-robin as each worker's initial
    deque, then lets idle workers steal.  Results come back indexed by
    task position.  A ``fail_worker`` set simulates node death: those
    workers stop before running anything, and their tasks must be stolen
    by survivors (the failure-injection tests assert completion).
    """

    def __init__(self, n_workers: int) -> None:
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Map ``fn`` over ``items`` with stealing; results in input order.

        The batched-query service path uses this: queries are irregular
        (cache hits return in microseconds, cold searches in
        milliseconds), exactly the imbalance stealing absorbs.
        """
        results, _ = self.run([(fn, (item,)) for item in items])
        return results

    def run(
        self,
        tasks: Sequence[tuple[Callable[..., Any], tuple]],
        *,
        fail_workers: set[int] | frozenset[int] = frozenset(),
    ) -> tuple[list[Any], StealStats]:
        for w in fail_workers:
            if not (0 <= w < self.n_workers):
                raise ValidationError(f"fail_worker {w} out of range")
        if len(fail_workers) >= self.n_workers:
            raise ValidationError("cannot fail every worker")
        n_tasks = len(tasks)
        results: list[Any] = [None] * n_tasks
        errors: list[BaseException] = []
        stats = StealStats(self.n_workers)

        deques: list[deque[int]] = [deque() for _ in range(self.n_workers)]
        locks = [threading.Lock() for _ in range(self.n_workers)]
        for i in range(n_tasks):
            deques[i % self.n_workers].append(i)
        outstanding = [n_tasks]
        outstanding_lock = threading.Lock()

        def try_pop(worker: int) -> int | None:
            with locks[worker]:
                if deques[worker]:
                    return deques[worker].popleft()
            return None

        def try_steal(worker: int) -> int | None:
            # steal from the currently longest victim deque (back end)
            victims = sorted(
                (v for v in range(self.n_workers) if v != worker),
                key=lambda v: -len(deques[v]),
            )
            for victim in victims:
                with locks[victim]:
                    if deques[victim]:
                        stats.steals[worker] += 1
                        return deques[victim].pop()
            return None

        def worker_loop(worker: int) -> None:
            if worker in fail_workers:
                return  # simulated dead node: its deque is left for thieves
            while True:
                with outstanding_lock:
                    if outstanding[0] == 0 or errors:
                        return
                task_idx = try_pop(worker)
                if task_idx is None:
                    task_idx = try_steal(worker)
                if task_idx is None:
                    with outstanding_lock:
                        if outstanding[0] == 0:
                            return
                    continue  # spin: tasks may still appear via other deques
                fn, args = tasks[task_idx]
                try:
                    results[task_idx] = fn(*args)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return
                stats.tasks_run[worker] += 1
                with outstanding_lock:
                    outstanding[0] -= 1

        threads = [
            threading.Thread(target=worker_loop, args=(w,), name=f"steal-{w}", daemon=True)
            for w in range(self.n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        if errors:
            raise errors[0]
        with outstanding_lock:
            if outstanding[0] != 0:
                raise ValidationError(f"{outstanding[0]} tasks never completed")
        return results, stats
