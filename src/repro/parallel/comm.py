"""In-process MPI-style message passing.

The paper's display wall is driven by a PC cluster; its natural modern
substrate is MPI (mpi4py).  That library is unavailable offline, so this
module reimplements the mpi4py *programming model* over threads and
queues: ranks run concurrently, communicate only through
``send``/``recv`` and collectives, and share no mutable state by
convention.  NumPy arrays pass by reference (zero-copy, like mpi4py's
buffer path); everything else should be treated as owned by the receiver
after send.

The API mirrors mpi4py's lowercase object methods: ``send``, ``recv``,
``bcast``, ``scatter``, ``gather``, ``allgather``, ``reduce``,
``allreduce``, ``barrier``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.rpc.mailbox import ANY_SOURCE, ANY_TAG, Envelope, Mailbox
from repro.util.errors import CommunicationError

__all__ = ["ANY_SOURCE", "ANY_TAG", "Communicator", "run_ranks"]

_DEFAULT_TIMEOUT = 30.0  # seconds; deadlock insurance for tests

# The (source, tag)-matched mailbox now lives in repro.rpc.mailbox so the
# socket RPC tier and this in-process communicator share one matching
# engine; the aliases keep this module's historical private names alive.
_Envelope = Envelope
_Mailbox = Mailbox


class _World:
    """Shared state for one communicator group (mailboxes + barrier)."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.mailboxes = [Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)
        self.abort = threading.Event()


class Communicator:
    """One rank's handle onto the communicator group.

    Mirrors ``mpi4py.MPI.Comm``'s lowercase-object API.  All collectives
    are implemented over point-to-point with the root as hub, giving the
    same completion semantics MPI guarantees (a collective returns only
    when the calling rank's role in it is done).
    """

    def __init__(self, world: _World, rank: int, *, timeout: float = _DEFAULT_TIMEOUT) -> None:
        self._world = world
        self._rank = rank
        self._timeout = timeout
        # Per-rank collective sequence number.  All ranks execute the same
        # collective sequence (SPMD), so equal counters identify the same
        # collective instance; folding it into the tag keeps back-to-back
        # collectives from consuming each other's messages.
        self._coll_seq = 0

    # ------------------------------------------------------------------ basic
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._world.size

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise CommunicationError(f"{what} {r} out of range [0, {self.size})")

    def _check_abort(self) -> None:
        if self._world.abort.is_set():
            raise CommunicationError("communicator aborted (another rank failed)")

    # --------------------------------------------------------- point-to-point
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_abort()
        self._check_rank(dest, "dest")
        self._world.mailboxes[dest].queue.put(_Envelope(self._rank, tag, obj))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        self._check_abort()
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        env = self._world.mailboxes[self._rank].take(source, tag, self._timeout)
        return env.payload

    def recv_with_source(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> tuple[int, Any]:
        """Like :meth:`recv` but also returns the sender's rank (master loops need it)."""
        self._check_abort()
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        env = self._world.mailboxes[self._rank].take(source, tag, self._timeout)
        return env.source, env.payload

    # -------------------------------------------------------------- collectives
    _COLL_TAG = -1000  # internal tag space; sequence-stamped per instance

    def _next_coll_tag(self, op: int) -> int:
        """Unique tag for this collective instance (op in 0..7)."""
        self._coll_seq += 1
        return self._COLL_TAG - self._coll_seq * 8 - op

    def barrier(self) -> None:
        self._check_abort()
        try:
            self._world.barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise CommunicationError("barrier broken (a rank failed or timed out)")

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_rank(root, "root")
        tag = self._next_coll_tag(1)
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag)
            return obj
        return self.recv(root, tag)

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_rank(root, "root")
        tag = self._next_coll_tag(2)
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise CommunicationError(
                    f"scatter root needs exactly {self.size} values, got "
                    f"{None if values is None else len(values)}"
                )
            for dest in range(self.size):
                if dest != root:
                    self.send(values[dest], dest, tag)
            return values[root]
        return self.recv(root, tag)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        self._check_rank(root, "root")
        tag = self._next_coll_tag(3)
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                src, payload = self.recv_with_source(ANY_SOURCE, tag)
                out[src] = payload
            return out
        self.send(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0) -> Any | None:
        """Reduce with ``op`` applied in rank order (deterministic)."""
        gathered = self.gather(obj, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)


def run_ranks(
    fn: Callable[..., Any],
    n_ranks: int,
    *args: Any,
    timeout: float = _DEFAULT_TIMEOUT,
) -> list[Any]:
    """SPMD launcher: run ``fn(comm, *args)`` on ``n_ranks`` threads.

    The in-process equivalent of ``mpiexec -n N python script.py``.
    Returns the per-rank return values in rank order.  If any rank
    raises, every other rank is aborted and the first exception is
    re-raised (wrapped in :class:`CommunicationError` if it is not one
    already).
    """
    if n_ranks < 1:
        raise CommunicationError(f"need >= 1 ranks, got {n_ranks}")
    world = _World(n_ranks)
    results: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Communicator(world, rank, timeout=timeout)
        try:
            results[rank] = fn(comm, *args)
        except BaseException as exc:  # noqa: BLE001 - propagate any rank failure
            with lock:
                errors.append((rank, exc))
            world.abort.set()
            world.barrier.abort()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}", daemon=True)
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout * 2)
        if t.is_alive():
            world.abort.set()
            raise CommunicationError(f"{t.name} did not terminate (deadlock?)")
    if errors:
        errors.sort(key=lambda e: e[0])
        # Prefer the root cause: a rank that failed with a real error, not
        # one that merely saw the barrier break / abort afterwards.
        root_causes = [e for e in errors if not isinstance(e[1], CommunicationError)]
        rank, exc = (root_causes or errors)[0]
        if isinstance(exc, CommunicationError):
            raise exc
        raise CommunicationError(f"rank {rank} failed: {exc!r}") from exc
    return results
