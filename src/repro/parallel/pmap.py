"""Order-preserving parallel map over a thread pool.

NumPy kernels release the GIL, so thread-level parallelism gives real
speedups for the vectorized workloads in this library (per-dataset SPELL
scoring, per-tile rendering).  Results always come back in input order
and exceptions propagate to the caller.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.util.errors import ValidationError

__all__ = ["parallel_map", "parallel_starmap"]

T = TypeVar("T")
R = TypeVar("R")


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_workers: int = 4,
    serial_threshold: int = 2,
) -> list[R]:
    """Map ``fn`` over ``items`` with ``n_workers`` threads, preserving order.

    Falls back to a plain loop when there are fewer than
    ``serial_threshold`` items or one worker — thread startup is not free
    and the benches compare both paths.
    """
    if n_workers < 1:
        raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
    items = list(items)
    if n_workers == 1 or len(items) < serial_threshold:
        return [fn(item) for item in items]
    with ThreadPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items))


def parallel_starmap(
    fn: Callable[..., R],
    arg_tuples: Sequence[tuple],
    *,
    n_workers: int = 4,
) -> list[R]:
    """``parallel_map`` for functions taking multiple positional arguments."""
    return parallel_map(lambda args: fn(*args), list(arg_tuples), n_workers=n_workers)
