"""Parallel-execution substrate: MPI-style message passing, partitioning,
parallel map and work stealing.

The display wall in the paper is a cluster-driven system; this package
provides the in-process equivalent (see DESIGN.md §2 for the mpi4py
substitution rationale).
"""

from repro.parallel.comm import ANY_SOURCE, ANY_TAG, Communicator, run_ranks
from repro.parallel.partition import (
    block_partition,
    cyclic_partition,
    balanced_partition,
    chunk_ranges,
)
from repro.parallel.pmap import parallel_map, parallel_starmap
from repro.parallel.workqueue import WorkStealingPool, StealStats

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "run_ranks",
    "block_partition",
    "cyclic_partition",
    "balanced_partition",
    "chunk_ranges",
    "parallel_map",
    "parallel_starmap",
    "WorkStealingPool",
    "StealStats",
]
