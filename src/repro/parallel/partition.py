"""Data-partitioning strategies for distributing work across ranks/workers."""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ValidationError

__all__ = ["block_partition", "cyclic_partition", "balanced_partition", "chunk_ranges"]


def block_partition(n_items: int, n_parts: int) -> list[range]:
    """Contiguous blocks, sizes differing by at most one (MPI's classic split).

    Every item appears in exactly one block; empty blocks are allowed when
    ``n_parts > n_items``.
    """
    if n_parts < 1:
        raise ValidationError(f"n_parts must be >= 1, got {n_parts}")
    if n_items < 0:
        raise ValidationError(f"n_items must be >= 0, got {n_items}")
    base, extra = divmod(n_items, n_parts)
    out: list[range] = []
    start = 0
    for p in range(n_parts):
        size = base + (1 if p < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def cyclic_partition(n_items: int, n_parts: int) -> list[list[int]]:
    """Round-robin assignment (item i -> part i % n_parts)."""
    if n_parts < 1:
        raise ValidationError(f"n_parts must be >= 1, got {n_parts}")
    out: list[list[int]] = [[] for _ in range(n_parts)]
    for i in range(n_items):
        out[i % n_parts].append(i)
    return out


def balanced_partition(weights: Sequence[float], n_parts: int) -> list[list[int]]:
    """Greedy LPT (longest-processing-time) weighted load balancing.

    Items are assigned heaviest-first to the currently lightest part —
    the classic 4/3-approximation.  Used to balance tile rendering when
    tiles have unequal content cost.
    """
    if n_parts < 1:
        raise ValidationError(f"n_parts must be >= 1, got {n_parts}")
    for w in weights:
        if w < 0:
            raise ValidationError(f"weights must be non-negative, got {w}")
    import heapq

    order = sorted(range(len(weights)), key=lambda i: -weights[i])
    heap: list[tuple[float, int]] = [(0.0, p) for p in range(n_parts)]
    heapq.heapify(heap)
    out: list[list[int]] = [[] for _ in range(n_parts)]
    for i in order:
        load, part = heapq.heappop(heap)
        out[part].append(i)
        heapq.heappush(heap, (load + float(weights[i]), part))
    for part in out:
        part.sort()
    return out


def chunk_ranges(n_items: int, chunk_size: int) -> list[range]:
    """Split ``range(n_items)`` into chunks of at most ``chunk_size``."""
    if chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
    return [range(s, min(s + chunk_size, n_items)) for s in range(0, n_items, chunk_size)]
