"""Assemble rendered tiles back into one canvas image."""

from __future__ import annotations

import numpy as np

from repro.util.errors import RenderError
from repro.viz.layout import Box

__all__ = ["compose_tiles"]


def compose_tiles(
    canvas_width: int,
    canvas_height: int,
    tiles: list[tuple[Box, np.ndarray]],
    *,
    background: tuple[int, int, int] = (0, 0, 0),
    require_full_coverage: bool = False,
) -> np.ndarray:
    """Paste ``(region, pixels)`` tiles onto a canvas-sized image.

    Overlaps are rejected (a tile grid never overlaps; an overlap means a
    scheduling bug).  With ``require_full_coverage`` the composite fails
    unless every canvas pixel was written — used by tests on bezel-free
    geometries where full coverage is expected.
    """
    if canvas_width < 1 or canvas_height < 1:
        raise RenderError(f"canvas must be positive, got {canvas_width}x{canvas_height}")
    canvas = np.empty((canvas_height, canvas_width, 3), dtype=np.uint8)
    canvas[:] = np.asarray(background, dtype=np.uint8)
    covered = np.zeros((canvas_height, canvas_width), dtype=bool)
    for region, pixels in tiles:
        if pixels.shape != (region.h, region.w, 3):
            raise RenderError(
                f"tile pixels {pixels.shape} do not match region {region.w}x{region.h}"
            )
        if region.x < 0 or region.y < 0 or region.x1 > canvas_width or region.y1 > canvas_height:
            raise RenderError(f"tile region {region} exceeds canvas")
        patch = covered[region.y : region.y1, region.x : region.x1]
        if patch.any():
            raise RenderError(f"tile region {region} overlaps previously composed pixels")
        canvas[region.y : region.y1, region.x : region.x1] = pixels
        patch[:] = True
    if require_full_coverage and not covered.all():
        missing = int((~covered).sum())
        raise RenderError(f"composite left {missing} canvas pixels uncovered")
    return canvas
