"""Simulated scalable display wall (paper Figure 3, DESIGN.md §2 substitution).

A master rank distributes display-list tiles to render-node ranks over
the MPI-style communicator, composites the returned pixels, and enforces
a swap-lock barrier per frame.  Schedulers: static blocks, cost-balanced
LPT, dynamic master-worker, and work stealing with fault injection.
"""

from repro.wall.geometry import WallGeometry, TileSpec, DESKTOP_2MPIXEL
from repro.wall.protocol import (
    FrameBegin,
    RenderTile,
    TileDone,
    NodeFailed,
    Shutdown,
    TAG_CONTROL,
    TAG_TASK,
    TAG_RESULT,
)
from repro.wall.scheduler import static_assignment, cost_balanced_assignment, SCHEDULE_MODES
from repro.wall.compositor import compose_tiles
from repro.wall.metrics import FrameMetrics
from repro.wall.cluster import DisplayWall, WallFrame
from repro.wall.input import PointerEvent, HitResult, WallInputRouter
from repro.wall.frames import SequenceStats, FrameSequenceDriver
from repro.wall.bandwidth import rle_encode, rle_decode, FrameTraffic, estimate_traffic

__all__ = [
    "WallGeometry",
    "TileSpec",
    "DESKTOP_2MPIXEL",
    "FrameBegin",
    "RenderTile",
    "TileDone",
    "NodeFailed",
    "Shutdown",
    "TAG_CONTROL",
    "TAG_TASK",
    "TAG_RESULT",
    "static_assignment",
    "cost_balanced_assignment",
    "SCHEDULE_MODES",
    "compose_tiles",
    "FrameMetrics",
    "DisplayWall",
    "WallFrame",
    "PointerEvent",
    "HitResult",
    "WallInputRouter",
    "SequenceStats",
    "FrameSequenceDriver",
    "rle_encode",
    "rle_decode",
    "FrameTraffic",
    "estimate_traffic",
]
