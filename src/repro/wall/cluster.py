"""The simulated display wall cluster.

One master rank orchestrates N render-node ranks over the MPI-style
communicator: broadcast the frame's display list, hand out tiles
(statically, cost-balanced, or dynamically), collect pixels, composite,
and hold the swap-lock barrier so a frame is complete everywhere before
it is "displayed".  A work-stealing mode runs the same tile workload on
the :class:`~repro.parallel.workqueue.WorkStealingPool` and supports
fault injection (dead nodes whose tiles survivors must pick up).

This is the substrate for the paper's Figure 3 deployment and the FIG3
scalability bench; the byte-identical-composite property is what makes
tiled rendering trustworthy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.comm import ANY_SOURCE, Communicator, run_ranks
from repro.parallel.workqueue import WorkStealingPool
from repro.util.errors import RenderError, ValidationError
from repro.viz.scene import DisplayList
from repro.wall.compositor import compose_tiles
from repro.wall.geometry import TileSpec, WallGeometry
from repro.wall.metrics import FrameMetrics
from repro.wall.protocol import (
    TAG_RESULT,
    TAG_TASK,
    NodeFailed,
    RenderTile,
    Shutdown,
    TileDone,
)
from repro.wall.scheduler import SCHEDULE_MODES, cost_balanced_assignment, static_assignment

__all__ = ["WallFrame", "DisplayWall"]


@dataclass
class WallFrame:
    """A fully composited frame plus its performance metrics."""

    pixels: np.ndarray  # (canvas_h, canvas_w, 3) uint8
    metrics: FrameMetrics
    tile_pixels: dict[int, np.ndarray] = field(default_factory=dict, repr=False)


class DisplayWall:
    """Render display lists across a simulated tiled wall.

    Parameters
    ----------
    geometry:
        Tile grid and resolutions.
    n_nodes:
        Render nodes in the cluster (excludes the master).
    schedule:
        One of :data:`SCHEDULE_MODES`.
    """

    def __init__(
        self, geometry: WallGeometry, *, n_nodes: int = 4, schedule: str = "dynamic"
    ) -> None:
        if schedule not in SCHEDULE_MODES:
            raise ValidationError(f"unknown schedule {schedule!r}; choose from {SCHEDULE_MODES}")
        if n_nodes < 1:
            raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.geometry = geometry
        self.n_nodes = n_nodes
        self.schedule = schedule
        self._frame_counter = 0

    # ------------------------------------------------------------- public API
    def render(
        self, display_list: DisplayList, *, fail_nodes: set[int] | frozenset[int] = frozenset()
    ) -> WallFrame:
        """Render one frame.  ``fail_nodes`` simulates dead render nodes.

        Fault injection requires a reassigning scheduler (``dynamic`` or
        ``workstealing``); static modes raise, matching reality — a
        static wall loses its dead projector's tiles.
        """
        self._check_canvas(display_list)
        for n in fail_nodes:
            if not (0 <= n < self.n_nodes):
                raise ValidationError(f"fail_node {n} out of range [0, {self.n_nodes})")
        if len(fail_nodes) >= self.n_nodes:
            raise ValidationError("cannot fail every node")
        if fail_nodes and self.schedule in ("static", "balanced"):
            raise ValidationError(
                f"schedule {self.schedule!r} cannot survive node failure; "
                "use 'dynamic', 'workstealing' or 'rpc'"
            )
        self._frame_counter += 1
        frame_id = self._frame_counter
        if self.schedule == "workstealing":
            return self._render_workstealing(display_list, frame_id, fail_nodes)
        if self.schedule == "rpc":
            return self._render_rpc(display_list, frame_id, fail_nodes)
        return self._render_comm(display_list, frame_id, fail_nodes)

    def render_serial(self, display_list: DisplayList) -> WallFrame:
        """Single-node reference render (the correctness baseline)."""
        self._check_canvas(display_list)
        self._frame_counter += 1
        start = time.perf_counter()
        pixels = display_list.render_full()
        elapsed = time.perf_counter() - start
        metrics = FrameMetrics(
            frame_id=self._frame_counter,
            n_tiles=self.geometry.n_tiles,
            n_nodes=1,
            frame_seconds=max(elapsed, 1e-9),
            busy_seconds={0: elapsed},
            tiles_per_node={0: self.geometry.n_tiles},
        )
        return WallFrame(pixels=pixels, metrics=metrics)

    # ---------------------------------------------------------- comm backends
    def _render_comm(
        self, display_list: DisplayList, frame_id: int, fail_nodes
    ) -> WallFrame:
        tiles = self.geometry.tiles()
        start = time.perf_counter()
        results = run_ranks(
            self._rank_main,
            self.n_nodes + 1,
            display_list,
            frame_id,
            tiles,
            frozenset(fail_nodes),
        )
        elapsed = time.perf_counter() - start
        done_tiles, busy, tiles_per_node = results[0]
        composite = compose_tiles(
            self.geometry.canvas_width,
            self.geometry.canvas_height,
            [(tiles[tid].region, px) for tid, px in sorted(done_tiles.items())],
            background=display_list.background,
        )
        metrics = FrameMetrics(
            frame_id=frame_id,
            n_tiles=len(tiles),
            n_nodes=self.n_nodes,
            frame_seconds=max(elapsed, 1e-9),
            busy_seconds=busy,
            tiles_per_node=tiles_per_node,
            failed_nodes=tuple(sorted(fail_nodes)),
        )
        return WallFrame(pixels=composite, metrics=metrics, tile_pixels=done_tiles)

    def _rank_main(self, comm: Communicator, display_list, frame_id, tiles, fail_nodes):
        """SPMD entry: rank 0 is the master, ranks 1..N are render nodes."""
        # the display list travels by bcast, mirroring data distribution on a
        # real cluster (in-process it is a zero-copy reference)
        display_list = comm.bcast(display_list, root=0)
        if comm.rank == 0:
            result = self._master_loop(comm, display_list, frame_id, tiles, fail_nodes)
        else:
            self._node_loop(comm, display_list, comm.rank - 1 in fail_nodes)
            result = None
        comm.barrier()  # swap-lock: no rank proceeds until the frame is whole
        return result

    def _master_loop(self, comm, display_list, frame_id, tiles, fail_nodes):
        n_nodes = comm.size - 1
        pending: list[TileSpec] = []
        assigned: dict[int, list[TileSpec]] = {}
        if self.schedule == "static":
            assignment = static_assignment(tiles, n_nodes)
        elif self.schedule == "balanced":
            assignment = cost_balanced_assignment(tiles, n_nodes, display_list)
        else:  # dynamic: seed one tile per node, queue the rest
            assignment = {node: [] for node in range(n_nodes)}
            pending = list(tiles)

        inflight: dict[int, list[TileSpec]] = {node: [] for node in range(n_nodes)}
        alive = set(range(n_nodes))
        done: dict[int, np.ndarray] = {}
        busy: dict[int, float] = {node: 0.0 for node in range(n_nodes)}
        tiles_per_node: dict[int, int] = {node: 0 for node in range(n_nodes)}

        def dispatch(node: int, tile: TileSpec) -> None:
            comm.send(RenderTile(frame_id, tile.tile_id, tile.region), node + 1, TAG_TASK)
            inflight[node].append(tile)

        if self.schedule == "dynamic":
            for node in range(n_nodes):
                if pending:
                    dispatch(node, pending.pop(0))
        else:
            for node, node_tiles in assignment.items():
                for tile in node_tiles:
                    dispatch(node, tile)

        tiles_by_id = {t.tile_id: t for t in tiles}
        while len(done) < len(tiles):
            src, msg = comm.recv_with_source(ANY_SOURCE, TAG_RESULT)
            node = src - 1
            if isinstance(msg, NodeFailed):
                alive.discard(node)
                # requeue everything that node had not finished
                requeue = inflight.pop(node, [])
                inflight[node] = []
                if self.schedule != "dynamic":
                    raise RenderError("node failure under a static schedule")
                pending = requeue + pending
                # keep survivors fed
                for other in sorted(alive):
                    if pending and not inflight[other]:
                        dispatch(other, pending.pop(0))
                if not alive:
                    raise RenderError("all render nodes failed")
                continue
            assert isinstance(msg, TileDone)
            done[msg.tile_id] = msg.pixels
            busy[node] += msg.render_seconds
            tiles_per_node[node] += 1
            inflight[node] = [t for t in inflight[node] if t.tile_id != msg.tile_id]
            if self.schedule == "dynamic" and pending and node in alive:
                dispatch(node, pending.pop(0))
            _ = tiles_by_id  # (kept for symmetry; ids already map via `tiles`)
        for node in range(n_nodes):
            comm.send(Shutdown(), node + 1, TAG_TASK)
        return done, busy, tiles_per_node

    @staticmethod
    def _node_loop(comm, display_list, simulate_failure: bool) -> None:
        if simulate_failure:
            comm.send(NodeFailed(node_rank=comm.rank), 0, TAG_RESULT)
            # a dead node still reaches the barrier in _rank_main: the real
            # machine's swap hardware does not wait for a crashed PC, and the
            # in-process barrier must not deadlock.
            # drain any task already sent to us so the mailbox does not leak
            while True:
                msg = comm.recv(0, TAG_TASK)
                if isinstance(msg, Shutdown):
                    return
                # drop RenderTile silently: we are "dead"
                return
        while True:
            msg = comm.recv(0, TAG_TASK)
            if isinstance(msg, Shutdown):
                return
            assert isinstance(msg, RenderTile)
            t0 = time.perf_counter()
            box = msg.region
            pixels = display_list.render_region(box.x, box.y, box.w, box.h)
            dt = time.perf_counter() - t0
            comm.send(
                TileDone(msg.frame_id, msg.tile_id, pixels, comm.rank, dt), 0, TAG_RESULT
            )

    # ------------------------------------------------------------ rpc backend
    def _render_rpc(self, display_list, frame_id: int, fail_nodes) -> WallFrame:
        """Dynamic scheduling over the generic RPC layer (real sockets).

        Each render node is an :class:`~repro.rpc.server.RpcServer`; the
        master feeds tiles in waves through
        :meth:`~repro.rpc.membership.Membership.scatter` — one tile per
        alive node per wave — and requeues the tiles of any node whose
        transport fails, exactly the degradation contract the sharded
        query router relies on.  ``fail_nodes`` die before their first
        tile (their server closes), so survivors pick up the whole wall.
        """
        from repro.rpc.membership import Membership
        from repro.rpc.server import RpcServer

        tiles = self.geometry.tiles()
        start = time.perf_counter()

        def make_handler(dl):
            def render_tile(payload: dict) -> dict:
                t0 = time.perf_counter()
                x, y, w, h = payload["region"]
                pixels = dl.render_region(x, y, w, h)
                return {
                    "tile_id": payload["tile_id"],
                    "pixels": pixels,
                    "render_seconds": time.perf_counter() - t0,
                }
            return render_tile

        servers: list = []
        addresses: dict[str, tuple[str, int]] = {}
        node_ids = [f"wall-{n}" for n in range(self.n_nodes)]
        try:
            for nid in node_ids:
                server = RpcServer(
                    {"render_tile": make_handler(display_list)}, node_id=nid
                )
                server.serve_background()
                addresses[nid] = server.address
                servers.append(server)
            for n in fail_nodes:
                servers[n].close()  # dead before the first tile arrives

            done: dict[int, np.ndarray] = {}
            busy = {n: 0.0 for n in range(self.n_nodes)}
            tiles_per_node = {n: 0 for n in range(self.n_nodes)}
            with Membership(addresses, timeout=30.0) as membership:
                alive = list(node_ids)
                pending = list(tiles)
                while pending:
                    if not alive:
                        raise RenderError("all render nodes failed")
                    wave = {nid: pending.pop(0) for nid in list(alive) if pending}
                    result = membership.scatter(
                        {
                            nid: (
                                "render_tile",
                                {
                                    "frame_id": frame_id,
                                    "tile_id": tile.tile_id,
                                    "region": (
                                        tile.region.x, tile.region.y,
                                        tile.region.w, tile.region.h,
                                    ),
                                },
                            )
                            for nid, tile in wave.items()
                        }
                    )
                    for nid, reply in result.ok.items():
                        node = node_ids.index(nid)
                        done[reply["tile_id"]] = reply["pixels"]
                        busy[node] += reply["render_seconds"]
                        tiles_per_node[node] += 1
                    for nid in result.failed:
                        alive.remove(nid)
                        pending.insert(0, wave[nid])  # requeue, never drop
        finally:
            for server in servers:
                server.close()

        elapsed = time.perf_counter() - start
        composite = compose_tiles(
            self.geometry.canvas_width,
            self.geometry.canvas_height,
            [(tiles[tid].region, px) for tid, px in sorted(done.items())],
            background=display_list.background,
        )
        metrics = FrameMetrics(
            frame_id=frame_id,
            n_tiles=len(tiles),
            n_nodes=self.n_nodes,
            frame_seconds=max(elapsed, 1e-9),
            busy_seconds=busy,
            tiles_per_node=tiles_per_node,
            failed_nodes=tuple(sorted(fail_nodes)),
        )
        return WallFrame(pixels=composite, metrics=metrics, tile_pixels=done)

    # ------------------------------------------------------- stealing backend
    def _render_workstealing(self, display_list, frame_id, fail_nodes) -> WallFrame:
        tiles = self.geometry.tiles()
        busy: dict[int, float] = {n: 0.0 for n in range(self.n_nodes)}

        def render_tile(tile: TileSpec, worker_slot: list[float]):
            t0 = time.perf_counter()
            box = tile.region
            pixels = display_list.render_region(box.x, box.y, box.w, box.h)
            worker_slot.append(time.perf_counter() - t0)
            return tile.tile_id, pixels

        slots: list[list[float]] = [[] for _ in tiles]
        tasks = [(render_tile, (tile, slots[i])) for i, tile in enumerate(tiles)]
        pool = WorkStealingPool(self.n_nodes)
        start = time.perf_counter()
        results, stats = pool.run(tasks, fail_workers=set(fail_nodes))
        elapsed = time.perf_counter() - start
        done = {tid: px for tid, px in results}
        # attribute busy time to workers via run counts (per-tile times summed)
        total_tile_time = sum(s[0] for s in slots if s)
        for w in range(self.n_nodes):
            share = stats.tasks_run[w] / max(1, len(tiles))
            busy[w] = total_tile_time * share
        composite = compose_tiles(
            self.geometry.canvas_width,
            self.geometry.canvas_height,
            [(tiles[tid].region, px) for tid, px in sorted(done.items())],
            background=display_list.background,
        )
        metrics = FrameMetrics(
            frame_id=frame_id,
            n_tiles=len(tiles),
            n_nodes=self.n_nodes,
            frame_seconds=max(elapsed, 1e-9),
            busy_seconds=busy,
            tiles_per_node={w: stats.tasks_run[w] for w in range(self.n_nodes)},
            failed_nodes=tuple(sorted(fail_nodes)),
        )
        return WallFrame(pixels=composite, metrics=metrics, tile_pixels=done)

    # ---------------------------------------------------------------- helpers
    def _check_canvas(self, display_list: DisplayList) -> None:
        if (display_list.width, display_list.height) != (
            self.geometry.canvas_width,
            self.geometry.canvas_height,
        ):
            raise RenderError(
                f"display list canvas {display_list.width}x{display_list.height} does not "
                f"match wall canvas {self.geometry.canvas_width}x{self.geometry.canvas_height}"
            )
