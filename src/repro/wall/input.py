"""Input-event routing for the display wall.

The paper's wall is interactive: "user interaction like selecting
clusters of genes or tree nodes, panning and zooming views" (§2)
happens *on the wall*, where a pointer position is a canvas coordinate
that must be routed to the right tile, pane, and view region before it
can mean anything to the application.

:class:`WallInputRouter` performs that translation: canvas point ->
tile (or bezel), pane, view (title/global/zoom), and data row — and
turns drag gestures over a global view into ForestView region
selections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import ValidationError
from repro.viz.layout import Box, hsplit
from repro.wall.geometry import WallGeometry

if TYPE_CHECKING:  # core imports wall; keep this edge lazy to avoid a cycle
    from repro.core.app import ForestView
    from repro.core.rendering import FrameStyle

__all__ = ["PointerEvent", "HitResult", "WallInputRouter"]


@dataclass(frozen=True)
class PointerEvent:
    """A pointer interaction in wall-canvas coordinates."""

    x: int
    y: int
    kind: str = "press"  # press | drag | release


@dataclass(frozen=True)
class HitResult:
    """What lives under a canvas point."""

    tile_id: int | None  # None = bezel (between physical displays)
    pane_name: str | None  # None = outside every pane
    view: str | None  # "title" | "global" | "zoom" | "status" | None
    data_row: int | None  # global-view display row under the pointer


class WallInputRouter:
    """Translate wall-canvas pointer events into ForestView operations.

    The router recomputes the same pane layout the renderer uses (the
    layout is a pure function of canvas size and pane count), so hits
    agree with pixels exactly.
    """

    def __init__(
        self,
        app: "ForestView",
        geometry: WallGeometry,
        *,
        style: "type[FrameStyle] | None" = None,
    ) -> None:
        if style is None:
            from repro.core.rendering import FrameStyle

            style = FrameStyle
        self.app = app
        self.geometry = geometry
        self.style = style
        self._drag_anchor: tuple[str, int] | None = None  # (pane, row)

    # ------------------------------------------------------------- geometry
    def _layout(self) -> tuple[list[Box], Box]:
        style = self.style
        canvas = Box(0, 0, self.geometry.canvas_width, self.geometry.canvas_height).inset(
            style.margin
        )
        body = Box(canvas.x, canvas.y, canvas.w, canvas.h - style.status_height - style.view_gap)
        status = Box(canvas.x, body.y1 + style.view_gap, canvas.w, style.status_height)
        panes = hsplit(body, [1.0] * len(self.app.panes), gap=style.pane_gap)
        return panes, status

    def _pane_views(self, pane_box: Box, pane) -> tuple[Box, Box, Box]:
        style = self.style
        inner = pane_box.inset(1)
        title = Box(inner.x, inner.y, inner.w, style.title_height)
        rest = Box(
            inner.x, inner.y + style.title_height + 1, inner.w,
            inner.h - style.title_height - 1,
        )
        gf = pane.preferences.global_fraction
        global_h = int(rest.h * gf)
        global_box = Box(rest.x, rest.y, rest.w, global_h)
        zoom_box = Box(
            rest.x, rest.y + global_h + style.view_gap, rest.w,
            rest.h - global_h - style.view_gap,
        )
        return title, global_box, zoom_box

    # ------------------------------------------------------------------ hits
    def hit_test(self, x: int, y: int) -> HitResult:
        """Identify the tile, pane, view and data row under (x, y)."""
        if not (0 <= x < self.geometry.canvas_width and 0 <= y < self.geometry.canvas_height):
            raise ValidationError(f"({x},{y}) outside the wall canvas")
        tile = self.geometry.tile_at(x, y)
        tile_id = tile.tile_id if tile is not None else None

        panes, status = self._layout()
        if status.contains(x, y):
            return HitResult(tile_id, None, "status", None)
        for pane, box in zip(self.app.panes, panes):
            if not box.contains(x, y):
                continue
            title, global_box, zoom_box = self._pane_views(box, pane)
            if title.contains(x, y):
                return HitResult(tile_id, pane.name, "title", None)
            if global_box.contains(x, y):
                row = (y - global_box.y) * pane.n_genes // max(1, global_box.h)
                row = min(max(row, 0), pane.n_genes - 1)
                return HitResult(tile_id, pane.name, "global", row)
            if zoom_box.contains(x, y):
                return HitResult(tile_id, pane.name, "zoom", None)
            return HitResult(tile_id, pane.name, None, None)
        return HitResult(tile_id, None, None, None)

    # --------------------------------------------------------------- gestures
    def handle(self, event: PointerEvent):
        """Process one pointer event; a press->release drag over a global
        view becomes a region selection (the paper's mouse-highlight
        subset method).  Returns the created selection on release, else
        None.
        """
        hit = self.hit_test(event.x, event.y)
        if event.kind == "press":
            if hit.view == "global" and hit.data_row is not None:
                self._drag_anchor = (hit.pane_name, hit.data_row)
            else:
                self._drag_anchor = None
            return None
        if event.kind == "release":
            anchor = self._drag_anchor
            self._drag_anchor = None
            if anchor is None or hit.pane_name != anchor[0] or hit.data_row is None:
                return None
            pane_name, start = anchor
            lo, hi = sorted((start, hit.data_row))
            return self.app.select_region(pane_name, lo, hi + 1)
        return None  # drag events only matter at release

    def drag_select(self, pane_name: str, x: int, y0: int, y1: int):
        """Convenience: a vertical drag at canvas column ``x`` from y0 to y1."""
        self.handle(PointerEvent(x, y0, "press"))
        result = self.handle(PointerEvent(x, y1, "release"))
        if result is None:
            raise ValidationError(
                f"drag at x={x} did not land on the global view of {pane_name!r}"
            )
        return result
