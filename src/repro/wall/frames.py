"""Multi-frame sequences: interactive pan/zoom animation on the wall.

One frame is a snapshot; interaction on the wall is a *sequence* of
frames under the swap-lock discipline (frame N visible everywhere before
frame N+1 starts).  :class:`FrameSequenceDriver` runs a scripted
interaction — each step mutates application state and re-renders — and
accumulates the per-frame metrics an interactivity study needs
(sustained frame rate, per-stage cost).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.util.errors import ValidationError
from repro.viz.scene import DisplayList
from repro.wall.cluster import DisplayWall, WallFrame

__all__ = ["SequenceStats", "FrameSequenceDriver"]


@dataclass
class SequenceStats:
    """Aggregate results of a rendered frame sequence."""

    n_frames: int
    total_seconds: float
    frame_seconds: list[float] = field(default_factory=list)
    update_seconds: list[float] = field(default_factory=list)

    @property
    def fps(self) -> float:
        if self.total_seconds <= 0:
            raise ValidationError("sequence recorded no elapsed time")
        return self.n_frames / self.total_seconds

    def mean_frame_seconds(self) -> float:
        if not self.frame_seconds:
            raise ValidationError("no frames recorded")
        return sum(self.frame_seconds) / len(self.frame_seconds)

    def worst_frame_seconds(self) -> float:
        if not self.frame_seconds:
            raise ValidationError("no frames recorded")
        return max(self.frame_seconds)


class FrameSequenceDriver:
    """Run a scripted interaction as a frame sequence on a wall.

    Parameters
    ----------
    wall:
        The display wall to render on.
    build_frame:
        Produces the current display list (called once per frame after
        the step mutates state).
    """

    def __init__(self, wall: DisplayWall, build_frame: Callable[[], DisplayList]) -> None:
        self.wall = wall
        self.build_frame = build_frame
        self.frames: list[WallFrame] = []

    def run(
        self,
        steps: list[Callable[[int], None]],
        *,
        keep_pixels: bool = False,
        verify_against_serial: bool = False,
    ) -> SequenceStats:
        """Execute ``steps`` (one per frame) and render after each.

        ``verify_against_serial`` re-renders every frame on a single
        surface and asserts byte-identity — the sequence-level version of
        the tiling invariant (slow; tests only).
        """
        if not steps:
            raise ValidationError("sequence needs at least one step")
        self.frames = []
        stats = SequenceStats(n_frames=len(steps), total_seconds=0.0)
        t_start = time.perf_counter()
        for frame_no, step in enumerate(steps):
            t0 = time.perf_counter()
            step(frame_no)
            display_list = self.build_frame()
            stats.update_seconds.append(time.perf_counter() - t0)

            t0 = time.perf_counter()
            frame = self.wall.render(display_list)
            stats.frame_seconds.append(time.perf_counter() - t0)
            if verify_against_serial:
                reference = display_list.render_full()
                if not np.array_equal(frame.pixels, reference):
                    raise ValidationError(f"frame {frame_no} diverged from serial render")
            if keep_pixels:
                self.frames.append(frame)
            else:
                self.frames.append(
                    WallFrame(pixels=np.empty((0, 0, 3), dtype=np.uint8), metrics=frame.metrics)
                )
        stats.total_seconds = time.perf_counter() - t_start
        return stats

    @staticmethod
    def scroll_steps(app, rows_per_frame: int, n_frames: int) -> list[Callable[[int], None]]:
        """A canned interaction: scroll the shared zoom viewport each frame."""
        if n_frames < 1 or rows_per_frame < 0:
            raise ValidationError("need n_frames >= 1 and rows_per_frame >= 0")

        def make_step(_frame_no: int) -> None:
            app.sync_layer.shared_viewport.scroll_by(rows_per_frame)

        return [make_step for _ in range(n_frames)]
