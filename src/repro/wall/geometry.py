"""Tiled display wall geometry.

The Princeton wall is a grid of projectors, each a fixed-resolution tile
of one large virtual canvas; bezels/gaps between physical displays eat
canvas pixels that are never shown.  This module does the arithmetic:
canvas size, per-tile canvas regions, and the pixel-capacity numbers the
FIG3 bench reports against the paper's "two orders of magnitude" claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ValidationError
from repro.viz.layout import Box

__all__ = ["TileSpec", "WallGeometry", "DESKTOP_2MPIXEL"]


@dataclass(frozen=True)
class TileSpec:
    """One display tile: its grid position and the canvas region it shows."""

    tile_id: int
    row: int
    col: int
    region: Box


@dataclass(frozen=True)
class WallGeometry:
    """A rows x cols grid of tile_width x tile_height displays.

    ``bezel_px`` is the canvas width hidden between adjacent tiles (0 for
    a seamless projector wall, > 0 for LCD grids).
    """

    rows: int
    cols: int
    tile_width: int
    tile_height: int
    bezel_px: int = 0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValidationError(f"grid must be >= 1x1, got {self.rows}x{self.cols}")
        if self.tile_width < 1 or self.tile_height < 1:
            raise ValidationError(
                f"tile resolution must be positive, got {self.tile_width}x{self.tile_height}"
            )
        if self.bezel_px < 0:
            raise ValidationError(f"bezel_px must be >= 0, got {self.bezel_px}")

    # ------------------------------------------------------------------ sizes
    @property
    def canvas_width(self) -> int:
        return self.cols * self.tile_width + (self.cols - 1) * self.bezel_px

    @property
    def canvas_height(self) -> int:
        return self.rows * self.tile_height + (self.rows - 1) * self.bezel_px

    @property
    def n_tiles(self) -> int:
        return self.rows * self.cols

    @property
    def displayed_pixels(self) -> int:
        """Pixels actually visible (excludes bezel-hidden canvas)."""
        return self.n_tiles * self.tile_width * self.tile_height

    @property
    def canvas_pixels(self) -> int:
        return self.canvas_width * self.canvas_height

    def capability_ratio(self, reference_pixels: int) -> float:
        """Displayed pixels relative to a reference display (paper §1's 'two
        orders of magnitude' compares against a 2-Mpixel desktop)."""
        if reference_pixels < 1:
            raise ValidationError(f"reference_pixels must be >= 1, got {reference_pixels}")
        return self.displayed_pixels / reference_pixels

    # ------------------------------------------------------------------ tiles
    def tile_region(self, row: int, col: int) -> Box:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValidationError(
                f"tile ({row},{col}) outside grid {self.rows}x{self.cols}"
            )
        x = col * (self.tile_width + self.bezel_px)
        y = row * (self.tile_height + self.bezel_px)
        return Box(x, y, self.tile_width, self.tile_height)

    def tiles(self) -> list[TileSpec]:
        """All tiles in row-major order with stable ids."""
        out: list[TileSpec] = []
        for r in range(self.rows):
            for c in range(self.cols):
                out.append(TileSpec(tile_id=r * self.cols + c, row=r, col=c,
                                    region=self.tile_region(r, c)))
        return out

    def tile_at(self, x: int, y: int) -> TileSpec | None:
        """The tile displaying canvas pixel (x, y), or None if it falls in a bezel."""
        if not (0 <= x < self.canvas_width and 0 <= y < self.canvas_height):
            raise ValidationError(f"({x},{y}) outside canvas")
        stride_x = self.tile_width + self.bezel_px
        stride_y = self.tile_height + self.bezel_px
        col, offx = divmod(x, stride_x)
        row, offy = divmod(y, stride_y)
        if offx >= self.tile_width or offy >= self.tile_height:
            return None  # bezel
        return TileSpec(
            tile_id=row * self.cols + col, row=row, col=col,
            region=self.tile_region(row, col),
        )


#: The paper's desktop reference: "Today's 2-million-pixel, 30-inch desktop display".
DESKTOP_2MPIXEL = WallGeometry(rows=1, cols=1, tile_width=1600, tile_height=1200)
