"""Per-frame performance accounting for the simulated wall."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError

__all__ = ["FrameMetrics"]


@dataclass
class FrameMetrics:
    """What one rendered frame cost.

    ``busy_seconds[r]`` is the total render time node ``r`` spent on its
    tiles; ``frame_seconds`` is wall-clock start-to-composite.  Speedup is
    estimated as total busy time over frame time — the usual "how much
    work happened per unit wall-clock" measure for a master/worker frame.
    """

    frame_id: int
    n_tiles: int
    n_nodes: int
    frame_seconds: float
    busy_seconds: dict[int, float] = field(default_factory=dict)
    tiles_per_node: dict[int, int] = field(default_factory=dict)
    failed_nodes: tuple[int, ...] = ()

    def total_busy(self) -> float:
        return float(sum(self.busy_seconds.values()))

    def parallel_speedup(self) -> float:
        """Estimated speedup over a single node doing all tile work serially."""
        if self.frame_seconds <= 0:
            raise ValidationError("frame_seconds must be positive to compute speedup")
        return self.total_busy() / self.frame_seconds

    def efficiency(self) -> float:
        """Speedup / active nodes (1.0 = perfect scaling)."""
        active = self.n_nodes - len(self.failed_nodes)
        if active < 1:
            raise ValidationError("no active nodes")
        return self.parallel_speedup() / active

    def load_imbalance(self) -> float:
        """max/mean busy seconds across nodes that did work (1.0 = even)."""
        values = [v for v in self.busy_seconds.values() if v > 0]
        if not values:
            return 1.0
        mean = sum(values) / len(values)
        return max(values) / mean if mean > 0 else 1.0

    def summary_row(self) -> dict[str, float]:
        return {
            "frame_id": float(self.frame_id),
            "n_tiles": float(self.n_tiles),
            "n_nodes": float(self.n_nodes),
            "frame_seconds": self.frame_seconds,
            "total_busy_seconds": self.total_busy(),
            "speedup": self.parallel_speedup(),
            "efficiency": self.efficiency(),
            "imbalance": self.load_imbalance(),
        }
