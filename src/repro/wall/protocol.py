"""Message types of the wall's frame protocol.

One frame proceeds master -> nodes: ``FrameBegin`` (broadcast of the
display list), per-tile ``RenderTile`` requests, ``TileDone`` replies,
then a swap-lock barrier so every tile of frame N is on screen before
any tile of frame N+1 — the classic synchronized-swap discipline of
tiled display systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.viz.layout import Box

__all__ = [
    "TAG_CONTROL",
    "TAG_TASK",
    "TAG_RESULT",
    "FrameBegin",
    "RenderTile",
    "TileDone",
    "NodeFailed",
    "Shutdown",
]

TAG_CONTROL = 1
TAG_TASK = 2
TAG_RESULT = 3


@dataclass(frozen=True)
class FrameBegin:
    """Broadcast to all nodes: a new frame's display list follows by reference."""

    frame_id: int


@dataclass(frozen=True)
class RenderTile:
    """Master -> node: render this canvas region for this frame."""

    frame_id: int
    tile_id: int
    region: Box


@dataclass(frozen=True)
class TileDone:
    """Node -> master: finished pixels for one tile."""

    frame_id: int
    tile_id: int
    pixels: np.ndarray = field(repr=False)
    node_rank: int = -1
    render_seconds: float = 0.0


@dataclass(frozen=True)
class NodeFailed:
    """Node -> master: this node is going down (simulated fault injection)."""

    node_rank: int


@dataclass(frozen=True)
class Shutdown:
    """Master -> node: frame loop is over, exit cleanly."""
