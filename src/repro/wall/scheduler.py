"""Tile-to-node scheduling policies.

Static assignment splits the tile list up front (cheap, but load follows
content); cost-balanced assignment weighs tiles by how many display-list
commands intersect them (the LPT heuristic); dynamic scheduling is
implemented inside the master loop (first-come first-served); the
work-stealing mode delegates to :class:`repro.parallel.WorkStealingPool`;
and the ``rpc`` mode runs the dynamic policy over real sockets — render
nodes are :class:`repro.rpc.server.RpcServer` instances and the master
fans tiles out through :meth:`repro.rpc.membership.Membership.scatter`,
the same layer the sharded query router uses.
"""

from __future__ import annotations

from repro.parallel.partition import balanced_partition, block_partition
from repro.util.errors import ValidationError
from repro.viz.scene import DisplayList
from repro.wall.geometry import TileSpec

__all__ = ["static_assignment", "cost_balanced_assignment", "SCHEDULE_MODES"]

SCHEDULE_MODES = ("static", "balanced", "dynamic", "workstealing", "rpc")


def static_assignment(tiles: list[TileSpec], n_nodes: int) -> dict[int, list[TileSpec]]:
    """Contiguous block split of the row-major tile list across nodes."""
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    parts = block_partition(len(tiles), n_nodes)
    return {node: [tiles[i] for i in rng] for node, rng in enumerate(parts)}


def cost_balanced_assignment(
    tiles: list[TileSpec], n_nodes: int, display_list: DisplayList
) -> dict[int, list[TileSpec]]:
    """LPT assignment using intersecting-command counts as tile weights."""
    if n_nodes < 1:
        raise ValidationError(f"n_nodes must be >= 1, got {n_nodes}")
    weights = [
        float(
            display_list.command_cost(t.region.x, t.region.y, t.region.w, t.region.h) + 1
        )
        for t in tiles
    ]
    parts = balanced_partition(weights, n_nodes)
    return {node: [tiles[i] for i in idxs] for node, idxs in enumerate(parts)}
