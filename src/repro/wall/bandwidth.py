"""Communication-cost accounting for the wall's frame protocol.

On a real cluster the binding constraint is usually the network: every
frame moves each tile's pixels from its render node to the display (or
compositor).  This module provides (a) a run-length codec for tile
pixels — heatmap frames are full of constant runs (backgrounds, saturated
cells), so RLE is the classic cheap win — and (b) a per-frame traffic
model that turns tile sizes, codec ratios and a link bandwidth into the
achievable frame rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import DataFormatError, ValidationError
from repro.wall.geometry import WallGeometry

__all__ = ["rle_encode", "rle_decode", "FrameTraffic", "estimate_traffic"]

_MAX_RUN = 255


def rle_encode(pixels: np.ndarray) -> bytes:
    """Run-length encode an (h, w, 3) uint8 image.

    Format: 8-byte header (h, w as uint32 big-endian) then a sequence of
    4-byte records ``(run_length, r, g, b)`` scanning row-major.  Runs
    never cross row boundaries (keeps decode trivially parallel by row).
    """
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise DataFormatError(
            f"pixels must be (h, w, 3) uint8, got {arr.shape} {arr.dtype}"
        )
    h, w = arr.shape[:2]
    out = bytearray()
    out += int(h).to_bytes(4, "big") + int(w).to_bytes(4, "big")
    for row in arr:
        # boundaries where the pixel changes
        change = np.any(row[1:] != row[:-1], axis=1)
        starts = np.concatenate(([0], np.flatnonzero(change) + 1))
        ends = np.concatenate((starts[1:], [w]))
        for s, e in zip(starts, ends):
            run = int(e - s)
            r, g, b = (int(v) for v in row[s])
            while run > 0:
                chunk = min(run, _MAX_RUN)
                out += bytes((chunk, r, g, b))
                run -= chunk
    return bytes(out)


def rle_decode(data: bytes) -> np.ndarray:
    """Inverse of :func:`rle_encode`."""
    if len(data) < 8:
        raise DataFormatError("RLE payload shorter than its header")
    h = int.from_bytes(data[0:4], "big")
    w = int.from_bytes(data[4:8], "big")
    if h < 1 or w < 1:
        raise DataFormatError(f"invalid RLE dimensions {h}x{w}")
    body = data[8:]
    if len(body) % 4 != 0:
        raise DataFormatError("RLE body is not a whole number of records")
    records = np.frombuffer(body, dtype=np.uint8).reshape(-1, 4)
    runs = records[:, 0].astype(np.int64)
    total = int(runs.sum())
    if total != h * w:
        raise DataFormatError(
            f"RLE runs cover {total} pixels, image needs {h * w}"
        )
    flat = np.repeat(records[:, 1:4], runs, axis=0)
    return flat.reshape(h, w, 3).copy()


@dataclass(frozen=True)
class FrameTraffic:
    """Bytes moved for one frame and what they imply for a link."""

    raw_bytes: int  # uncompressed tile pixels
    compressed_bytes: int  # after the codec
    n_tiles: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            raise ValidationError("compressed size is zero")
        return self.raw_bytes / self.compressed_bytes

    def max_fps(self, link_bytes_per_second: float, *, compressed: bool = True) -> float:
        """Frame rate the link sustains for this traffic volume."""
        if link_bytes_per_second <= 0:
            raise ValidationError("link bandwidth must be positive")
        per_frame = self.compressed_bytes if compressed else self.raw_bytes
        if per_frame == 0:
            raise ValidationError("frame moves zero bytes")
        return link_bytes_per_second / per_frame


def estimate_traffic(
    geometry: WallGeometry,
    tile_pixels: dict[int, np.ndarray],
    *,
    codec: str = "rle",
) -> FrameTraffic:
    """Measure one frame's tile traffic under a codec.

    ``tile_pixels`` maps tile id -> rendered pixels (as produced by
    :class:`~repro.wall.cluster.WallFrame`).  ``codec`` is ``"rle"`` or
    ``"none"``.
    """
    if codec not in ("rle", "none"):
        raise ValidationError(f"unknown codec {codec!r}")
    if not tile_pixels:
        raise ValidationError("no tile pixels supplied")
    valid_ids = {t.tile_id for t in geometry.tiles()}
    raw = 0
    compressed = 0
    for tile_id, pixels in tile_pixels.items():
        if tile_id not in valid_ids:
            raise ValidationError(f"tile id {tile_id} not in geometry")
        raw += pixels.nbytes
        compressed += len(rle_encode(pixels)) if codec == "rle" else pixels.nbytes
    return FrameTraffic(raw_bytes=raw, compressed_bytes=compressed, n_tiles=len(tile_pixels))
