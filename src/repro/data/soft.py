"""GEO SOFT "series matrix"-style ingestion (simplified).

Public compendia ("previously published datasets", §1) are distributed
through NCBI GEO; the practical interchange file is the series matrix: a
``!``-prefixed metadata header followed by a tab-separated expression
table between ``!series_matrix_table_begin`` / ``_end`` markers.  This
parser covers that structure so a downstream user can ingest real GEO
exports straight into a :class:`Dataset`.
"""

from __future__ import annotations

import io
import math
from pathlib import Path

import numpy as np

from repro.data.annotations import GeneAnnotations
from repro.data.dataset import Dataset
from repro.data.matrix import ExpressionMatrix
from repro.util.errors import DataFormatError

__all__ = ["parse_series_matrix", "format_series_matrix", "read_series_matrix", "write_series_matrix"]

_BEGIN = "!series_matrix_table_begin"
_END = "!series_matrix_table_end"
_MISSING = {"", "na", "nan", "null"}


def _strip_quotes(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] == '"' and token[-1] == '"':
        return token[1:-1]
    return token


def parse_series_matrix(text: str, *, path: str | None = None) -> Dataset:
    """Parse series-matrix content into a :class:`Dataset`.

    Metadata lines (``!Series_title``, ``!Sample_title``, ...) become
    dataset metadata; ``!Sample_title`` values override the GSM ids as
    condition names when counts match.
    """
    metadata: dict[str, str] = {}
    sample_titles: list[str] = []
    table_lines: list[str] = []
    in_table = False
    begin_line = end_line = None
    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if not line.strip():
            continue
        low = line.strip().lower()
        if low == _BEGIN:
            if in_table:
                raise DataFormatError("nested table begin", path=path, line=line_no)
            in_table = True
            begin_line = line_no
            continue
        if low == _END:
            if not in_table:
                raise DataFormatError("table end before begin", path=path, line=line_no)
            in_table = False
            end_line = line_no
            continue
        if in_table:
            table_lines.append(line)
            continue
        if line.startswith("!"):
            key, _, value = line[1:].partition("\t")
            key = key.strip()
            values = [_strip_quotes(v) for v in value.split("\t")] if value else []
            if key.lower() == "sample_title":
                sample_titles = values
            elif values:
                metadata[key] = values[0] if len(values) == 1 else "; ".join(values)
    if begin_line is None or end_line is None:
        raise DataFormatError(
            f"missing {_BEGIN}/{_END} markers", path=path
        )
    if not table_lines:
        raise DataFormatError("series matrix table is empty", path=path)

    header = [_strip_quotes(c) for c in table_lines[0].split("\t")]
    if len(header) < 2:
        raise DataFormatError("table header needs an ID column and >= 1 sample", path=path)
    condition_names = header[1:]
    if sample_titles and len(sample_titles) == len(condition_names):
        condition_names = sample_titles

    gene_ids: list[str] = []
    rows: list[list[float]] = []
    for offset, line in enumerate(table_lines[1:], start=2):
        cells = line.split("\t")
        if len(cells) != len(header):
            raise DataFormatError(
                f"table row has {len(cells)} cells, header has {len(header)}",
                path=path,
            )
        gene_ids.append(_strip_quotes(cells[0]))
        parsed: list[float] = []
        for cell in cells[1:]:
            token = _strip_quotes(cell).lower()
            if token in _MISSING:
                parsed.append(math.nan)
            else:
                try:
                    parsed.append(float(token))
                except ValueError:
                    raise DataFormatError(
                        f"non-numeric expression value {cell!r}", path=path
                    )
        rows.append(parsed)
    if not rows:
        raise DataFormatError("series matrix has no data rows", path=path)

    matrix = ExpressionMatrix(np.asarray(rows), gene_ids, condition_names)
    name = metadata.get("Series_geo_accession", metadata.get("Series_title", "series"))
    annotations = GeneAnnotations()
    return Dataset(name=name, matrix=matrix, annotations=annotations, metadata=metadata)


def format_series_matrix(dataset: Dataset) -> str:
    """Serialize a dataset in the series-matrix layout (inverse of parse)."""
    out = io.StringIO()
    out.write(f'!Series_title\t"{dataset.metadata.get("Series_title", dataset.name)}"\n')
    out.write(f'!Series_geo_accession\t"{dataset.name}"\n')
    titles = "\t".join(f'"{c}"' for c in dataset.matrix.condition_names)
    out.write(f"!Sample_title\t{titles}\n")
    out.write(_BEGIN + "\n")
    out.write("\t".join(['"ID_REF"'] + [f'"{c}"' for c in dataset.matrix.condition_names]) + "\n")
    for i, gene_id in enumerate(dataset.matrix.gene_ids):
        cells = [f'"{gene_id}"']
        for v in dataset.matrix.values[i]:
            cells.append("" if math.isnan(v) else repr(float(v)))
        out.write("\t".join(cells) + "\n")
    out.write(_END + "\n")
    return out.getvalue()


def read_series_matrix(path: str | Path) -> Dataset:
    path = Path(path)
    return parse_series_matrix(path.read_text(), path=str(path))


def write_series_matrix(dataset: Dataset, path: str | Path) -> None:
    Path(path).write_text(format_series_matrix(dataset))
