"""The paper's Merged Dataset Interface.

Figure 1 places a "Merged Dataset Interface" between the raw datasets and
every analysis routine: "a dataset interface is needed to manage access
to all datasets and present a simple three dimensional array interface
that allows analysis routines to easily access the data."

:class:`MergedDatasetInterface` provides exactly that: indexing by
``[dataset, gene, condition]`` over a unified gene axis (the union of all
datasets' genes, aligned by id).  Cells for genes absent from a dataset
and conditions beyond a dataset's width read as NaN.  Slices never copy
the underlying per-dataset matrices; dense exports are built on demand.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.compendium import Compendium
from repro.data.matrix import ExpressionMatrix
from repro.util.errors import ValidationError

__all__ = ["MergedDatasetInterface"]


class MergedDatasetInterface:
    """Aligned 3-D (dataset, gene, condition) view over a compendium.

    The gene axis is the sorted union of gene ids (stable for a given
    compendium content); the condition axis is ragged in reality and
    padded with NaN up to ``max_conditions`` when densified.
    """

    def __init__(self, compendium: Compendium) -> None:
        if len(compendium) == 0:
            raise ValidationError("merged interface needs at least one dataset")
        self.compendium = compendium
        self.gene_ids: list[str] = compendium.gene_universe()
        self._gene_axis = {g: i for i, g in enumerate(self.gene_ids)}
        self.max_conditions = compendium.max_conditions()
        # per-dataset row maps: merged gene index -> dataset row index (-1 = absent)
        self._row_maps: list[np.ndarray] = []
        for ds in compendium:
            rmap = np.full(len(self.gene_ids), -1, dtype=np.intp)
            for row, gid in enumerate(ds.gene_ids):
                rmap[self._gene_axis[gid]] = row
            self._row_maps.append(rmap)

    # ------------------------------------------------------------------ shape
    @property
    def shape(self) -> tuple[int, int, int]:
        """(n_datasets, n_genes_in_union, max_conditions)."""
        return (len(self.compendium), len(self.gene_ids), self.max_conditions)

    @property
    def n_datasets(self) -> int:
        return len(self.compendium)

    @property
    def n_genes(self) -> int:
        return len(self.gene_ids)

    def gene_axis_index(self, gene_id: str) -> int:
        try:
            return self._gene_axis[gene_id]
        except KeyError:
            raise KeyError(f"gene {gene_id!r} not in any dataset") from None

    def __contains__(self, gene_id: str) -> bool:
        return gene_id in self._gene_axis

    # --------------------------------------------------------------- indexing
    def value(self, dataset: int | str, gene_id: str, condition: int) -> float:
        """Single cell; NaN when the gene/condition is absent from the dataset."""
        d = self._dataset_index(dataset)
        ds = self.compendium[d]
        if condition < 0 or condition >= self.max_conditions:
            raise ValidationError(
                f"condition {condition} out of merged range [0, {self.max_conditions})"
            )
        row = self._row_maps[d][self.gene_axis_index(gene_id)]
        if row < 0 or condition >= ds.n_conditions:
            return float("nan")
        return float(ds.matrix.values[row, condition])

    def gene_profile(self, dataset: int | str, gene_id: str) -> np.ndarray:
        """One gene's expression vector in one dataset, padded to ``max_conditions``."""
        d = self._dataset_index(dataset)
        ds = self.compendium[d]
        out = np.full(self.max_conditions, np.nan)
        row = self._row_maps[d][self.gene_axis_index(gene_id)]
        if row >= 0:
            out[: ds.n_conditions] = ds.matrix.values[row]
        return out

    def gene_slice(self, gene_id: str) -> np.ndarray:
        """(n_datasets, max_conditions) slab for one gene across all datasets.

        This is the "scan across a row of data to see how genes from one
        dataset are expressed in the others" access pattern.
        """
        out = np.full((self.n_datasets, self.max_conditions), np.nan)
        g = self.gene_axis_index(gene_id)
        for d, ds in enumerate(self.compendium):
            row = self._row_maps[d][g]
            if row >= 0:
                out[d, : ds.n_conditions] = ds.matrix.values[row]
        return out

    def dataset_slab(self, dataset: int | str, gene_ids: Sequence[str]) -> np.ndarray:
        """(len(gene_ids), n_conditions) block from one dataset, NaN rows for absences.

        Note: unlike :meth:`gene_profile` this is *not* padded — it keeps
        the dataset's native condition width, which is what renderers and
        per-dataset analyses want.
        """
        d = self._dataset_index(dataset)
        ds = self.compendium[d]
        rmap = self._row_maps[d]
        out = np.full((len(gene_ids), ds.n_conditions), np.nan)
        for i, gid in enumerate(gene_ids):
            row = rmap[self._gene_axis[gid]] if gid in self._gene_axis else -1
            if row >= 0:
                out[i] = ds.matrix.values[row]
        return out

    def presence_matrix(self, gene_ids: Sequence[str]) -> np.ndarray:
        """(len(gene_ids), n_datasets) boolean: which dataset contains which gene."""
        out = np.zeros((len(gene_ids), self.n_datasets), dtype=bool)
        for i, gid in enumerate(gene_ids):
            g = self._gene_axis.get(gid)
            if g is None:
                continue
            for d in range(self.n_datasets):
                out[i, d] = self._row_maps[d][g] >= 0
        return out

    # ----------------------------------------------------------------- export
    def dense(self, gene_ids: Sequence[str] | None = None) -> np.ndarray:
        """Materialize the full (datasets, genes, conditions) NaN-padded cube.

        Intended for analysis routines that genuinely want the 3-D array;
        for large compendia prefer the slice accessors.
        """
        genes = list(gene_ids) if gene_ids is not None else self.gene_ids
        cube = np.full((self.n_datasets, len(genes), self.max_conditions), np.nan)
        for d, ds in enumerate(self.compendium):
            slab = self.dataset_slab(d, genes)
            cube[d, :, : ds.n_conditions] = slab
        return cube

    def export_merged_matrix(self, gene_ids: Sequence[str] | None = None) -> ExpressionMatrix:
        """Flatten to a 2-D matrix: rows = genes, columns = all datasets' conditions.

        Implements the paper's "Export Merged Dataset" UI operation.
        Column names are ``{dataset}:{condition}`` so provenance survives.
        """
        genes = list(gene_ids) if gene_ids is not None else self.gene_ids
        blocks: list[np.ndarray] = []
        col_names: list[str] = []
        for d, ds in enumerate(self.compendium):
            blocks.append(self.dataset_slab(d, genes))
            col_names.extend(f"{ds.name}:{c}" for c in ds.matrix.condition_names)
        values = np.concatenate(blocks, axis=1) if blocks else np.empty((len(genes), 0))
        return ExpressionMatrix(values, genes, col_names)

    # ----------------------------------------------------------------- helper
    def _dataset_index(self, dataset: int | str) -> int:
        if isinstance(dataset, str):
            return self.compendium.index_of(dataset)
        if not (0 <= dataset < self.n_datasets):
            raise ValidationError(
                f"dataset index {dataset} out of range [0, {self.n_datasets})"
            )
        return dataset
