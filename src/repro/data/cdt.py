"""CDT (clustered data table) format: read and write.

A CDT is a PCL that has been reordered by clustering and tagged with the
GID/AID keys that link rows/columns to GTR/ATR tree files::

    GID      YORF    NAME   GWEIGHT  cond1  cond2 ...
    AID                              ARRY0X ARRY1X ...
    EWEIGHT                          1      1 ...
    GENE3X   YAL001C TFC3   1        0.12   -0.98 ...

The AID row is present only when an array tree exists.  We parse into an
:class:`ExpressionMatrix` plus the GID list (and optional AID list) so a
loader can re-attach trees from companion GTR/ATR files.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.matrix import ExpressionMatrix
from repro.data.pcl import _parse_cell, _fmt
from repro.util.errors import DataFormatError

__all__ = ["CdtTable", "parse_cdt", "format_cdt", "read_cdt", "write_cdt"]


@dataclass
class CdtTable:
    """Parsed CDT content: the matrix in file (display) order plus tree keys."""

    matrix: ExpressionMatrix
    gene_node_ids: list[str]  # GID column, aligned with matrix rows
    array_node_ids: list[str] | None  # AID row, aligned with matrix columns

    @property
    def has_array_ids(self) -> bool:
        return self.array_node_ids is not None


def parse_cdt(text: str, *, path: str | None = None) -> CdtTable:
    lines = [ln.rstrip("\n").rstrip("\r") for ln in io.StringIO(text)]
    lines = [ln for ln in lines if ln.strip() != ""]
    if not lines:
        raise DataFormatError("empty CDT file", path=path)
    header = lines[0].split("\t")
    if len(header) < 5 or header[0].strip().upper() != "GID":
        raise DataFormatError(
            "CDT header must start with GID, id, NAME, GWEIGHT and >=1 condition",
            path=path,
            line=1,
        )
    if header[3].strip().upper() != "GWEIGHT":
        raise DataFormatError(f"CDT column 4 must be GWEIGHT, got {header[3]!r}", path=path, line=1)
    condition_names = [h.strip() for h in header[4:]]
    n_cond = len(condition_names)

    cursor = 1
    array_node_ids: list[str] | None = None
    if cursor < len(lines) and lines[cursor].split("\t")[0].strip().upper() == "AID":
        aid_cells = lines[cursor].split("\t")[4:]
        if len(aid_cells) != n_cond:
            raise DataFormatError(
                f"AID row has {len(aid_cells)} ids for {n_cond} conditions",
                path=path,
                line=cursor + 1,
            )
        array_node_ids = [c.strip() for c in aid_cells]
        cursor += 1
    condition_weights = np.ones(n_cond)
    if cursor < len(lines) and lines[cursor].split("\t")[0].strip().upper() == "EWEIGHT":
        weights = lines[cursor].split("\t")[4:]
        if len(weights) != n_cond:
            raise DataFormatError(
                f"EWEIGHT row has {len(weights)} values for {n_cond} conditions",
                path=path,
                line=cursor + 1,
            )
        condition_weights = np.array(
            [_parse_cell(w, path=path, line=cursor + 1) for w in weights], dtype=np.float64
        )
        cursor += 1

    gene_node_ids: list[str] = []
    gene_ids: list[str] = []
    gene_names: list[str] = []
    gene_weights: list[float] = []
    rows: list[list[float]] = []
    for offset, line in enumerate(lines[cursor:], start=cursor + 1):
        cells = line.split("\t")
        if len(cells) != 4 + n_cond:
            raise DataFormatError(
                f"row has {len(cells)} cells, expected {4 + n_cond}", path=path, line=offset
            )
        gid = cells[0].strip()
        gene_id = cells[1].strip()
        if not gid or not gene_id:
            raise DataFormatError("empty GID or gene id", path=path, line=offset)
        gene_node_ids.append(gid)
        gene_ids.append(gene_id)
        gene_names.append(cells[2].strip() or gene_id)
        gene_weights.append(_parse_cell(cells[3] or "1", path=path, line=offset))
        rows.append([_parse_cell(c, path=path, line=offset) for c in cells[4:]])
    if not rows:
        raise DataFormatError("CDT file contains no gene rows", path=path)
    matrix = ExpressionMatrix(
        np.asarray(rows, dtype=np.float64),
        gene_ids,
        condition_names,
        gene_names=gene_names,
        gene_weights=np.asarray(gene_weights, dtype=np.float64),
        condition_weights=condition_weights,
    )
    return CdtTable(matrix=matrix, gene_node_ids=gene_node_ids, array_node_ids=array_node_ids)


def format_cdt(table: CdtTable, *, id_header: str = "YORF") -> str:
    matrix = table.matrix
    if len(table.gene_node_ids) != matrix.n_genes:
        raise DataFormatError(
            f"{len(table.gene_node_ids)} GIDs for {matrix.n_genes} genes"
        )
    if table.array_node_ids is not None and len(table.array_node_ids) != matrix.n_conditions:
        raise DataFormatError(
            f"{len(table.array_node_ids)} AIDs for {matrix.n_conditions} conditions"
        )
    out = io.StringIO()
    out.write("\t".join(["GID", id_header, "NAME", "GWEIGHT"] + matrix.condition_names) + "\n")
    if table.array_node_ids is not None:
        out.write("AID\t\t\t\t" + "\t".join(table.array_node_ids) + "\n")
    out.write("EWEIGHT\t\t\t\t" + "\t".join(_fmt(w) for w in matrix.condition_weights) + "\n")
    for i in range(matrix.n_genes):
        cells = [
            table.gene_node_ids[i],
            matrix.gene_ids[i],
            matrix.gene_names[i],
            _fmt(matrix.gene_weights[i]),
        ] + [_fmt(v) for v in matrix.values[i]]
        out.write("\t".join(cells) + "\n")
    return out.getvalue()


def read_cdt(path: str | Path) -> CdtTable:
    path = Path(path)
    return parse_cdt(path.read_text(), path=str(path))


def write_cdt(table: CdtTable, path: str | Path) -> None:
    Path(path).write_text(format_cdt(table))
