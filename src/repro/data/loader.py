"""High-level dataset loading/saving: PCL or CDT(+GTR/ATR) triples on disk.

``load_dataset`` hides the file-format plumbing: given ``foo.pcl`` it
returns an unclustered dataset; given ``foo.cdt`` it also looks for
``foo.gtr`` / ``foo.atr`` next to it and re-links the dendrograms via the
GID/AID keys, exactly how Java TreeView resolves a clustered triple.

``parse_dataset`` is the text-level counterpart the live ingestion path
(``POST /v1/ingest``) drives: SOFT series-matrix or PCL content arrives
as a string over the wire, is validated *completely* before anything is
written anywhere, and comes back as a named :class:`Dataset` — a
malformed submission raises :class:`DataFormatError` without a single
side effect.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.cluster.tree import DendrogramTree
from repro.data.cdt import CdtTable, read_cdt, write_cdt
from repro.data.dataset import Dataset
from repro.data.pcl import parse_pcl, read_pcl, write_pcl
from repro.data.soft import parse_series_matrix
from repro.data.treefiles import read_atr, read_gtr, write_atr, write_gtr
from repro.util.errors import DataFormatError

__all__ = ["INGEST_FORMATS", "load_dataset", "parse_dataset", "save_dataset"]

#: Wire format name -> on-disk suffix for ingested sources.  The suffix
#: is what a catalog reload dispatches on, so the pair is the whole
#: round-trip contract of the ingestion path.
INGEST_FORMATS: dict[str, str] = {"pcl": ".pcl", "soft": ".soft.txt"}


def parse_dataset(text: str, fmt: str, *, name: str) -> Dataset:
    """Parse in-memory dataset content (``"pcl"`` or ``"soft"``).

    Pure validation + construction: raises :class:`DataFormatError` on
    malformed content and touches nothing on disk, so ingestion can
    reject bad submissions before any store mutation.  The returned
    dataset is renamed to ``name`` — the caller (not the file's own
    metadata) owns identity within a compendium.
    """
    fmt = str(fmt).lower()
    if fmt == "pcl":
        return Dataset(name=name, matrix=parse_pcl(text, path=name))
    if fmt == "soft":
        parsed = parse_series_matrix(text, path=name)
        return replace(parsed, name=name)
    raise DataFormatError(
        f"unsupported ingest format {fmt!r} (want one of: "
        + ", ".join(sorted(INGEST_FORMATS)) + ")"
    )


def load_dataset(path: str | Path, *, name: str | None = None) -> Dataset:
    """Load a dataset from a ``.pcl`` or ``.cdt`` file.

    For CDT input, companion ``.gtr``/``.atr`` files (same stem, same
    directory) are loaded when present and their leaves are re-indexed to
    the CDT's display order through the GID/AID columns.
    """
    path = Path(path)
    ds_name = name if name is not None else path.stem
    suffix = path.suffix.lower()
    if suffix == ".pcl":
        return Dataset(name=ds_name, matrix=read_pcl(path))
    if suffix == ".cdt":
        table = read_cdt(path)
        gene_tree = None
        array_tree = None
        gtr_path = path.with_suffix(".gtr")
        if gtr_path.exists():
            gene_tree = _relink_tree(
                read_gtr(gtr_path), table.gene_node_ids, str(gtr_path), kind="GTR"
            )
        atr_path = path.with_suffix(".atr")
        if atr_path.exists() and table.array_node_ids is not None:
            array_tree = _relink_tree(
                read_atr(atr_path), table.array_node_ids, str(atr_path), kind="ATR"
            )
        return Dataset(
            name=ds_name, matrix=table.matrix, gene_tree=gene_tree, array_tree=array_tree
        )
    raise DataFormatError(f"unsupported dataset extension {suffix!r} (want .pcl or .cdt)", path=str(path))


def save_dataset(dataset: Dataset, directory: str | Path, *, basename: str | None = None) -> Path:
    """Write a dataset to ``directory``; returns the primary file written.

    Datasets with a gene tree are written as CDT (+GTR, +ATR when an
    array tree exists) with rows/columns in display order; plain datasets
    are written as PCL.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = basename if basename is not None else _safe_name(dataset.name)
    if dataset.gene_tree is None:
        out = directory / f"{base}.pcl"
        write_pcl(dataset.matrix, out)
        return out

    row_order = dataset.gene_tree.leaf_order()
    matrix = dataset.matrix.reorder_genes(row_order)
    leaf_by_index = {leaf.index: leaf.node_id for leaf in dataset.gene_tree.root.leaves()}
    gene_node_ids = [leaf_by_index[i] for i in row_order]

    array_node_ids = None
    if dataset.array_tree is not None:
        col_order = dataset.array_tree.leaf_order()
        matrix = matrix.subset_conditions(col_order)
        aleaf_by_index = {leaf.index: leaf.node_id for leaf in dataset.array_tree.root.leaves()}
        array_node_ids = [aleaf_by_index[i] for i in col_order]

    out = directory / f"{base}.cdt"
    write_cdt(CdtTable(matrix=matrix, gene_node_ids=gene_node_ids, array_node_ids=array_node_ids), out)
    write_gtr(_reindexed_for_save(dataset.gene_tree, row_order), directory / f"{base}.gtr")
    if dataset.array_tree is not None:
        write_atr(
            _reindexed_for_save(dataset.array_tree, dataset.array_tree.leaf_order()),
            directory / f"{base}.atr",
        )
    return out


def _relink_tree(
    tree: DendrogramTree, node_ids: list[str], path: str, *, kind: str
) -> DendrogramTree:
    """Point tree leaves at file-row positions via the GID/AID key column."""
    position = {nid: i for i, nid in enumerate(node_ids)}
    if len(position) != len(node_ids):
        raise DataFormatError(f"duplicate {kind} keys in data table", path=path)
    leaves = list(tree.root.leaves())
    if len(leaves) != len(node_ids):
        raise DataFormatError(
            f"{kind} tree has {len(leaves)} leaves but table has {len(node_ids)} entries",
            path=path,
        )
    for leaf in leaves:
        if leaf.node_id not in position:
            raise DataFormatError(
                f"{kind} leaf {leaf.node_id!r} missing from data table keys", path=path
            )
        leaf.index = position[leaf.node_id]
    return DendrogramTree(root=tree.root, n_leaves=len(leaves))


def _reindexed_for_save(tree: DendrogramTree, order: list[int]) -> DendrogramTree:
    """Rebuild the tree with leaf indices renumbered to display positions.

    After the matrix rows are written in display order, leaf ``order[k]``
    sits at row ``k``; the saved GTR must agree so a reload round-trips.
    The original tree object is left untouched.
    """
    import copy

    new_root = copy.deepcopy(tree.root)
    rank = {original: display for display, original in enumerate(order)}
    for leaf in new_root.leaves():
        leaf.index = rank[leaf.index]
    return DendrogramTree(root=new_root, n_leaves=tree.n_leaves)


def _safe_name(name: str) -> str:
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
