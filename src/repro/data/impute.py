"""Missing-value imputation for expression matrices.

Clustering and some analyses need complete rows; the standard microarray
answer is KNNimpute (Troyanskaya et al. 2001 — the same lab as this
paper): fill each missing cell with the weighted average of that column's
values in the k most-similar rows.
"""

from __future__ import annotations

import numpy as np

from repro.data.matrix import ExpressionMatrix
from repro.stats.correlation import pearson_matrix
from repro.util.errors import ValidationError

__all__ = ["row_mean_impute", "knn_impute"]


def row_mean_impute(matrix: ExpressionMatrix) -> ExpressionMatrix:
    """Fill each missing cell with its row's mean (all-missing rows get 0)."""
    X = np.array(matrix.values, copy=True)
    all_missing = np.isnan(X).all(axis=1)
    with np.errstate(invalid="ignore"):
        means = np.nanmean(np.where(all_missing[:, None], 0.0, X), axis=1)
    means[all_missing] = 0.0
    rows, cols = np.nonzero(np.isnan(X))
    X[rows, cols] = means[rows]
    return matrix.with_values(X)


def knn_impute(matrix: ExpressionMatrix, k: int = 10) -> ExpressionMatrix:
    """KNNimpute: per-row weighted average over the k most-correlated rows.

    Weights are the positive correlations of the neighbour rows; neighbour
    cells must be observed to contribute.  Cells that no neighbour can
    fill fall back to row-mean imputation.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    X = np.array(matrix.values, copy=True)
    n = X.shape[0]
    missing = np.isnan(X)
    if not missing.any():
        return matrix.with_values(X)
    if n < 2:
        return row_mean_impute(matrix)

    corr = pearson_matrix(X)
    np.fill_diagonal(corr, -np.inf)  # a row is not its own neighbour
    corr = np.where(np.isnan(corr), -np.inf, corr)
    k_eff = min(k, n - 1)
    # top-k neighbour rows for every row, highest correlation first
    neighbour_idx = np.argpartition(-corr, k_eff - 1, axis=1)[:, :k_eff]

    observed = ~missing
    Xz = np.where(observed, X, 0.0)
    filled = X.copy()
    for i in np.flatnonzero(missing.any(axis=1)):
        nbrs = neighbour_idx[i]
        weights = corr[i, nbrs]
        keep = weights > 0
        cols = np.flatnonzero(missing[i])
        if keep.any():
            nbrs_k = nbrs[keep]
            w = weights[keep][:, None]  # (k', 1)
            contrib = (w * Xz[np.ix_(nbrs_k, cols)]).sum(axis=0)
            weight_mass = (w * observed[np.ix_(nbrs_k, cols)]).sum(axis=0)
            with np.errstate(invalid="ignore", divide="ignore"):
                estimates = contrib / weight_mass
            ok = weight_mass > 0
            filled[i, cols[ok]] = estimates[ok]
    result = matrix.with_values(filled)
    if np.isnan(result.values).any():
        result = row_mean_impute(result)
    return result
