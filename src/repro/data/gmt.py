"""GMT (gene matrix transposed) gene-set file format.

The lingua franca for moving gene lists between tools — exactly what
the paper's "export the gene list ... for further analysis in another
application" workflow produces.  One set per line::

    set_name <TAB> description <TAB> gene1 <TAB> gene2 ...
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path

from repro.util.errors import DataFormatError, ValidationError

__all__ = ["GeneSet", "parse_gmt", "format_gmt", "read_gmt", "write_gmt"]


@dataclass(frozen=True)
class GeneSet:
    """A named, described, ordered gene list."""

    name: str
    description: str
    genes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("gene set name must be non-empty")
        if not self.genes:
            raise ValidationError(f"gene set {self.name!r} is empty")
        if len(set(self.genes)) != len(self.genes):
            raise ValidationError(f"gene set {self.name!r} contains duplicates")

    def __len__(self) -> int:
        return len(self.genes)

    def __contains__(self, gene_id: str) -> bool:
        return gene_id in set(self.genes)


def parse_gmt(text: str, *, path: str | None = None) -> list[GeneSet]:
    sets: list[GeneSet] = []
    names: set[str] = set()
    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if not line.strip() or line.startswith("#"):
            continue
        cells = line.split("\t")
        if len(cells) < 3:
            raise DataFormatError(
                "GMT line needs name, description and >= 1 gene", path=path, line=line_no
            )
        name = cells[0].strip()
        if name in names:
            raise DataFormatError(f"duplicate gene set {name!r}", path=path, line=line_no)
        genes = tuple(dict.fromkeys(g.strip() for g in cells[2:] if g.strip()))
        if not genes:
            raise DataFormatError(f"gene set {name!r} has no genes", path=path, line=line_no)
        try:
            sets.append(GeneSet(name=name, description=cells[1].strip(), genes=genes))
        except ValidationError as exc:
            raise DataFormatError(str(exc), path=path, line=line_no) from exc
        names.add(name)
    if not sets:
        raise DataFormatError("GMT file contains no gene sets", path=path)
    return sets


def format_gmt(sets: list[GeneSet]) -> str:
    out = io.StringIO()
    for gs in sets:
        out.write("\t".join([gs.name, gs.description, *gs.genes]) + "\n")
    return out.getvalue()


def read_gmt(path: str | Path) -> list[GeneSet]:
    path = Path(path)
    return parse_gmt(path.read_text(), path=str(path))


def write_gmt(sets: list[GeneSet], path: str | Path) -> None:
    Path(path).write_text(format_gmt(sets))
