"""PCL (pre-clustering) file format: read and write.

PCL is the tab-delimited microarray interchange format the paper's
datasets arrive in ("microarray datasets typically accessed through cdt
or pcl files").  Layout::

    YORF    NAME    GWEIGHT    cond1    cond2 ...
    EWEIGHT                    1        1     ...
    YAL001C TFC3    1          0.12     -0.98 ...

* Column 0: systematic gene id; column 1: display name; column 2: GWEIGHT.
* Optional second header line ``EWEIGHT`` with per-condition weights.
* Empty cells are missing values (NaN).
"""

from __future__ import annotations

import io
import math
from pathlib import Path

import numpy as np

from repro.data.matrix import ExpressionMatrix
from repro.util.errors import DataFormatError

__all__ = ["read_pcl", "write_pcl", "parse_pcl", "format_pcl"]

_MISSING_TOKENS = {"", "na", "nan", "null", "n/a"}


def _parse_cell(token: str, *, path: str | None, line: int) -> float:
    token = token.strip()
    if token.lower() in _MISSING_TOKENS:
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise DataFormatError(f"non-numeric expression value {token!r}", path=path, line=line)


def parse_pcl(text: str, *, path: str | None = None) -> ExpressionMatrix:
    """Parse PCL content from a string. See module docstring for layout."""
    lines = [ln.rstrip("\n").rstrip("\r") for ln in io.StringIO(text)]
    lines = [ln for ln in lines if ln.strip() != ""]
    if not lines:
        raise DataFormatError("empty PCL file", path=path)
    header = lines[0].split("\t")
    if len(header) < 4:
        raise DataFormatError(
            f"PCL header needs id, NAME, GWEIGHT and >=1 condition column, got {len(header)}",
            path=path,
            line=1,
        )
    if header[2].strip().upper() != "GWEIGHT":
        raise DataFormatError(
            f"PCL column 3 must be GWEIGHT, got {header[2]!r}", path=path, line=1
        )
    condition_names = [h.strip() for h in header[3:]]
    n_cond = len(condition_names)

    body_start = 1
    condition_weights = np.ones(n_cond)
    if len(lines) > 1 and lines[1].split("\t")[0].strip().upper() == "EWEIGHT":
        eweight_cells = lines[1].split("\t")
        weights = eweight_cells[3:]
        if len(weights) != n_cond:
            raise DataFormatError(
                f"EWEIGHT row has {len(weights)} values for {n_cond} conditions",
                path=path,
                line=2,
            )
        condition_weights = np.array(
            [_parse_cell(w, path=path, line=2) for w in weights], dtype=np.float64
        )
        body_start = 2

    gene_ids: list[str] = []
    gene_names: list[str] = []
    gene_weights: list[float] = []
    rows: list[list[float]] = []
    for offset, line in enumerate(lines[body_start:], start=body_start + 1):
        cells = line.split("\t")
        if len(cells) != 3 + n_cond:
            raise DataFormatError(
                f"row has {len(cells)} cells, expected {3 + n_cond}", path=path, line=offset
            )
        gene_id = cells[0].strip()
        if not gene_id:
            raise DataFormatError("empty gene id", path=path, line=offset)
        gene_ids.append(gene_id)
        gene_names.append(cells[1].strip() or gene_id)
        gene_weights.append(_parse_cell(cells[2] or "1", path=path, line=offset))
        rows.append([_parse_cell(c, path=path, line=offset) for c in cells[3:]])
    if not rows:
        raise DataFormatError("PCL file contains no gene rows", path=path)
    return ExpressionMatrix(
        np.asarray(rows, dtype=np.float64),
        gene_ids,
        condition_names,
        gene_names=gene_names,
        gene_weights=np.asarray(gene_weights, dtype=np.float64),
        condition_weights=condition_weights,
    )


def format_pcl(matrix: ExpressionMatrix, *, id_header: str = "YORF") -> str:
    """Serialize a matrix to PCL text (inverse of :func:`parse_pcl`)."""
    out = io.StringIO()
    out.write("\t".join([id_header, "NAME", "GWEIGHT"] + matrix.condition_names) + "\n")
    eweights = "\t".join(_fmt(w) for w in matrix.condition_weights)
    out.write(f"EWEIGHT\t\t\t{eweights}\n")
    for i in range(matrix.n_genes):
        cells = [
            matrix.gene_ids[i],
            matrix.gene_names[i],
            _fmt(matrix.gene_weights[i]),
        ] + [_fmt(v) for v in matrix.values[i]]
        out.write("\t".join(cells) + "\n")
    return out.getvalue()


def read_pcl(path: str | Path) -> ExpressionMatrix:
    path = Path(path)
    return parse_pcl(path.read_text(), path=str(path))


def write_pcl(matrix: ExpressionMatrix, path: str | Path) -> None:
    Path(path).write_text(format_pcl(matrix))


def _fmt(value: float) -> str:
    if math.isnan(value):
        return ""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
