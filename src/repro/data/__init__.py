"""Dataset substrate: matrices, file formats, compendium, merged 3-D view.

This package implements the bottom two layers of the paper's Figure 1
architecture: the per-dataset storage (PCL/CDT/GTR/ATR files, expression
matrices, annotations) and the Merged Dataset Interface that exposes all
datasets to analysis code as one aligned three-dimensional array.
"""

from repro.data.matrix import ExpressionMatrix
from repro.data.annotations import GeneAnnotations
from repro.data.dataset import Dataset
from repro.data.compendium import Compendium
from repro.data.merged import MergedDatasetInterface
from repro.data.pcl import read_pcl, write_pcl, parse_pcl, format_pcl
from repro.data.cdt import CdtTable, read_cdt, write_cdt, parse_cdt, format_cdt
from repro.data.treefiles import (
    read_gtr,
    write_gtr,
    read_atr,
    write_atr,
    parse_tree_file,
    format_tree_file,
)
from repro.data.normalize import log_transform, median_center, zscore_normalize, normalize
from repro.data.impute import row_mean_impute, knn_impute
from repro.data.loader import load_dataset, save_dataset
from repro.data.gmt import GeneSet, parse_gmt, format_gmt, read_gmt, write_gmt
from repro.data.soft import (
    parse_series_matrix,
    format_series_matrix,
    read_series_matrix,
    write_series_matrix,
)

__all__ = [
    "ExpressionMatrix",
    "GeneAnnotations",
    "Dataset",
    "Compendium",
    "MergedDatasetInterface",
    "read_pcl",
    "write_pcl",
    "parse_pcl",
    "format_pcl",
    "CdtTable",
    "read_cdt",
    "write_cdt",
    "parse_cdt",
    "format_cdt",
    "read_gtr",
    "write_gtr",
    "read_atr",
    "write_atr",
    "parse_tree_file",
    "format_tree_file",
    "log_transform",
    "median_center",
    "zscore_normalize",
    "normalize",
    "row_mean_impute",
    "knn_impute",
    "load_dataset",
    "save_dataset",
    "GeneSet",
    "parse_gmt",
    "format_gmt",
    "read_gmt",
    "write_gmt",
    "parse_series_matrix",
    "format_series_matrix",
    "read_series_matrix",
    "write_series_matrix",
]
