"""Per-gene annotation store and the annotation search ForestView exposes.

The paper's UI offers "search over the gene annotation information by
entering a list of search criteria"; :class:`GeneAnnotations` implements
the store and :meth:`GeneAnnotations.search` the matching.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.util.errors import ValidationError

__all__ = ["GeneAnnotations"]


class GeneAnnotations:
    """Maps gene id -> field name -> text value.

    Fields are free-form (``NAME``, ``DESCRIPTION``, ``PROCESS``, ...);
    all values are stored as strings.  Lookups are case-preserving but
    searches are case-insensitive, matching the loose behaviour genomics
    tools use for gene names.
    """

    def __init__(self, fields: Sequence[str] = ("NAME", "DESCRIPTION")) -> None:
        self.fields = list(dict.fromkeys(str(f) for f in fields))
        if not self.fields:
            raise ValidationError("annotation store needs at least one field")
        self._records: dict[str, dict[str, str]] = {}

    # ---------------------------------------------------------------- editing
    def set(self, gene_id: str, field: str, value: str) -> None:
        """Set one annotation value, registering the field if new."""
        gene_id = str(gene_id)
        field = str(field)
        if field not in self.fields:
            self.fields.append(field)
        self._records.setdefault(gene_id, {})[field] = str(value)

    def set_record(self, gene_id: str, record: Mapping[str, str]) -> None:
        for field, value in record.items():
            self.set(gene_id, field, value)

    # ----------------------------------------------------------------- lookup
    def get(self, gene_id: str, field: str, default: str = "") -> str:
        return self._records.get(str(gene_id), {}).get(str(field), default)

    def record(self, gene_id: str) -> dict[str, str]:
        """Full field->value mapping for a gene (empty dict if unannotated)."""
        return dict(self._records.get(str(gene_id), {}))

    def genes(self) -> list[str]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, gene_id: str) -> bool:
        return str(gene_id) in self._records

    # ----------------------------------------------------------------- search
    def search(
        self,
        criteria: Iterable[str],
        *,
        fields: Sequence[str] | None = None,
        match: str = "substring",
    ) -> list[str]:
        """Genes whose annotations match *any* of the ``criteria`` terms.

        Parameters
        ----------
        criteria:
            Search terms; matching is case-insensitive, and a gene
            matching any term is returned (ForestView's search box takes
            "a list of search criteria").
        fields:
            Restrict matching to these fields (default: all fields).
        match:
            ``"substring"`` (default) or ``"exact"``.
        """
        if match not in ("substring", "exact"):
            raise ValidationError(f"match must be 'substring' or 'exact', got {match!r}")
        terms = [str(c).lower() for c in criteria if str(c).strip()]
        if not terms:
            return []
        search_fields = list(fields) if fields is not None else self.fields
        hits: list[str] = []
        for gene_id, record in self._records.items():
            haystacks = [record.get(f, "").lower() for f in search_fields]
            haystacks.append(gene_id.lower())  # the id itself is always searchable
            matched = False
            for term in terms:
                if match == "exact":
                    matched = any(h == term for h in haystacks)
                else:
                    matched = any(term in h for h in haystacks)
                if matched:
                    break
            if matched:
                hits.append(gene_id)
        return hits

    def merged_with(self, other: "GeneAnnotations") -> "GeneAnnotations":
        """Union of two stores; ``other`` wins on conflicting values."""
        out = GeneAnnotations(self.fields + [f for f in other.fields if f not in self.fields])
        for gene_id, record in self._records.items():
            out.set_record(gene_id, record)
        for gene_id, record in other._records.items():
            out.set_record(gene_id, record)
        return out
