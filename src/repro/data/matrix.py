"""The core expression-matrix container.

An :class:`ExpressionMatrix` is a (genes x conditions) array of log-ratio
measurements with NaN marking missing values, plus the row/column
identity metadata every microarray tool carries around: gene IDs, gene
display names, condition names, and the PCL-style GWEIGHT/EWEIGHT
columns.  It is immutable-by-convention: operations return new matrices
(sharing data views where safe) rather than mutating in place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.util.errors import ValidationError
from repro.stats.descriptive import nan_summary

__all__ = ["ExpressionMatrix"]


class ExpressionMatrix:
    """A gene-by-condition measurement matrix with identity metadata.

    Parameters
    ----------
    values:
        (n_genes, n_conditions) float array; NaN means "missing".
    gene_ids:
        Unique systematic identifiers, e.g. ``YAL001C`` (row keys).
    gene_names:
        Display names (PCL ``NAME`` column); defaults to ``gene_ids``.
    condition_names:
        Column labels, e.g. ``heat_15min``.
    gene_weights / condition_weights:
        PCL GWEIGHT / EWEIGHT vectors; default to all-ones.
    """

    __slots__ = (
        "values",
        "gene_ids",
        "gene_names",
        "condition_names",
        "gene_weights",
        "condition_weights",
        "_gene_index",
    )

    def __init__(
        self,
        values: np.ndarray,
        gene_ids: Sequence[str],
        condition_names: Sequence[str],
        *,
        gene_names: Sequence[str] | None = None,
        gene_weights: np.ndarray | None = None,
        condition_weights: np.ndarray | None = None,
    ) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValidationError(f"values must be 2-D, got shape {values.shape}")
        n_genes, n_conditions = values.shape
        gene_ids = [str(g) for g in gene_ids]
        condition_names = [str(c) for c in condition_names]
        if len(gene_ids) != n_genes:
            raise ValidationError(
                f"{len(gene_ids)} gene ids for {n_genes} rows"
            )
        if len(condition_names) != n_conditions:
            raise ValidationError(
                f"{len(condition_names)} condition names for {n_conditions} columns"
            )
        if len(set(gene_ids)) != len(gene_ids):
            dupes = sorted({g for g in gene_ids if gene_ids.count(g) > 1})
            raise ValidationError(f"duplicate gene ids: {dupes[:5]}")
        if gene_names is None:
            gene_names = list(gene_ids)
        else:
            gene_names = [str(g) for g in gene_names]
            if len(gene_names) != n_genes:
                raise ValidationError(
                    f"{len(gene_names)} gene names for {n_genes} rows"
                )
        gene_weights = (
            np.ones(n_genes) if gene_weights is None else np.asarray(gene_weights, dtype=np.float64)
        )
        condition_weights = (
            np.ones(n_conditions)
            if condition_weights is None
            else np.asarray(condition_weights, dtype=np.float64)
        )
        if gene_weights.shape != (n_genes,):
            raise ValidationError(f"gene_weights shape {gene_weights.shape} != ({n_genes},)")
        if condition_weights.shape != (n_conditions,):
            raise ValidationError(
                f"condition_weights shape {condition_weights.shape} != ({n_conditions},)"
            )

        self.values = values
        self.gene_ids = list(gene_ids)
        self.gene_names = list(gene_names)
        self.condition_names = list(condition_names)
        self.gene_weights = gene_weights
        self.condition_weights = condition_weights
        self._gene_index = {g: i for i, g in enumerate(gene_ids)}

    # ------------------------------------------------------------------ shape
    @property
    def n_genes(self) -> int:
        return self.values.shape[0]

    @property
    def n_conditions(self) -> int:
        return self.values.shape[1]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def __repr__(self) -> str:
        return (
            f"ExpressionMatrix({self.n_genes} genes x {self.n_conditions} conditions, "
            f"{nan_summary(self.values)['fraction_missing']:.1%} missing)"
        )

    # ----------------------------------------------------------------- lookup
    def __contains__(self, gene_id: str) -> bool:
        return gene_id in self._gene_index

    def index_of(self, gene_id: str) -> int:
        """Row index of ``gene_id``; raises KeyError when absent."""
        try:
            return self._gene_index[gene_id]
        except KeyError:
            raise KeyError(f"gene {gene_id!r} not in matrix") from None

    def indices_of(self, gene_ids: Iterable[str], *, missing: str = "raise") -> list[int]:
        """Row indices for ``gene_ids``.

        ``missing='raise'`` raises on unknown genes; ``missing='skip'``
        silently drops them (used for cross-dataset gene matching where
        absence is expected).
        """
        if missing not in ("raise", "skip"):
            raise ValidationError(f"missing must be 'raise' or 'skip', got {missing!r}")
        out: list[int] = []
        for g in gene_ids:
            idx = self._gene_index.get(g)
            if idx is None:
                if missing == "raise":
                    raise KeyError(f"gene {g!r} not in matrix")
                continue
            out.append(idx)
        return out

    def row(self, gene_id: str) -> np.ndarray:
        """Expression vector for one gene (a view, not a copy)."""
        return self.values[self.index_of(gene_id)]

    # ----------------------------------------------------------------- subset
    def subset_genes(self, gene_ids: Sequence[str], *, missing: str = "raise") -> "ExpressionMatrix":
        """New matrix holding only ``gene_ids``, in the order given."""
        rows = self.indices_of(gene_ids, missing=missing)
        return self._take_rows(rows)

    def subset_rows(self, rows: Sequence[int]) -> "ExpressionMatrix":
        """New matrix holding the given row indices, in the order given."""
        rows = list(rows)
        n = self.n_genes
        for r in rows:
            if not (0 <= r < n):
                raise ValidationError(f"row index {r} out of range [0, {n})")
        return self._take_rows(rows)

    def _take_rows(self, rows: list[int]) -> "ExpressionMatrix":
        idx = np.asarray(rows, dtype=np.intp)
        return ExpressionMatrix(
            self.values[idx],
            [self.gene_ids[i] for i in rows],
            self.condition_names,
            gene_names=[self.gene_names[i] for i in rows],
            gene_weights=self.gene_weights[idx],
            condition_weights=self.condition_weights,
        )

    def subset_conditions(self, cols: Sequence[int]) -> "ExpressionMatrix":
        """New matrix holding the given condition (column) indices."""
        cols = list(cols)
        n = self.n_conditions
        for c in cols:
            if not (0 <= c < n):
                raise ValidationError(f"condition index {c} out of range [0, {n})")
        idx = np.asarray(cols, dtype=np.intp)
        return ExpressionMatrix(
            self.values[:, idx],
            self.gene_ids,
            [self.condition_names[i] for i in cols],
            gene_names=self.gene_names,
            gene_weights=self.gene_weights,
            condition_weights=self.condition_weights[idx],
        )

    def reorder_genes(self, order: Sequence[int]) -> "ExpressionMatrix":
        """Permute rows; ``order`` must be a permutation of ``range(n_genes)``."""
        order = list(order)
        if sorted(order) != list(range(self.n_genes)):
            raise ValidationError("order must be a permutation of all row indices")
        return self._take_rows(order)

    # ------------------------------------------------------------- statistics
    def missing_fraction(self) -> float:
        return nan_summary(self.values)["fraction_missing"]

    def with_values(self, values: np.ndarray) -> "ExpressionMatrix":
        """New matrix with the same metadata but replaced ``values``."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.shape:
            raise ValidationError(f"replacement values {values.shape} != {self.shape}")
        return ExpressionMatrix(
            values,
            self.gene_ids,
            self.condition_names,
            gene_names=self.gene_names,
            gene_weights=self.gene_weights,
            condition_weights=self.condition_weights,
        )

    def equals(self, other: "ExpressionMatrix", *, rtol: float = 1e-9) -> bool:
        """Structural + numeric equality (NaNs equal); used by round-trip tests."""
        return (
            self.gene_ids == other.gene_ids
            and self.gene_names == other.gene_names
            and self.condition_names == other.condition_names
            and self.shape == other.shape
            and bool(
                np.allclose(self.values, other.values, rtol=rtol, equal_nan=True)
            )
            and bool(np.allclose(self.gene_weights, other.gene_weights, rtol=rtol))
            and bool(np.allclose(self.condition_weights, other.condition_weights, rtol=rtol))
        )
