"""A compendium: the ordered collection of datasets ForestView displays.

The paper's first challenge is "the ability to analyze multiple large
datasets"; the compendium is the container all multi-dataset operations
(merged interface, SPELL search, pane synchronization) run over.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, Sequence

from repro.data.dataset import Dataset
from repro.util.errors import ValidationError

__all__ = ["Compendium"]


class Compendium:
    """Ordered, name-keyed collection of :class:`Dataset` objects.

    Every mutation (add/remove/reorder) bumps :attr:`version`, a
    monotonically increasing token that downstream caches and indexes key
    on: a cached answer is valid only for the version it was computed
    against, so invalidation is a token comparison rather than a deep
    content check.
    """

    def __init__(self, datasets: Iterable[Dataset] = ()) -> None:
        self._datasets: list[Dataset] = []
        self._by_name: dict[str, Dataset] = {}
        self._version = 0
        for ds in datasets:
            self.add(ds)

    # ---------------------------------------------------------------- editing
    def add(self, dataset: Dataset) -> None:
        if dataset.name in self._by_name:
            raise ValidationError(f"duplicate dataset name {dataset.name!r}")
        self._datasets.append(dataset)
        self._by_name[dataset.name] = dataset
        self._version += 1

    def remove(self, name: str) -> Dataset:
        ds = self[name]
        self._datasets.remove(ds)
        del self._by_name[name]
        self._version += 1
        return ds

    def reorder(self, names: Sequence[str]) -> None:
        """Reorder datasets; ``names`` must be a permutation of current names.

        ForestView's "Order Datasets" operation (e.g. by SPELL relevance)
        lands here.
        """
        names = list(names)
        if sorted(names) != sorted(self._by_name):
            raise ValidationError(
                "reorder requires a permutation of the current dataset names"
            )
        self._datasets = [self._by_name[n] for n in names]
        self._version += 1

    # ----------------------------------------------------------------- lookup
    @property
    def version(self) -> int:
        """Mutation counter; changes whenever the dataset collection does."""
        return self._version

    @property
    def fingerprint(self) -> str:
        """Content identity: ordered roll-up of every dataset's fingerprint.

        :attr:`version` is the *fast* token (a process-local counter that
        caches key on); the fingerprint is the *durable* token — it is
        identical across processes and restarts for the same data in the
        same order, which is what the persistent index store
        (:class:`repro.spell.store.IndexStore`) keys its shards on.
        """
        h = hashlib.sha1()
        for ds in self._datasets:
            h.update(ds.name.encode())
            h.update(b"\x00")
            h.update(ds.fingerprint.encode())
        return h.hexdigest()

    def __getitem__(self, key: str | int) -> Dataset:
        if isinstance(key, int):
            return self._datasets[key]
        try:
            return self._by_name[key]
        except KeyError:
            raise KeyError(f"no dataset named {key!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets)

    @property
    def names(self) -> list[str]:
        return [ds.name for ds in self._datasets]

    def index_of(self, name: str) -> int:
        for i, ds in enumerate(self._datasets):
            if ds.name == name:
                return i
        raise KeyError(f"no dataset named {name!r}")

    # -------------------------------------------------------------- summaries
    def gene_universe(self) -> list[str]:
        """Sorted union of gene ids across all datasets."""
        universe: set[str] = set()
        for ds in self._datasets:
            universe.update(ds.gene_ids)
        return sorted(universe)

    def common_genes(self) -> list[str]:
        """Sorted intersection of gene ids present in every dataset."""
        if not self._datasets:
            return []
        common = set(self._datasets[0].gene_ids)
        for ds in self._datasets[1:]:
            common.intersection_update(ds.gene_ids)
        return sorted(common)

    def datasets_containing(self, gene_id: str) -> list[str]:
        return [ds.name for ds in self._datasets if gene_id in ds.matrix]

    def total_measurements(self) -> int:
        """Total non-missing measurements (paper: 'a quarter billion ...')."""
        return sum(ds.measurement_count() for ds in self._datasets)

    def max_conditions(self) -> int:
        return max((ds.n_conditions for ds in self._datasets), default=0)

    def __repr__(self) -> str:
        return (
            f"Compendium({len(self)} datasets, {len(self.gene_universe())} genes, "
            f"{self.total_measurements()} measurements)"
        )
