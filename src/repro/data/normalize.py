"""Dataset-level normalization passes.

These wrap the row-statistics kernels in :mod:`repro.stats.descriptive`
with :class:`Dataset`-aware plumbing, mirroring the preprocessing every
microarray pipeline applies before visualization (log transform, median
centering, z-scoring).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.stats.descriptive import median_center_rows, zscore_rows
from repro.util.errors import ValidationError

__all__ = ["log_transform", "median_center", "zscore_normalize", "normalize"]

PIPELINE_STEPS = ("log", "median_center", "zscore")


def log_transform(dataset: Dataset, *, base: float = 2.0, pseudocount: float = 0.0) -> Dataset:
    """Elementwise log; non-positive inputs become missing (NaN).

    Raw intensity ratios are logged before display; already-logged data
    should skip this step.
    """
    if base <= 1.0:
        raise ValidationError(f"log base must exceed 1, got {base}")
    values = dataset.matrix.values + pseudocount
    with np.errstate(invalid="ignore", divide="ignore"):
        logged = np.log(values) / np.log(base)
    logged[~np.isfinite(logged)] = np.nan
    return _with_values(dataset, logged)


def median_center(dataset: Dataset) -> Dataset:
    """Subtract each gene's median expression (per-row centering)."""
    return _with_values(dataset, median_center_rows(dataset.matrix.values))


def zscore_normalize(dataset: Dataset) -> Dataset:
    """Z-score each gene row (zero mean, unit variance, NaNs preserved)."""
    return _with_values(dataset, zscore_rows(dataset.matrix.values))


def normalize(dataset: Dataset, steps: tuple[str, ...] = ("median_center",)) -> Dataset:
    """Apply a pipeline of named steps in order; see :data:`PIPELINE_STEPS`."""
    out = dataset
    for step in steps:
        if step == "log":
            out = log_transform(out)
        elif step == "median_center":
            out = median_center(out)
        elif step == "zscore":
            out = zscore_normalize(out)
        else:
            raise ValidationError(f"unknown normalization step {step!r}; choose from {PIPELINE_STEPS}")
    return out


def _with_values(dataset: Dataset, values: np.ndarray) -> Dataset:
    return Dataset(
        name=dataset.name,
        matrix=dataset.matrix.with_values(values),
        annotations=dataset.annotations,
        gene_tree=dataset.gene_tree,
        array_tree=dataset.array_tree,
        metadata=dict(dataset.metadata),
    )
