"""GTR / ATR dendrogram file format (Cluster 3.0 / Java TreeView lineage).

Each line records one merge, bottom-up::

    NODE1X    GENE4X    GENE7X    0.9173

i.e. ``node_id  left_child  right_child  correlation`` where
``correlation = 1 - merge_distance``.  Children may be leaves
(``GENE{i}X`` / ``ARRY{i}X``) or earlier nodes (``NODE{i}X``).
"""

from __future__ import annotations

import io
import re
from pathlib import Path


from repro.cluster.tree import DendrogramTree, TreeNode
from repro.util.errors import DataFormatError

__all__ = ["parse_tree_file", "format_tree_file", "read_gtr", "write_gtr", "read_atr", "write_atr"]

_LEAF_RE = re.compile(r"^([A-Z]+)(\d+)X$")


def parse_tree_file(
    text: str, *, leaf_prefix: str = "GENE", path: str | None = None
) -> DendrogramTree:
    """Parse GTR/ATR content into a :class:`DendrogramTree`.

    ``leaf_prefix`` selects which child ids are leaves (GENE for GTR,
    ARRY for ATR); leaf numbering must cover 0..n-1.
    """
    nodes: dict[str, TreeNode] = {}
    children: set[str] = set()
    order: list[str] = []

    def resolve(token: str, line_no: int) -> TreeNode:
        token = token.strip()
        if token in nodes:
            return nodes[token]
        match = _LEAF_RE.match(token)
        if match and match.group(1) == leaf_prefix:
            leaf = TreeNode(node_id=token, index=int(match.group(2)))
            nodes[token] = leaf
            return leaf
        raise DataFormatError(
            f"unknown child {token!r} (forward reference or wrong prefix)",
            path=path,
            line=line_no,
        )

    lines = [ln.rstrip("\n").rstrip("\r") for ln in io.StringIO(text)]
    lines = [ln for ln in lines if ln.strip()]
    if not lines:
        raise DataFormatError("empty tree file", path=path)
    for line_no, line in enumerate(lines, start=1):
        cells = line.split("\t")
        if len(cells) != 4:
            raise DataFormatError(
                f"tree line needs 4 tab-separated fields, got {len(cells)}",
                path=path,
                line=line_no,
            )
        node_id = cells[0].strip()
        if node_id in nodes:
            raise DataFormatError(f"duplicate node id {node_id!r}", path=path, line=line_no)
        left = resolve(cells[1], line_no)
        right = resolve(cells[2], line_no)
        try:
            correlation = float(cells[3])
        except ValueError:
            raise DataFormatError(
                f"non-numeric correlation {cells[3]!r}", path=path, line=line_no
            )
        for child in (left.node_id, right.node_id):
            if child in children:
                raise DataFormatError(
                    f"node {child!r} used as a child twice", path=path, line=line_no
                )
            children.add(child)
        node = TreeNode(
            node_id=node_id,
            height=1.0 - correlation,
            left=left,
            right=right,
            correlation=correlation,
        )
        nodes[node_id] = node
        order.append(node_id)

    roots = [nid for nid in order if nid not in children]
    if len(roots) != 1:
        raise DataFormatError(
            f"tree file must have exactly one root, found {len(roots)}", path=path
        )
    root = nodes[roots[0]]
    n_leaves = sum(1 for _ in root.leaves())
    return DendrogramTree(root=root, n_leaves=n_leaves)


def format_tree_file(tree: DendrogramTree) -> str:
    """Serialize merges bottom-up (children always precede parents)."""
    out = io.StringIO()
    for node in tree.root.nodes():
        if node.is_leaf:
            continue
        assert node.left is not None and node.right is not None
        correlation = node.correlation if node.correlation is not None else 1.0 - node.height
        out.write(
            f"{node.node_id}\t{node.left.node_id}\t{node.right.node_id}\t{correlation!r}\n"
        )
    return out.getvalue()


def read_gtr(path: str | Path) -> DendrogramTree:
    path = Path(path)
    return parse_tree_file(path.read_text(), leaf_prefix="GENE", path=str(path))


def write_gtr(tree: DendrogramTree, path: str | Path) -> None:
    Path(path).write_text(format_tree_file(tree))


def read_atr(path: str | Path) -> DendrogramTree:
    path = Path(path)
    return parse_tree_file(path.read_text(), leaf_prefix="ARRY", path=str(path))


def write_atr(tree: DendrogramTree, path: str | Path) -> None:
    Path(path).write_text(format_tree_file(tree))
