"""A named microarray dataset: matrix + annotations + optional dendrograms.

This is the unit ForestView displays one pane for.  The gene tree and
array tree mirror what a CDT/GTR/ATR triple from Cluster 3.0 provides.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.tree import DendrogramTree
from repro.cluster.hierarchical import hierarchical_cluster
from repro.data.annotations import GeneAnnotations
from repro.data.matrix import ExpressionMatrix
from repro.util.errors import ValidationError

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """One microarray dataset as ForestView sees it.

    Attributes
    ----------
    name:
        Unique display name (pane title, compendium key).
    matrix:
        The expression measurements.
    annotations:
        Per-gene annotation store; defaults to NAME-only records derived
        from the matrix's gene names.
    gene_tree / array_tree:
        Optional dendrograms over rows / columns.  When present, their
        leaf counts must match the matrix.
    metadata:
        Free-form dataset-level facts (publication, platform, ...).
    """

    name: str
    matrix: ExpressionMatrix
    annotations: GeneAnnotations = field(default_factory=GeneAnnotations)
    gene_tree: DendrogramTree | None = None
    array_tree: DendrogramTree | None = None
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not str(self.name):
            raise ValidationError("dataset name must be non-empty")
        self.name = str(self.name)
        if self.gene_tree is not None and self.gene_tree.n_leaves != self.matrix.n_genes:
            raise ValidationError(
                f"gene tree has {self.gene_tree.n_leaves} leaves for "
                f"{self.matrix.n_genes} genes"
            )
        if self.array_tree is not None and self.array_tree.n_leaves != self.matrix.n_conditions:
            raise ValidationError(
                f"array tree has {self.array_tree.n_leaves} leaves for "
                f"{self.matrix.n_conditions} conditions"
            )
        # guarantee every gene has at least a NAME annotation
        for gid, gname in zip(self.matrix.gene_ids, self.matrix.gene_names):
            if gid not in self.annotations:
                self.annotations.set(gid, "NAME", gname)

    # ------------------------------------------------------------------ views
    @property
    def n_genes(self) -> int:
        return self.matrix.n_genes

    @property
    def n_conditions(self) -> int:
        return self.matrix.n_conditions

    @property
    def gene_ids(self) -> list[str]:
        return self.matrix.gene_ids

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the measurements and their identity metadata.

        Hashes the matrix values plus gene ids and condition names — the
        exact inputs SPELL index normalization consumes — so two datasets
        with the same fingerprint produce bit-identical index shards.
        Computed once and cached; matrices are immutable-by-convention,
        so mutating ``matrix.values`` in place invalidates the cache
        silently (don't).
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            h = hashlib.sha1()
            h.update(np.ascontiguousarray(self.matrix.values).tobytes())
            for g in self.matrix.gene_ids:
                h.update(g.encode())
                h.update(b"\x00")
            h.update(b"\x01")
            for c in self.matrix.condition_names:
                h.update(c.encode())
                h.update(b"\x00")
            cached = h.hexdigest()
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def display_order(self) -> list[int]:
        """Row order for rendering: gene-tree leaf order if clustered, else natural."""
        if self.gene_tree is not None:
            return self.gene_tree.leaf_order()
        return list(range(self.n_genes))

    def condition_display_order(self) -> list[int]:
        if self.array_tree is not None:
            return self.array_tree.leaf_order()
        return list(range(self.n_conditions))

    # ------------------------------------------------------------- operations
    def clustered(
        self,
        *,
        metric: str = "correlation",
        linkage: str = "average",
        cluster_arrays: bool = False,
    ) -> "Dataset":
        """Return a copy of this dataset with freshly computed dendrograms."""
        gene_tree = hierarchical_cluster(
            self.matrix.values,
            metric=metric,
            linkage=linkage,
            leaf_ids=[f"GENE{i}X" for i in range(self.n_genes)],
        )
        array_tree = self.array_tree
        if cluster_arrays and self.n_conditions >= 2:
            array_tree = hierarchical_cluster(
                self.matrix.values.T,
                metric=metric,
                linkage=linkage,
                leaf_ids=[f"ARRY{i}X" for i in range(self.n_conditions)],
                node_prefix="ANODE",
            )
        return Dataset(
            name=self.name,
            matrix=self.matrix,
            annotations=self.annotations,
            gene_tree=gene_tree,
            array_tree=array_tree,
            metadata=dict(self.metadata),
        )

    def subset(self, gene_ids, *, name: str | None = None, missing: str = "skip") -> "Dataset":
        """Sub-dataset over ``gene_ids`` (trees dropped: they no longer apply).

        This implements the paper's "this subset can also be loaded into
        the ForestView display as a dataset".
        """
        sub_matrix = self.matrix.subset_genes(list(gene_ids), missing=missing)
        if sub_matrix.n_genes == 0:
            raise ValidationError(f"subset of {self.name!r} contains no genes")
        sub_name = name if name is not None else f"{self.name}:subset"
        return Dataset(
            name=sub_name,
            matrix=sub_matrix,
            annotations=self.annotations,
            metadata=dict(self.metadata),
        )

    def measurement_count(self) -> int:
        """Total non-missing measurements (the paper counts compendium size this way)."""
        return int((~np.isnan(self.matrix.values)).sum())

    def __repr__(self) -> str:
        trees = []
        if self.gene_tree is not None:
            trees.append("gene-tree")
        if self.array_tree is not None:
            trees.append("array-tree")
        suffix = f", {'+'.join(trees)}" if trees else ""
        return f"Dataset({self.name!r}, {self.n_genes}x{self.n_conditions}{suffix})"
