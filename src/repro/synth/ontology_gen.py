"""Synthetic GO-like ontology and annotation generation.

GOLEM needs a DAG with realistic shape — a single root, a few broad
namespaces, increasing fan-out with depth, occasional multiple
parentage — and gene annotations that follow the true path rule.  The
generator also supports *planting* an enrichment: guaranteeing that a
chosen term annotates a chosen gene set, so enrichment recovery can be
scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ontology.annotations import TermAnnotations
from repro.ontology.dag import GeneOntology, Term
from repro.util.errors import ValidationError
from repro.util.rng import default_rng

__all__ = ["OntologyTruth", "make_ontology", "make_annotated_ontology"]


@dataclass(frozen=True)
class OntologyTruth:
    """What :func:`make_annotated_ontology` planted."""

    planted_terms: dict[str, tuple[str, ...]]  # term id -> gene ids annotated to it
    n_terms: int
    n_genes_annotated: int


def make_ontology(
    *,
    n_terms: int = 200,
    max_depth: int = 6,
    multi_parent_fraction: float = 0.15,
    seed: int | np.random.Generator | None = None,
) -> GeneOntology:
    """Generate a rooted DAG of ``n_terms`` terms.

    Terms are created breadth-first: each new term picks a primary parent
    uniformly among terms of the previous depth, and with
    ``multi_parent_fraction`` probability adds a second parent from any
    shallower depth (creating genuine DAG structure, not a tree).
    """
    if n_terms < 1:
        raise ValidationError(f"need >= 1 terms, got {n_terms}")
    if max_depth < 1:
        raise ValidationError(f"max_depth must be >= 1, got {max_depth}")
    rng = default_rng(seed)
    terms: list[Term] = [
        Term(term_id="GO:0000001", name="biological_process", namespace="biological_process")
    ]
    depth_of = {"GO:0000001": 0}
    by_depth: dict[int, list[str]] = {0: ["GO:0000001"]}
    vocab = [
        "response to stimulus", "metabolic process", "transport", "signaling",
        "cell cycle", "stress response", "biosynthesis", "catabolism",
        "regulation", "organization", "assembly", "repair", "replication",
        "translation", "transcription", "folding", "localization", "division",
    ]
    for i in range(1, n_terms):
        term_id = f"GO:{i + 1:07d}"
        # bias parents toward shallower depths early, deeper later
        target_depth = min(1 + int(max_depth * i / n_terms), max_depth)
        parent_depth = target_depth - 1
        while parent_depth not in by_depth:
            parent_depth -= 1
        candidates = by_depth[parent_depth]
        primary = candidates[int(rng.integers(len(candidates)))]
        parents = [primary]
        if rng.random() < multi_parent_fraction and parent_depth >= 1:
            shallow_depth = int(rng.integers(parent_depth)) if parent_depth > 0 else 0
            pool = [t for t in by_depth.get(shallow_depth, []) if t != primary]
            if pool:
                parents.append(pool[int(rng.integers(len(pool)))])
        depth = depth_of[primary] + 1
        name = f"{vocab[i % len(vocab)]} {i}"
        terms.append(Term(term_id=term_id, name=name, parents=tuple(parents)))
        depth_of[term_id] = depth
        by_depth.setdefault(depth, []).append(term_id)
    return GeneOntology(terms)


def make_annotated_ontology(
    gene_ids: list[str],
    *,
    n_terms: int = 200,
    annotations_per_gene: float = 3.0,
    planted: dict[str, list[str]] | None = None,
    seed: int | np.random.Generator | None = None,
) -> tuple[GeneOntology, TermAnnotations, OntologyTruth]:
    """Ontology + annotations with optional planted term->genes assignments.

    Parameters
    ----------
    planted:
        Mapping of *term name keyword* -> gene ids.  For each entry a
        dedicated term is created (named after the keyword, attached
        under the root's first child) and all listed genes are annotated
        to it.  Remaining annotations are drawn at random from leaf-ish
        terms, Poisson(``annotations_per_gene``) per gene.
    """
    rng = default_rng(seed)
    ontology_terms = list(make_ontology(n_terms=n_terms, seed=rng))
    existing = {t.term_id for t in ontology_terms}
    planted = dict(planted or {})
    planted_term_ids: dict[str, str] = {}
    # attach planted terms under the first depth-1 term (or root)
    anchors = [t.term_id for t in ontology_terms if t.parents == ("GO:0000001",)]
    anchor = anchors[0] if anchors else "GO:0000001"
    next_id = len(existing) + 1
    for keyword in sorted(planted):
        term_id = f"GO:{next_id + 1000000:07d}"
        next_id += 1
        ontology_terms.append(
            Term(term_id=term_id, name=keyword, parents=(anchor,))
        )
        planted_term_ids[keyword] = term_id
    ontology = GeneOntology(ontology_terms)

    store = TermAnnotations(ontology)
    planted_truth: dict[str, tuple[str, ...]] = {}
    for keyword, genes in planted.items():
        term_id = planted_term_ids[keyword]
        for g in genes:
            store.annotate(g, term_id)
        planted_truth[term_id] = tuple(genes)

    # background annotations over deeper terms (avoid the root, which would
    # annotate everything after propagation anyway, and the planted terms,
    # whose gene sets must stay exactly as planted)
    planted_ids = set(planted_term_ids.values())
    candidate_terms = [
        t
        for t in ontology.term_ids()
        if ontology.depth(t) >= 2 and t not in planted_ids
    ]
    if not candidate_terms:
        candidate_terms = ontology.term_ids()
    for g in gene_ids:
        n_extra = int(rng.poisson(annotations_per_gene))
        for _ in range(n_extra):
            term = candidate_terms[int(rng.integers(len(candidate_terms)))]
            store.annotate(g, term)

    truth = OntologyTruth(
        planted_terms=planted_truth,
        n_terms=len(ontology),
        n_genes_annotated=len(store),
    )
    return ontology, store, truth
