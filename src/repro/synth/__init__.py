"""Synthetic data substitutes for the paper's proprietary inputs.

The paper evaluates on real yeast compendia (Gasch 2000 stress,
Brauer/Saldanha 2004 nutrient limitation, Hughes 2000 knockouts) and the
real Gene Ontology.  Those inputs are not redistributable, so this
package generates structurally equivalent data with *known planted
ground truth* — see DESIGN.md §2 for the substitution rationale.
"""

from repro.synth.names import systematic_names, make_annotations
from repro.synth.expression import GeneModule, synthesize_matrix, profile
from repro.synth.compendia import (
    CaseStudyTruth,
    SpellTruth,
    make_simple_dataset,
    make_stress_compendium,
    make_case_study,
    make_spell_compendium,
)
from repro.synth.ontology_gen import OntologyTruth, make_ontology, make_annotated_ontology

__all__ = [
    "systematic_names",
    "make_annotations",
    "GeneModule",
    "synthesize_matrix",
    "profile",
    "CaseStudyTruth",
    "SpellTruth",
    "make_simple_dataset",
    "make_stress_compendium",
    "make_case_study",
    "make_spell_compendium",
    "OntologyTruth",
    "make_ontology",
    "make_annotated_ontology",
]
