"""Module-based synthetic expression data generation.

The generator plants *gene modules* — sets of genes sharing a condition
profile — into Gaussian background noise, then knocks out a fraction of
cells as missing.  Modules are exactly the structure every system in this
reproduction must recover: ForestView's synchronized views show them,
SPELL's searches rank them, clustering groups them, and GOLEM finds them
enriched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.matrix import ExpressionMatrix
from repro.util.errors import ValidationError
from repro.util.rng import default_rng

__all__ = ["GeneModule", "synthesize_matrix", "profile"]


@dataclass(frozen=True)
class GeneModule:
    """A co-regulated gene set with a shared condition profile.

    ``amplitude_sd`` jitters per-gene responsiveness so module members
    correlate strongly without being identical.
    """

    name: str
    gene_ids: tuple[str, ...]
    profile: tuple[float, ...]
    amplitude: float = 1.0
    amplitude_sd: float = 0.15


def profile(kind: str, n_conditions: int, *, rng=None, **kwargs) -> np.ndarray:
    """Canonical condition profiles for planted modules.

    Kinds
    -----
    ``pulse``     transient induction peaking mid-course (heat-shock-like)
    ``sustained`` step up and stay up
    ``gradient``  linear ramp (growth-rate-like)
    ``sine``      periodic (cell-cycle-like)
    ``spike``     single-condition response (knockout-signature-like);
                  pass ``at=<index>``
    """
    if n_conditions < 1:
        raise ValidationError(f"need >=1 conditions, got {n_conditions}")
    t = np.linspace(0.0, 1.0, n_conditions)
    if kind == "pulse":
        center = kwargs.get("center", 0.35)
        width = kwargs.get("width", 0.18)
        return np.exp(-0.5 * ((t - center) / width) ** 2)
    if kind == "sustained":
        onset = kwargs.get("onset", 0.25)
        return 1.0 / (1.0 + np.exp(-(t - onset) * 20.0))
    if kind == "gradient":
        return t.copy()
    if kind == "sine":
        periods = kwargs.get("periods", 2.0)
        return np.sin(2.0 * np.pi * periods * t)
    if kind == "spike":
        at = kwargs.get("at")
        if at is None or not (0 <= int(at) < n_conditions):
            raise ValidationError(f"spike profile needs at in [0, {n_conditions}), got {at!r}")
        out = np.zeros(n_conditions)
        out[int(at)] = 1.0
        return out
    raise ValidationError(f"unknown profile kind {kind!r}")


def synthesize_matrix(
    gene_ids: list[str],
    condition_names: list[str],
    modules: list[GeneModule] = (),
    *,
    noise_sd: float = 0.35,
    missing_fraction: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> ExpressionMatrix:
    """Generate an :class:`ExpressionMatrix` with the given planted modules.

    Cell value = Σ_modules amplitude_g * profile[c] + N(0, noise_sd),
    then ``missing_fraction`` of cells are replaced by NaN uniformly at
    random.  Unknown module genes raise; module profiles must match the
    condition count.
    """
    if not (0.0 <= missing_fraction < 1.0):
        raise ValidationError(f"missing_fraction must be in [0, 1), got {missing_fraction}")
    if noise_sd < 0:
        raise ValidationError(f"noise_sd must be non-negative, got {noise_sd}")
    rng = default_rng(seed)
    n_genes = len(gene_ids)
    n_cond = len(condition_names)
    index = {g: i for i, g in enumerate(gene_ids)}
    if len(index) != n_genes:
        raise ValidationError("gene_ids contain duplicates")

    values = rng.normal(0.0, noise_sd, size=(n_genes, n_cond))
    for module in modules:
        prof = np.asarray(module.profile, dtype=np.float64)
        if prof.shape != (n_cond,):
            raise ValidationError(
                f"module {module.name!r} profile has {prof.shape[0]} conditions, matrix has {n_cond}"
            )
        rows = []
        for g in module.gene_ids:
            if g not in index:
                raise ValidationError(f"module {module.name!r} references unknown gene {g!r}")
            rows.append(index[g])
        amplitudes = rng.normal(module.amplitude, module.amplitude_sd, size=len(rows))
        values[np.asarray(rows, dtype=np.intp)] += amplitudes[:, None] * prof[None, :]

    if missing_fraction > 0.0:
        mask = rng.random(values.shape) < missing_fraction
        values[mask] = np.nan
    return ExpressionMatrix(values, gene_ids, condition_names)
