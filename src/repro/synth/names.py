"""Yeast-style gene naming for synthetic datasets.

Systematic names follow the S. cerevisiae ORF convention
(``Y`` + chromosome letter + arm + 3-digit ordinal + strand, e.g.
``YAL001C``); a fraction of genes additionally receive common names
(``HSP104``-style) and keyword-bearing descriptions so ForestView's
annotation search has something realistic to match against.
"""

from __future__ import annotations

import numpy as np

from repro.data.annotations import GeneAnnotations
from repro.util.errors import ValidationError
from repro.util.rng import default_rng

__all__ = ["systematic_names", "make_annotations"]

_CHROMOSOMES = "ABCDEFGHIJKLMNOP"
_ARMS = "LR"
_STRANDS = "CW"

#: Common-name stems paired with description keywords; ESR-ish vocabulary
#: first so planted stress genes can draw matching annotations.
_FAMILIES = [
    ("HSP", "heat shock protein; stress response chaperone"),
    ("SSA", "stress-seventy subfamily A chaperone"),
    ("CTT", "catalase; oxidative stress response"),
    ("TPS", "trehalose-phosphate synthase; stress protectant"),
    ("RPL", "large ribosomal subunit protein"),
    ("RPS", "small ribosomal subunit protein"),
    ("ADH", "alcohol dehydrogenase; fermentative metabolism"),
    ("GAL", "galactose metabolism enzyme"),
    ("PHO", "phosphate metabolism regulator"),
    ("CLN", "G1 cyclin; cell cycle progression"),
    ("MET", "methionine biosynthesis enzyme"),
    ("URA", "uracil biosynthesis enzyme"),
]


def systematic_names(n: int) -> list[str]:
    """Deterministically generate ``n`` unique yeast-style ORF names."""
    if n < 0:
        raise ValidationError(f"cannot generate {n} names")
    names: list[str] = []
    ordinal = 1
    chrom_idx = 0
    arm_idx = 0
    strand_idx = 0
    while len(names) < n:
        chrom = _CHROMOSOMES[chrom_idx % len(_CHROMOSOMES)]
        arm = _ARMS[arm_idx % len(_ARMS)]
        strand = _STRANDS[strand_idx % len(_STRANDS)]
        names.append(f"Y{chrom}{arm}{ordinal:03d}{strand}")
        strand_idx += 1
        if strand_idx % len(_STRANDS) == 0:
            arm_idx += 1
            if arm_idx % len(_ARMS) == 0:
                chrom_idx += 1
                if chrom_idx % len(_CHROMOSOMES) == 0:
                    ordinal += 1
    return names


def make_annotations(
    gene_ids: list[str],
    *,
    common_name_fraction: float = 0.4,
    stress_genes: set[str] | None = None,
    ribosomal_genes: set[str] | None = None,
    seed: int | np.random.Generator | None = None,
) -> GeneAnnotations:
    """Build an annotation store with NAME and DESCRIPTION fields.

    ``stress_genes`` / ``ribosomal_genes`` are forced to draw stress- or
    ribosome-flavoured common names and descriptions, which makes the
    planted modules discoverable through annotation search (the paper's
    "Find Genes by name" box).
    """
    if not (0.0 <= common_name_fraction <= 1.0):
        raise ValidationError(
            f"common_name_fraction must be in [0, 1], got {common_name_fraction}"
        )
    rng = default_rng(seed)
    stress_genes = stress_genes or set()
    ribosomal_genes = ribosomal_genes or set()
    stress_families = _FAMILIES[:4]
    ribo_families = _FAMILIES[4:6]
    other_families = _FAMILIES[6:]

    annotations = GeneAnnotations(["NAME", "DESCRIPTION"])
    counters: dict[str, int] = {}

    def next_name(stem: str) -> str:
        counters[stem] = counters.get(stem, 0) + 1
        return f"{stem}{counters[stem]}"

    for gene_id in gene_ids:
        if gene_id in stress_genes:
            stem, desc = stress_families[int(rng.integers(len(stress_families)))]
        elif gene_id in ribosomal_genes:
            stem, desc = ribo_families[int(rng.integers(len(ribo_families)))]
        elif rng.random() < common_name_fraction:
            stem, desc = other_families[int(rng.integers(len(other_families)))]
        else:
            annotations.set(gene_id, "NAME", gene_id)
            annotations.set(gene_id, "DESCRIPTION", "uncharacterized open reading frame")
            continue
        annotations.set(gene_id, "NAME", next_name(stem))
        annotations.set(gene_id, "DESCRIPTION", desc)
    return annotations
