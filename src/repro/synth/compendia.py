"""Synthetic compendium builders mirroring the paper's three data sources.

§4 of the paper examines (a) the Gasch 2000 environmental stress
datasets, (b) the Brauer/Saldanha nutrient-limitation study and (c) the
Hughes 2000 knockout compendium, and finds that an environmental stress
response (ESR) module explains apparent nutrient/knockout signatures.

These builders plant exactly that structure with known ground truth:

* an **ESR module** with induced and repressed arms, present in every
  stress dataset, driven by slow growth in the nutrient dataset, and
  triggered by a subset of "sick" knockouts in the knockout compendium;
* per-dataset specific modules (heat-only, knockout signatures, ...)
  acting as distractors.

`CaseStudyTruth` records the planted sets so tests and the CASE4 bench
can score recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.compendium import Compendium
from repro.data.dataset import Dataset
from repro.synth.expression import GeneModule, profile, synthesize_matrix
from repro.synth.names import make_annotations, systematic_names
from repro.util.errors import ValidationError
from repro.util.rng import default_rng, spawn_rngs

__all__ = [
    "CaseStudyTruth",
    "make_simple_dataset",
    "make_stress_compendium",
    "make_case_study",
    "SpellTruth",
    "make_spell_compendium",
]


# --------------------------------------------------------------------------
# simple single datasets (unit-test workhorse)
# --------------------------------------------------------------------------
def make_simple_dataset(
    *,
    name: str = "demo",
    n_genes: int = 60,
    n_conditions: int = 12,
    n_module_genes: int = 15,
    noise_sd: float = 0.3,
    missing_fraction: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> Dataset:
    """One dataset with a single pulse module over its first genes."""
    if n_module_genes > n_genes:
        raise ValidationError("n_module_genes cannot exceed n_genes")
    rng = default_rng(seed)
    genes = systematic_names(n_genes)
    conditions = [f"cond_{i:02d}" for i in range(n_conditions)]
    module = GeneModule(
        name="planted",
        gene_ids=tuple(genes[:n_module_genes]),
        profile=tuple(profile("pulse", n_conditions) * 2.0),
    )
    matrix = synthesize_matrix(
        genes,
        conditions,
        [module],
        noise_sd=noise_sd,
        missing_fraction=missing_fraction,
        seed=rng,
    )
    annotations = make_annotations(genes, stress_genes=set(genes[:n_module_genes]), seed=rng)
    return Dataset(name=name, matrix=matrix, annotations=annotations)


# --------------------------------------------------------------------------
# the §4 case-study collection
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class CaseStudyTruth:
    """Ground truth planted by :func:`make_case_study`."""

    esr_induced: tuple[str, ...]
    esr_repressed: tuple[str, ...]
    growth_genes: tuple[str, ...]  # nutrient-specific, growth-rate correlated
    knockout_signatures: dict[str, tuple[str, ...]]  # knockout condition -> genes
    sick_knockouts: tuple[str, ...]  # knockout conditions that also trigger ESR
    stress_dataset_names: tuple[str, ...]
    nutrient_dataset_name: str
    knockout_dataset_name: str

    @property
    def esr_all(self) -> tuple[str, ...]:
        return self.esr_induced + self.esr_repressed


_STRESS_PANELS = [
    ("heat_shock", "pulse", dict(center=0.3, width=0.15)),
    ("oxidative_stress", "sustained", dict(onset=0.3)),
    ("osmotic_shock", "pulse", dict(center=0.45, width=0.2)),
]


def make_stress_compendium(
    *,
    n_genes: int = 400,
    n_conditions: int = 16,
    esr_fraction: float = 0.15,
    noise_sd: float = 0.35,
    missing_fraction: float = 0.02,
    n_datasets: int = 3,
    seed: int | np.random.Generator | None = None,
) -> Compendium:
    """Gasch-style environmental stress compendium (ESR planted everywhere)."""
    compendium, _truth = _build_case_study(
        n_genes=n_genes,
        n_conditions=n_conditions,
        esr_fraction=esr_fraction,
        noise_sd=noise_sd,
        missing_fraction=missing_fraction,
        n_stress=n_datasets,
        include_nutrient=False,
        include_knockout=False,
        seed=seed,
    )
    return compendium


def make_case_study(
    *,
    n_genes: int = 400,
    n_conditions: int = 16,
    n_knockouts: int = 24,
    esr_fraction: float = 0.12,
    noise_sd: float = 0.35,
    missing_fraction: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> tuple[Compendium, CaseStudyTruth]:
    """Full §4 collection: stress datasets + nutrient limitation + knockouts."""
    return _build_case_study(
        n_genes=n_genes,
        n_conditions=n_conditions,
        n_knockouts=n_knockouts,
        esr_fraction=esr_fraction,
        noise_sd=noise_sd,
        missing_fraction=missing_fraction,
        n_stress=len(_STRESS_PANELS),
        include_nutrient=True,
        include_knockout=True,
        seed=seed,
    )


def _build_case_study(
    *,
    n_genes: int,
    n_conditions: int,
    esr_fraction: float,
    noise_sd: float,
    missing_fraction: float,
    n_stress: int,
    include_nutrient: bool,
    include_knockout: bool,
    n_knockouts: int = 24,
    seed: int | np.random.Generator | None = None,
) -> tuple[Compendium, CaseStudyTruth]:
    if n_genes < 50:
        raise ValidationError(f"case study needs >= 50 genes, got {n_genes}")
    if not (0.0 < esr_fraction <= 0.4):
        raise ValidationError(f"esr_fraction must be in (0, 0.4], got {esr_fraction}")
    rng = default_rng(seed)
    genes = systematic_names(n_genes)

    n_esr = max(8, int(n_genes * esr_fraction))
    n_half = n_esr // 2
    esr_induced = tuple(genes[:n_half])
    esr_repressed = tuple(genes[n_half:n_esr])
    n_growth = max(6, n_genes // 20)
    growth_genes = tuple(genes[n_esr : n_esr + n_growth])
    distractor_pool = genes[n_esr + n_growth :]

    datasets: list[Dataset] = []
    stress_names: list[str] = []
    child_rngs = spawn_rngs(rng, n_stress + 2)

    # --- stress datasets: ESR in every one, plus a dataset-specific module
    for i in range(n_stress):
        panel_name, kind, kwargs = _STRESS_PANELS[i % len(_STRESS_PANELS)]
        ds_name = panel_name if i < len(_STRESS_PANELS) else f"{panel_name}_{i}"
        ds_rng = child_rngs[i]
        conditions = [f"{ds_name}_{t:02d}" for t in range(n_conditions)]
        stress_prof = profile(kind, n_conditions, **kwargs) * 2.2
        n_distract = min(len(distractor_pool), max(5, n_genes // 25))
        start = (i * n_distract) % max(1, len(distractor_pool) - n_distract + 1)
        distractors = tuple(distractor_pool[start : start + n_distract])
        modules = [
            GeneModule("esr_induced", esr_induced, tuple(stress_prof)),
            GeneModule("esr_repressed", esr_repressed, tuple(-stress_prof)),
            GeneModule(
                f"{ds_name}_specific",
                distractors,
                tuple(profile("sine", n_conditions, periods=1.5) * 1.5),
            ),
        ]
        matrix = synthesize_matrix(
            genes, conditions, modules, noise_sd=noise_sd, missing_fraction=missing_fraction, seed=ds_rng
        )
        annotations = make_annotations(
            genes,
            stress_genes=set(esr_induced),
            ribosomal_genes=set(esr_repressed),
            seed=ds_rng,
        )
        datasets.append(
            Dataset(
                name=ds_name,
                matrix=matrix,
                annotations=annotations,
                metadata={"source": "synthetic-gasch2000", "kind": "stress"},
            )
        )
        stress_names.append(ds_name)

    nutrient_name = "nutrient_limitation"
    knockout_name = "knockout_compendium"
    knockout_signatures: dict[str, tuple[str, ...]] = {}
    sick: tuple[str, ...] = ()

    if include_nutrient:
        ds_rng = child_rngs[n_stress]
        # conditions = nutrient x growth-rate grid; slow growth => strong ESR
        nutrients = ["glucose", "ammonium", "phosphate", "sulfate"]
        rates = [0.05, 0.1, 0.2, 0.3]
        conditions = [f"{n}_mu{r:.2f}" for n in nutrients for r in rates]
        growth_vec = np.array([r for _ in nutrients for r in rates])
        growth_norm = (growth_vec - growth_vec.mean()) / (growth_vec.max() - growth_vec.min())
        esr_drive = -growth_norm * 2.0  # slow growth drives the stress response
        modules = [
            GeneModule("esr_induced", esr_induced, tuple(esr_drive)),
            GeneModule("esr_repressed", esr_repressed, tuple(-esr_drive)),
            GeneModule("growth", growth_genes, tuple(growth_norm * 2.5)),
        ]
        matrix = synthesize_matrix(
            genes, conditions, modules, noise_sd=noise_sd, missing_fraction=missing_fraction, seed=ds_rng
        )
        annotations = make_annotations(
            genes, stress_genes=set(esr_induced), ribosomal_genes=set(esr_repressed), seed=ds_rng
        )
        datasets.append(
            Dataset(
                name=nutrient_name,
                matrix=matrix,
                annotations=annotations,
                metadata={"source": "synthetic-brauer2004", "kind": "nutrient"},
            )
        )

    if include_knockout:
        ds_rng = child_rngs[n_stress + 1]
        conditions = [f"ko_{i:03d}" for i in range(n_knockouts)]
        modules = []
        # each knockout perturbs its own small signature gene set
        sig_size = max(3, n_genes // 80)
        pool = list(distractor_pool)
        for i, cond in enumerate(conditions):
            start = (i * sig_size) % max(1, len(pool) - sig_size + 1)
            sig = tuple(pool[start : start + sig_size])
            knockout_signatures[cond] = sig
            modules.append(
                GeneModule(
                    f"sig_{cond}",
                    sig,
                    tuple(profile("spike", n_knockouts, at=i) * 2.5),
                )
            )
        # a third of knockouts are "sick": they additionally fire the ESR
        n_sick = max(2, n_knockouts // 3)
        sick_idx = sorted(ds_rng.choice(n_knockouts, size=n_sick, replace=False).tolist())
        sick = tuple(conditions[i] for i in sick_idx)
        esr_prof = np.zeros(n_knockouts)
        esr_prof[sick_idx] = 2.0
        modules.append(GeneModule("esr_induced", esr_induced, tuple(esr_prof)))
        modules.append(GeneModule("esr_repressed", esr_repressed, tuple(-esr_prof)))
        matrix = synthesize_matrix(
            genes, conditions, modules, noise_sd=noise_sd, missing_fraction=missing_fraction, seed=ds_rng
        )
        annotations = make_annotations(
            genes, stress_genes=set(esr_induced), ribosomal_genes=set(esr_repressed), seed=ds_rng
        )
        datasets.append(
            Dataset(
                name=knockout_name,
                matrix=matrix,
                annotations=annotations,
                metadata={"source": "synthetic-hughes2000", "kind": "knockout"},
            )
        )

    compendium = Compendium(datasets)
    truth = CaseStudyTruth(
        esr_induced=esr_induced,
        esr_repressed=esr_repressed,
        growth_genes=growth_genes,
        knockout_signatures=knockout_signatures,
        sick_knockouts=sick,
        stress_dataset_names=tuple(stress_names),
        nutrient_dataset_name=nutrient_name if include_nutrient else "",
        knockout_dataset_name=knockout_name if include_knockout else "",
    )
    return compendium, truth


# --------------------------------------------------------------------------
# SPELL search compendium
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SpellTruth:
    """Ground truth planted by :func:`make_spell_compendium`."""

    module_genes: tuple[str, ...]  # the coexpressed module SPELL should find
    query_genes: tuple[str, ...]  # the subset a user would type as the query
    relevant_datasets: tuple[str, ...]  # datasets where the module coexpresses
    irrelevant_datasets: tuple[str, ...]


def make_spell_compendium(
    *,
    n_datasets: int = 12,
    n_relevant: int = 4,
    n_genes: int = 300,
    n_conditions: int = 14,
    module_size: int = 20,
    query_size: int = 4,
    noise_sd: float = 0.4,
    missing_fraction: float = 0.02,
    seed: int | np.random.Generator | None = None,
) -> tuple[Compendium, SpellTruth]:
    """Compendium where a known gene module coexpresses in a known dataset subset.

    Relevant datasets carry the module with a strong shared profile;
    irrelevant datasets contain the same genes but no module signal (plus
    their own distractor modules so they are not trivially flat).
    """
    if n_relevant > n_datasets:
        raise ValidationError("n_relevant cannot exceed n_datasets")
    if query_size > module_size:
        raise ValidationError("query_size cannot exceed module_size")
    if module_size > n_genes // 3:
        raise ValidationError("module_size too large relative to n_genes")
    rng = default_rng(seed)
    genes = systematic_names(n_genes)
    module_genes = tuple(genes[:module_size])
    query_genes = tuple(module_genes[:query_size])
    distractor_pool = genes[module_size:]

    relevant_idx = set(range(n_relevant))  # deterministic: first datasets are relevant
    datasets: list[Dataset] = []
    # one shared annotation store: gene names/descriptions are facts about
    # the organism, not per-dataset draws (and per-dataset resampling would
    # hand the text-search baseline a degenerate all-tokens bag)
    shared_annotations = make_annotations(genes, seed=rng)
    child_rngs = spawn_rngs(rng, n_datasets)
    for d in range(n_datasets):
        ds_rng = child_rngs[d]
        name = f"dataset_{d:02d}"
        conditions = [f"{name}_c{t:02d}" for t in range(n_conditions)]
        modules: list[GeneModule] = []
        if d in relevant_idx:
            kind = ("pulse", "sustained", "sine")[d % 3]
            modules.append(
                GeneModule(
                    "query_module",
                    module_genes,
                    tuple(profile(kind, n_conditions) * 2.5),
                )
            )
        # every dataset gets its own distractor module
        n_distract = min(len(distractor_pool), module_size)
        start = (d * n_distract) % max(1, len(distractor_pool) - n_distract + 1)
        modules.append(
            GeneModule(
                f"distractor_{d}",
                tuple(distractor_pool[start : start + n_distract]),
                tuple(profile("sine", n_conditions, periods=1.0 + d % 3) * 1.8),
            )
        )
        matrix = synthesize_matrix(
            genes, conditions, modules, noise_sd=noise_sd, missing_fraction=missing_fraction, seed=ds_rng
        )
        datasets.append(
            Dataset(
                name=name,
                matrix=matrix,
                annotations=shared_annotations,
                metadata={"kind": "relevant" if d in relevant_idx else "background"},
            )
        )
    compendium = Compendium(datasets)
    truth = SpellTruth(
        module_genes=module_genes,
        query_genes=query_genes,
        relevant_datasets=tuple(ds.name for i, ds in enumerate(datasets) if i in relevant_idx),
        irrelevant_datasets=tuple(ds.name for i, ds in enumerate(datasets) if i not in relevant_idx),
    )
    return compendium, truth
