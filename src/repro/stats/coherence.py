"""Gene-group coherence: how tightly does a selection co-express?

Paper §2: views must let users "understand the context and tightness of
grouping among those genes".  This module makes tightness a number: the
mean pairwise correlation of the group, with a permutation test against
random same-sized groups from the same dataset — so ForestView can
report "this cluster is tighter than 99% of random gene sets" instead of
leaving it to the eye.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.correlation import pearson_matrix
from repro.util.errors import ValidationError
from repro.util.rng import default_rng

__all__ = ["CoherenceResult", "coherence_score", "coherence_test"]


@dataclass(frozen=True)
class CoherenceResult:
    """Observed group tightness vs a random-group null distribution."""

    score: float  # mean pairwise correlation of the group
    null_mean: float
    null_sd: float
    pvalue: float  # P[random group >= observed], with +1 smoothing
    n_permutations: int
    n_genes: int

    @property
    def zscore(self) -> float:
        if self.null_sd == 0:
            return float("inf") if self.score > self.null_mean else 0.0
        return (self.score - self.null_mean) / self.null_sd


def coherence_score(values: np.ndarray) -> float:
    """Mean pairwise Pearson correlation of the rows of ``values``.

    NaN pairs (insufficient overlap / zero variance) are excluded from
    the mean; returns NaN when no pair is scoreable.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2 or values.shape[0] < 2:
        raise ValidationError(
            f"need a 2-D array with >= 2 rows, got shape {values.shape}"
        )
    corr = pearson_matrix(values)
    iu = np.triu_indices(values.shape[0], k=1)
    pairs = corr[iu]
    pairs = pairs[~np.isnan(pairs)]
    if pairs.size == 0:
        return float("nan")
    return float(pairs.mean())


def coherence_test(
    data: np.ndarray,
    member_rows: list[int] | np.ndarray,
    *,
    n_permutations: int = 200,
    seed: int | np.random.Generator | None = None,
) -> CoherenceResult:
    """Permutation test: is the group tighter than random same-size groups?

    Parameters
    ----------
    data:
        Full (genes x conditions) dataset the group was selected from.
    member_rows:
        Row indices of the selected group (>= 2 rows).
    n_permutations:
        Random groups drawn (without replacement) from all rows.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {data.shape}")
    rows = np.asarray(member_rows, dtype=np.intp)
    if rows.size < 2:
        raise ValidationError("group needs >= 2 member rows")
    if rows.size > data.shape[0]:
        raise ValidationError("group larger than the dataset")
    if (rows < 0).any() or (rows >= data.shape[0]).any():
        raise ValidationError("member row index out of range")
    if len(set(rows.tolist())) != rows.size:
        raise ValidationError("member rows contain duplicates")
    if n_permutations < 1:
        raise ValidationError(f"n_permutations must be >= 1, got {n_permutations}")

    rng = default_rng(seed)
    observed = coherence_score(data[rows])
    if np.isnan(observed):
        raise ValidationError("group coherence is undefined (no scoreable pairs)")

    k = rows.size
    null_scores = np.empty(n_permutations)
    for i in range(n_permutations):
        sample = rng.choice(data.shape[0], size=k, replace=False)
        null_scores[i] = coherence_score(data[sample])
    null_scores = null_scores[~np.isnan(null_scores)]
    if null_scores.size == 0:
        raise ValidationError("null distribution is empty (data too sparse)")

    # +1 smoothing keeps p > 0 (standard permutation-test practice)
    n_ge = int((null_scores >= observed).sum())
    pvalue = (n_ge + 1) / (null_scores.size + 1)
    return CoherenceResult(
        score=observed,
        null_mean=float(null_scores.mean()),
        null_sd=float(null_scores.std()),
        pvalue=float(pvalue),
        n_permutations=int(null_scores.size),
        n_genes=int(k),
    )
