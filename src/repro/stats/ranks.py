"""Rank utilities plus the retrieval metrics used to score SPELL output."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["rankdata_average", "rank_of", "precision_at_k", "average_precision"]


def rankdata_average(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties sharing their average rank (like scipy's 'average')."""
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {v.shape}")
    n = v.size
    order = np.argsort(v, kind="stable")
    ranks = np.empty(n, dtype=np.float64)
    ranks[order] = np.arange(1, n + 1, dtype=np.float64)
    # average the ranks within tied groups
    sorted_vals = v[order]
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0)
    starts = np.concatenate(([0], boundaries + 1))
    ends = np.concatenate((boundaries + 1, [n]))
    for s, e in zip(starts, ends):
        if e - s > 1:
            ranks[order[s:e]] = (s + 1 + e) / 2.0
    return ranks


def rank_of(ordered_items: Sequence, item) -> int:
    """1-based position of ``item`` in a ranked list; raises KeyError if absent."""
    for idx, candidate in enumerate(ordered_items):
        if candidate == item:
            return idx + 1
    raise KeyError(f"{item!r} not present in ranking")


def precision_at_k(ordered_items: Sequence, relevant: set, k: int) -> float:
    """Fraction of the top-``k`` ranked items that are relevant."""
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    top = list(ordered_items)[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def average_precision(ordered_items: Sequence, relevant: set) -> float:
    """Mean of precision@rank over the ranks holding relevant items.

    1.0 iff every relevant item is ranked above every irrelevant one.
    Returns 0.0 when ``relevant`` is empty or never retrieved.
    """
    if not relevant:
        return 0.0
    hits = 0
    precision_sum = 0.0
    for idx, item in enumerate(ordered_items, start=1):
        if item in relevant:
            hits += 1
            precision_sum += hits / idx
    if hits == 0:
        return 0.0
    return precision_sum / len(relevant)
