"""Row-wise descriptive statistics used by dataset normalization."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["zscore_rows", "median_center_rows", "nan_summary"]


def zscore_rows(data: np.ndarray, *, ddof: int = 0) -> np.ndarray:
    """Z-score each row ignoring NaNs; zero-variance rows become all-zero.

    Returns a new array; the input is never modified.
    """
    X = np.array(data, dtype=np.float64, copy=True)
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {X.shape}")
    with np.errstate(invalid="ignore"):
        mean = np.nanmean(X, axis=1, keepdims=True)
        std = np.nanstd(X, axis=1, keepdims=True, ddof=ddof)
    centered = X - mean
    out = np.divide(centered, std, out=np.zeros_like(centered), where=std > 0)
    out[np.isnan(X)] = np.nan
    return out


def median_center_rows(data: np.ndarray) -> np.ndarray:
    """Subtract each row's NaN-ignoring median (classic PCL preprocessing)."""
    X = np.array(data, dtype=np.float64, copy=True)
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D, got shape {X.shape}")
    med = np.zeros((X.shape[0], 1))
    has_data = ~np.isnan(X).all(axis=1)
    if has_data.any():
        med[has_data, 0] = np.nanmedian(X[has_data], axis=1)
    return X - med  # all-NaN rows stay untouched (0 - NaN = NaN)


def nan_summary(data: np.ndarray) -> dict[str, float]:
    """Quick missingness report used by loaders and the data-scale bench."""
    X = np.asarray(data, dtype=np.float64)
    n_total = X.size
    n_missing = int(np.isnan(X).sum())
    return {
        "n_values": float(n_total),
        "n_missing": float(n_missing),
        "fraction_missing": (n_missing / n_total) if n_total else 0.0,
    }
