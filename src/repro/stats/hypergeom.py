"""Hypergeometric enrichment statistics, implemented in log-space.

GOLEM asks: a researcher selects ``n`` genes out of a universe of ``N``;
``K`` of the universe are annotated to a GO term and ``k`` of the
selection are.  The enrichment p-value is the probability of observing
``k`` or more annotated genes under random sampling without replacement,
i.e. the hypergeometric survival function at ``k - 1``.

Everything here is vectorized so GOLEM can score thousands of GO terms in
one call (the per-term Python loop is kept only as the benchmark baseline
in :mod:`benchmarks.bench_ablations`).
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln

from repro.util.errors import ValidationError

__all__ = [
    "log_binomial",
    "hypergeom_pmf",
    "hypergeom_sf",
    "enrichment_pvalue",
    "enrichment_pvalues",
]


def log_binomial(n: np.ndarray | int, k: np.ndarray | int) -> np.ndarray:
    """Natural log of the binomial coefficient ``C(n, k)``, elementwise.

    Entries with ``k < 0`` or ``k > n`` get ``-inf`` (coefficient zero),
    which lets callers sum pmf terms without branching.
    """
    n_arr = np.asarray(n, dtype=np.float64)
    k_arr = np.asarray(k, dtype=np.float64)
    with np.errstate(invalid="ignore"):
        out = gammaln(n_arr + 1) - gammaln(k_arr + 1) - gammaln(n_arr - k_arr + 1)
    invalid = (k_arr < 0) | (k_arr > n_arr)
    out = np.where(invalid, -np.inf, out)
    return out


def hypergeom_pmf(k, N, K, n) -> np.ndarray:
    """P[X = k] for X ~ Hypergeometric(N, K, n), elementwise/broadcast.

    Parameters mirror the classical urn model: population ``N``, successes
    in population ``K``, draws ``n``, observed successes ``k``.
    """
    k, N, K, n = np.broadcast_arrays(
        np.asarray(k, dtype=np.int64),
        np.asarray(N, dtype=np.int64),
        np.asarray(K, dtype=np.int64),
        np.asarray(n, dtype=np.int64),
    )
    _check_params(N, K, n)
    log_p = log_binomial(K, k) + log_binomial(N - K, n - k) - log_binomial(N, n)
    return np.exp(log_p)


def hypergeom_sf(k, N, K, n) -> np.ndarray:
    """P[X > k] (survival function), elementwise/broadcast.

    Computed by summing pmf terms over the support tail in log-space.
    The support is bounded by ``min(K, n)`` so the tail sum is short for
    realistic GO term sizes.
    """
    k, N, K, n = np.broadcast_arrays(
        np.asarray(k, dtype=np.int64),
        np.asarray(N, dtype=np.int64),
        np.asarray(K, dtype=np.int64),
        np.asarray(n, dtype=np.int64),
    )
    _check_params(N, K, n)
    upper = np.minimum(K, n)
    # Vectorized tail sum: enumerate j = 0 .. max_upper once, mask per-element.
    max_upper = int(upper.max(initial=0))
    j = np.arange(max_upper + 1, dtype=np.int64)  # (J,)
    # Shape bookkeeping: broadcast element dims against the support axis.
    kk = k[..., None]
    NN = N[..., None]
    KK = K[..., None]
    nn = n[..., None]
    log_terms = log_binomial(KK, j) + log_binomial(NN - KK, nn - j) - log_binomial(NN, nn)
    in_tail = (j > kk) & (j <= upper[..., None])
    terms = np.where(in_tail, np.exp(log_terms), 0.0)
    sf = terms.sum(axis=-1)
    return np.clip(sf, 0.0, 1.0)


def enrichment_pvalue(k: int, N: int, K: int, n: int) -> float:
    """One-sided enrichment p-value P[X >= k] for a single GO term.

    ``k`` annotated genes observed in a selection of ``n``, from a
    universe of ``N`` genes of which ``K`` carry the annotation.
    """
    if k == 0:
        return 1.0  # P[X >= 0] is always 1
    return float(hypergeom_sf(k - 1, N, K, n))


def enrichment_pvalues(k: np.ndarray, N: int, K: np.ndarray, n: int) -> np.ndarray:
    """Vectorized P[X >= k_i] across many GO terms sharing one universe/selection.

    Parameters
    ----------
    k:
        Per-term count of selected genes annotated to the term.
    N:
        Universe size (total annotated genes under consideration).
    K:
        Per-term count of universe genes annotated to the term.
    n:
        Selection size.
    """
    k = np.asarray(k, dtype=np.int64)
    K = np.asarray(K, dtype=np.int64)
    if k.shape != K.shape:
        raise ValidationError(f"k {k.shape} and K {K.shape} must align")
    pvals = np.ones(k.shape, dtype=np.float64)
    positive = k > 0
    if positive.any():
        pvals[positive] = hypergeom_sf(k[positive] - 1, N, K[positive], n)
    return pvals


def _check_params(N: np.ndarray, K: np.ndarray, n: np.ndarray) -> None:
    if (N < 0).any():
        raise ValidationError("population size N must be non-negative")
    if ((K < 0) | (K > N)).any():
        raise ValidationError("annotated count K must satisfy 0 <= K <= N")
    if ((n < 0) | (n > N)).any():
        raise ValidationError("selection size n must satisfy 0 <= n <= N")
