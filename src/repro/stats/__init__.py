"""Statistical substrate: hypergeometric tests, multiple-testing correction,
correlation with missing data, and rank utilities.

GOLEM's enrichment engine and SPELL's search both sit on top of this
package.  The hypergeometric implementation is written from scratch in
log-space (scipy is only used in the test suite as a cross-check).
"""

from repro.stats.hypergeom import (
    log_binomial,
    hypergeom_pmf,
    hypergeom_sf,
    enrichment_pvalue,
    enrichment_pvalues,
)
from repro.stats.correction import benjamini_hochberg, bonferroni, MultipleTestResult
from repro.stats.correlation import (
    pearson,
    pearson_matrix,
    pearson_to_vector,
    spearman,
    fisher_z,
)
from repro.stats.ranks import rankdata_average, rank_of, precision_at_k, average_precision
from repro.stats.descriptive import zscore_rows, median_center_rows, nan_summary
from repro.stats.coherence import CoherenceResult, coherence_score, coherence_test

__all__ = [
    "log_binomial",
    "hypergeom_pmf",
    "hypergeom_sf",
    "enrichment_pvalue",
    "enrichment_pvalues",
    "benjamini_hochberg",
    "bonferroni",
    "MultipleTestResult",
    "pearson",
    "pearson_matrix",
    "pearson_to_vector",
    "spearman",
    "fisher_z",
    "rankdata_average",
    "rank_of",
    "precision_at_k",
    "average_precision",
    "zscore_rows",
    "median_center_rows",
    "nan_summary",
    "CoherenceResult",
    "coherence_score",
    "coherence_test",
]
