"""Multiple-hypothesis-testing corrections used by GOLEM's enrichment engine."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["bonferroni", "benjamini_hochberg", "MultipleTestResult"]


@dataclass(frozen=True)
class MultipleTestResult:
    """Adjusted p-values plus the significance mask at the requested level."""

    pvalues: np.ndarray  # raw input p-values
    adjusted: np.ndarray  # corrected p-values / q-values, same order as input
    significant: np.ndarray  # boolean mask at ``alpha``
    alpha: float
    method: str

    @property
    def n_significant(self) -> int:
        return int(self.significant.sum())


def _validate(pvalues: np.ndarray, alpha: float) -> np.ndarray:
    p = np.asarray(pvalues, dtype=np.float64)
    if p.ndim != 1:
        raise ValidationError(f"p-values must be 1-D, got shape {p.shape}")
    if p.size and ((p < 0) | (p > 1)).any():
        raise ValidationError("p-values must lie in [0, 1]")
    if not (0 < alpha < 1):
        raise ValidationError(f"alpha must be in (0, 1), got {alpha}")
    return p


def bonferroni(pvalues, alpha: float = 0.05) -> MultipleTestResult:
    """Bonferroni correction: multiply by the number of tests, clip at 1."""
    p = _validate(pvalues, alpha)
    adjusted = np.minimum(p * max(p.size, 1), 1.0)
    return MultipleTestResult(p, adjusted, adjusted <= alpha, alpha, "bonferroni")


def benjamini_hochberg(pvalues, alpha: float = 0.05) -> MultipleTestResult:
    """Benjamini–Hochberg FDR step-up procedure.

    Returns monotone q-values; ``significant`` marks the BH rejection set,
    which by construction equals ``adjusted <= alpha``.
    """
    p = _validate(pvalues, alpha)
    m = p.size
    if m == 0:
        empty = np.empty(0, dtype=np.float64)
        return MultipleTestResult(p, empty, np.empty(0, dtype=bool), alpha, "benjamini-hochberg")
    order = np.argsort(p, kind="stable")
    ranked = p[order] * m / np.arange(1, m + 1)
    # enforce monotonicity from the largest rank downwards
    qvals_sorted = np.minimum.accumulate(ranked[::-1])[::-1]
    qvals_sorted = np.minimum(qvals_sorted, 1.0)
    adjusted = np.empty(m, dtype=np.float64)
    adjusted[order] = qvals_sorted
    return MultipleTestResult(p, adjusted, adjusted <= alpha, alpha, "benjamini-hochberg")
