"""Correlation measures with first-class missing-value support.

Microarray data is full of missing measurements, so every routine here
uses *pairwise-complete* observations: for each pair of rows, only the
conditions observed in both rows contribute.  The matrix forms are fully
vectorized (matmuls over zero-filled data + validity masks), which is the
core trick that makes SPELL's dataset weighting fast.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ValidationError

__all__ = ["pearson", "pearson_matrix", "pearson_to_vector", "spearman", "fisher_z"]

#: Pairs sharing fewer observed conditions than this get correlation NaN.
MIN_OVERLAP = 3


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation of two 1-D arrays, pairwise-complete over NaNs.

    Returns NaN when fewer than :data:`MIN_OVERLAP` conditions are
    observed in both arrays or when either side has zero variance.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValidationError(f"inputs must be 1-D and equal length, got {x.shape} vs {y.shape}")
    valid = ~(np.isnan(x) | np.isnan(y))
    if valid.sum() < MIN_OVERLAP:
        return float("nan")
    xv = x[valid]
    yv = y[valid]
    xv = xv - xv.mean()
    yv = yv - yv.mean()
    denom = np.sqrt((xv * xv).sum() * (yv * yv).sum())
    if denom == 0.0:
        return float("nan")
    return float(np.clip((xv * yv).sum() / denom, -1.0, 1.0))


def pearson_matrix(data: np.ndarray) -> np.ndarray:
    """All-pairs Pearson correlation between the rows of ``data`` (genes).

    ``data`` is (genes, conditions) and may contain NaNs.  The result is a
    symmetric (genes, genes) matrix with unit diagonal (NaN on the
    diagonal only if a row has < MIN_OVERLAP observations or no variance).

    Implementation: with validity mask ``M`` and zero-filled data ``X``,
    every pairwise-complete moment is a matmul —
    ``n_ij = M M^T``, ``s_ij = X X^T`` etc. — so no Python-level loop over
    pairs is needed.
    """
    X = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    if X.ndim != 2:
        raise ValidationError(f"data must be 2-D (genes x conditions), got shape {X.shape}")
    M = (~np.isnan(X)).astype(np.float64)
    Xz = np.where(np.isnan(X), 0.0, X)

    n = M @ M.T  # pairwise overlap counts
    sx = Xz @ M.T  # sum of x over shared conditions
    sy = M @ Xz.T  # sum of y over shared conditions (= sx.T)
    sxy = Xz @ Xz.T
    sxx = (Xz * Xz) @ M.T
    syy = M @ (Xz * Xz).T

    with np.errstate(invalid="ignore", divide="ignore"):
        cov = sxy - sx * sy / n
        varx = sxx - sx * sx / n
        vary = syy - sy * sy / n
        denom = np.sqrt(varx * vary)
        corr = cov / denom
    corr[n < MIN_OVERLAP] = np.nan
    # zero-variance rows produce 0/0 -> NaN already; clip numerical spill
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr


def pearson_to_vector(data: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Pearson correlation of every row of ``data`` against one ``query`` row.

    Same pairwise-complete semantics as :func:`pearson_matrix` but O(genes)
    memory — this is SPELL's inner loop when no index is available.
    """
    X = np.asarray(data, dtype=np.float64)
    q = np.asarray(query, dtype=np.float64)
    if X.ndim != 2 or q.ndim != 1 or X.shape[1] != q.shape[0]:
        raise ValidationError(
            f"data (genes x conditions) and query (conditions,) must align, got {X.shape} vs {q.shape}"
        )
    Mx = ~np.isnan(X)
    mq = ~np.isnan(q)
    shared = Mx & mq  # (genes, conditions)
    n = shared.sum(axis=1).astype(np.float64)

    Xz = np.where(shared, X, 0.0)
    Qz = np.where(shared, q, 0.0)  # broadcast of q masked per-row
    sx = Xz.sum(axis=1)
    sy = Qz.sum(axis=1)
    sxy = (Xz * Qz).sum(axis=1)
    sxx = (Xz * Xz).sum(axis=1)
    syy = (Qz * Qz).sum(axis=1)

    with np.errstate(invalid="ignore", divide="ignore"):
        cov = sxy - sx * sy / n
        denom = np.sqrt((sxx - sx * sx / n) * (syy - sy * sy / n))
        corr = cov / denom
    corr[n < MIN_OVERLAP] = np.nan
    return np.clip(corr, -1.0, 1.0)


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation, pairwise-complete over NaNs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValidationError(f"inputs must be 1-D and equal length, got {x.shape} vs {y.shape}")
    valid = ~(np.isnan(x) | np.isnan(y))
    if valid.sum() < MIN_OVERLAP:
        return float("nan")
    from repro.stats.ranks import rankdata_average

    return pearson(rankdata_average(x[valid]), rankdata_average(y[valid]))


def fisher_z(r: np.ndarray | float) -> np.ndarray | float:
    """Fisher z-transform ``atanh(r)``; saturates |r| = 1 to keep it finite.

    SPELL averages correlations across conditions in z-space, where they
    are approximately normal.
    """
    r_arr = np.asarray(r, dtype=np.float64)
    clipped = np.clip(r_arr, -0.999999, 0.999999)
    z = np.arctanh(clipped)
    if np.isscalar(r) or r_arr.ndim == 0:
        return float(z)
    return z
