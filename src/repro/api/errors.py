"""Unified error model for the ``repro.api`` boundary.

Everything that crosses the API boundary — over HTTP or any other
transport — fails with a stable, machine-readable error code instead of
a leaked Python exception.  :class:`ApiError` is the single error type;
:func:`as_api_error` maps the library's internal exception hierarchy
(:class:`~repro.util.errors.SearchError`,
:class:`~repro.util.errors.StoreError`, validation failures, ...) onto
it; :func:`error_payload` renders the wire form every transport returns:

.. code-block:: json

    {"api_version": "v1",
     "error": {"code": "UNKNOWN_GENE",
               "message": "...",
               "details": {"unknown_genes": ["YXX999W"]}}}

Codes are part of the v1 contract (see ROADMAP "Versioned query API"):
clients may branch on ``code`` and ``details``; ``message`` is for
humans and may change between releases.
"""

from __future__ import annotations

from repro.util.errors import (
    DataFormatError,
    DeadlineExceeded,
    RenderError,
    ReproError,
    RpcError,
    SearchError,
    StoreCorruptError,
    StoreError,
    ValidationError,
)

__all__ = [
    "API_VERSION",
    "ApiError",
    "ERROR_DESCRIPTIONS",
    "ERROR_STATUS",
    "as_api_error",
    "error_payload",
]

#: The wire-protocol version every v1 message carries.
API_VERSION = "v1"

#: Stable code -> default HTTP status.  The set of codes is append-only
#: within an api_version; removing or renaming one is a breaking change.
ERROR_STATUS: dict[str, int] = {
    "INVALID_REQUEST": 400,  # malformed field values / unknown fields
    "MALFORMED_BODY": 400,  # body is not a JSON object
    "UNSUPPORTED_VERSION": 400,  # api_version other than "v1"
    "INVALID_QUERY": 400,  # empty/duplicate gene list and kin
    "PAGE_OUT_OF_RANGE": 400,  # page >= total_pages
    "UNKNOWN_GENE": 404,  # no query gene exists in the compendium
    "UNKNOWN_DATASET": 404,  # a dataset filter names no known dataset
    "UNKNOWN_ENDPOINT": 404,  # no such route
    "UNKNOWN_COMPENDIUM": 404,  # the named tenant compendium does not exist
    "METHOD_NOT_ALLOWED": 405,  # known route, wrong HTTP verb
    "DATASET_EXISTS": 409,  # ingest would overwrite an existing dataset
    "UNAUTHORIZED": 401,  # missing/invalid bearer token (auth enabled)
    "RATE_LIMITED": 429,  # client key exceeded its token bucket
    "BODY_TOO_LARGE": 413,  # declared/observed body over the cap
    "INDEX_STALE": 503,  # persistent index unreadable / out of date
    "STORE_CORRUPT": 503,  # shard bytes failed integrity verification
    "SHARD_UNAVAILABLE": 503,  # sharded serving cannot reach the data owners
    "DEADLINE_EXCEEDED": 504,  # the request's deadline_ms budget ran out
    "INTERNAL": 500,  # anything unclassified (a bug, by definition)
}

#: Human-readable meaning of every stable code — the docs generator
#: (:mod:`repro.api.docs`) renders these, so the registry stays the
#: single source of truth for the error contract.
ERROR_DESCRIPTIONS: dict[str, str] = {
    "INVALID_REQUEST": "Malformed field values or unknown fields in the payload.",
    "MALFORMED_BODY": "The request body is not a JSON object.",
    "UNSUPPORTED_VERSION": "The payload declares an api_version other than 'v1'.",
    "INVALID_QUERY": "The gene query is empty, has duplicates, or matches nothing.",
    "PAGE_OUT_OF_RANGE": "The requested page is at or past total_pages.",
    "UNKNOWN_GENE": "No query gene exists in the searched scope.",
    "UNKNOWN_DATASET": "A dataset filter names a dataset the server does not hold.",
    "UNKNOWN_ENDPOINT": "No such route.",
    "UNKNOWN_COMPENDIUM": (
        "The request's compendium field names a tenant the catalog does not "
        "hold (details carries the known tenant names).  Requests omitting "
        "the field are served from the default compendium."
    ),
    "METHOD_NOT_ALLOWED": "Known route, wrong HTTP verb.",
    "DATASET_EXISTS": (
        "An ingest named a dataset the target compendium already serves.  "
        "Ingestion is append-only within a tenant; pick a new name.  The "
        "store is untouched."
    ),
    "UNAUTHORIZED": "Missing or invalid bearer token while auth is enabled.",
    "RATE_LIMITED": "The client key exceeded its token bucket; retry_after_ms rides in details.",
    "BODY_TOO_LARGE": "The declared or observed request body exceeds the cap.",
    "INDEX_STALE": "The persistent index is unreadable or out of date.",
    "STORE_CORRUPT": (
        "A persistent shard's bytes failed sha256 integrity verification and "
        "no bound source was available to rebuild from.  The damaged file has "
        "been quarantined (never served); details carries the affected "
        "datasets/files.  Not retriable until the store is repaired or "
        "rebuilt."
    ),
    "SHARD_UNAVAILABLE": (
        "Sharded serving could not reach any owner of the requested data "
        "(when partial results are possible they are served instead, flagged "
        "partial=true with per-shard detail)."
    ),
    "DEADLINE_EXCEEDED": (
        "The request's deadline_ms budget ran out before the answer was "
        "complete.  The server stopped work instead of blocking; nothing "
        "partial is served under this code.  Safe to retry with a larger "
        "(or no) deadline_ms."
    ),
    "INTERNAL": "Anything unclassified — a bug, by definition.",
}


class ApiError(ReproError):
    """A request failed with a stable machine-readable ``code``.

    ``details`` carries structured context (the offending genes, the
    valid page range, ...) that clients can act on without parsing the
    human-readable message.
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        details: dict | None = None,
        http_status: int | None = None,
    ) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown API error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.details = dict(details or {})
        self.http_status = ERROR_STATUS[code] if http_status is None else int(http_status)


def as_api_error(exc: BaseException) -> ApiError:
    """Classify any exception into the unified error model.

    The mapping is by exception *type* — the API layer raises precise
    :class:`ApiError` codes itself (``UNKNOWN_GENE``, ``UNKNOWN_DATASET``,
    ``PAGE_OUT_OF_RANGE``) before the generic buckets here apply.
    """
    if isinstance(exc, ApiError):
        return exc
    # before the generic buckets: DeadlineExceeded subclasses ReproError
    # only, but it must never be mistaken for a retriable transport or
    # store failure — it means the *client's* budget ran out
    if isinstance(exc, DeadlineExceeded):
        return ApiError("DEADLINE_EXCEEDED", str(exc))
    # corrupt-before-stale: StoreCorruptError subclasses StoreError but
    # means the bytes are untrustworthy, not merely out of date
    if isinstance(exc, StoreCorruptError):
        details: dict = {}
        if getattr(exc, "datasets", ()):
            details["datasets"] = list(exc.datasets)
        if getattr(exc, "files", ()):
            details["quarantined_files"] = list(exc.files)
        return ApiError("STORE_CORRUPT", str(exc), details=details or None)
    if isinstance(exc, StoreError):
        return ApiError("INDEX_STALE", str(exc))
    if isinstance(exc, RpcError):
        return ApiError("SHARD_UNAVAILABLE", str(exc))
    if isinstance(exc, SearchError):
        return ApiError("INVALID_QUERY", str(exc))
    if isinstance(exc, (ValidationError, RenderError, DataFormatError)):
        return ApiError("INVALID_REQUEST", str(exc))
    return ApiError("INTERNAL", f"{type(exc).__name__}: {exc}")


def error_payload(err: ApiError) -> dict:
    """The JSON-serializable wire form of one error."""
    body: dict = {"code": err.code, "message": err.message}
    if err.details:
        body["details"] = err.details
    return {"api_version": API_VERSION, "error": body}
