"""Declarative v1 endpoint registry — the single registration point.

Every facade used to carry its own if/elif dispatch (the app's endpoint
dict, the HTTP facade's GET-set and stream-set special cases); adding an
endpoint meant editing each one.  This table is now the only place an
endpoint is declared: :class:`~repro.api.app.ApiApp` derives its
dispatch from it, the HTTP facade derives routing *and* verb checking
from it, the sharded router inherits both unchanged, and the
``docs/api.md`` reference (:mod:`repro.api.docs`) is generated from it —
so the registry is the single source of truth for the wire contract.

Routes are keyed by endpoint *name* (``"search"``, ``"render/heatmap"``);
transports decide how names map to addresses (the HTTP facade serves
them under ``/v1/<name>``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ClusterRequest,
    ClusterResponse,
    DatasetListRequest,
    DatasetListResponse,
    ExportChunk,
    ExportRequest,
    ExportTrailer,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    RenderRequest,
    RenderResponse,
    SearchRequest,
    SearchResponse,
)

__all__ = [
    "Route",
    "ROUTES",
    "ROUTE_BY_NAME",
    "all_endpoints",
    "stream_endpoints",
    "unary_endpoints",
]


@dataclass(frozen=True)
class Route:
    """One v1 endpoint: method, request/response schema, handler, kind.

    ``kind`` is ``"unary"`` (one JSON body in, one JSON body out, served
    through ``ApiApp.handle_wire``) or ``"stream"`` (NDJSON lines,
    served through the app's streaming entry point named by
    ``handler``).  ``response_cls`` may be a tuple for streams (the line
    types, in order of appearance).  ``raw_formats`` lists ``?format=``
    values that switch the response to raw bytes instead of the JSON
    envelope.
    """

    name: str
    method: str  # "GET" | "POST"
    request_cls: type | None
    handler: str  # ApiApp method name
    response_cls: type | tuple[type, ...] | None
    kind: str = "unary"
    summary: str = ""
    raw_formats: tuple[str, ...] = ()

    @property
    def path(self) -> str:
        return f"/v1/{self.name}"


ROUTES: tuple[Route, ...] = (
    Route(
        name="search",
        method="POST",
        request_cls=SearchRequest,
        handler="search",
        response_cls=SearchResponse,
        summary="One SPELL query: ranked genes + contributing datasets, paginated.",
    ),
    Route(
        name="search/batch",
        method="POST",
        request_cls=BatchSearchRequest,
        handler="search_batch",
        response_cls=BatchSearchResponse,
        summary="Many queries answered concurrently over the shared index.",
    ),
    Route(
        name="search/export",
        method="POST",
        request_cls=ExportRequest,
        handler="export",
        response_cls=(ExportChunk, ExportTrailer),
        kind="stream",
        summary=(
            "Full ranking as chunked NDJSON: one chunk line per slice, "
            "terminated by a checksummed trailer line."
        ),
    ),
    Route(
        name="datasets",
        method="GET",
        request_cls=DatasetListRequest,
        handler="datasets",
        response_cls=DatasetListResponse,
        summary="The datasets currently served (name, shape, metadata).",
    ),
    Route(
        name="cluster",
        method="POST",
        request_cls=ClusterRequest,
        handler="cluster",
        response_cls=ClusterResponse,
        summary="Dendrogram over a search result's top genes.",
    ),
    Route(
        name="render/heatmap",
        method="POST",
        request_cls=RenderRequest,
        handler="render_heatmap",
        response_cls=RenderResponse,
        raw_formats=("ppm",),
        summary="Heatmap of a search result's top genes (PPM, base64 or raw).",
    ),
    Route(
        name="ingest",
        method="POST",
        request_cls=IngestRequest,
        handler="ingest",
        response_cls=IngestResponse,
        summary=(
            "Add one SOFT/PCL dataset to a tenant's live compendium; "
            "publication is copy-on-write, so racing queries never see a mix."
        ),
    ),
    Route(
        name="health",
        method="GET",
        request_cls=None,
        handler="health",
        response_cls=HealthResponse,
        summary="Liveness, serving counters, limits, and shard routing state.",
    ),
)

ROUTE_BY_NAME: dict[str, Route] = {route.name: route for route in ROUTES}


def unary_endpoints() -> dict[str, tuple[type | None, str]]:
    """Name -> (request type, handler) for every unary route — the
    dispatch table ``ApiApp.handle_wire`` consumes."""
    return {
        r.name: (r.request_cls, r.handler) for r in ROUTES if r.kind == "unary"
    }


def stream_endpoints() -> dict[str, type]:
    """Name -> request type for every streaming route."""
    return {r.name: r.request_cls for r in ROUTES if r.kind == "stream"}


def all_endpoints() -> list[str]:
    """Every addressable endpoint name, sorted."""
    return sorted(r.name for r in ROUTES)
