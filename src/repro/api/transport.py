"""Transport-level observability and the shared graceful-drain contract.

Both serving facades — the threaded :mod:`repro.api.http` and the
asyncio :mod:`repro.api.aio` tier — front the same
:class:`~repro.api.app.ApiApp`, and operating them side by side needs
the same two things from each:

* **Counters** (:class:`TransportStats`): open/total connections,
  keep-alive reuse, observed pipeline depth, in-flight requests, and
  how many requests were finished *during* a drain.  A facade registers
  its snapshot as a serving probe on the service
  (``service.register_serving_probe("transport", stats.snapshot)``), so
  ``/v1/health``'s append-only ``serving.transport`` field reports the
  live transport no matter which facade answered the probe.
* **The drain contract** (:meth:`TransportStats.begin_drain` +
  :meth:`TransportStats.wait_idle`): on SIGTERM / ``close()`` a facade
  first stops accepting work, then waits — bounded — for every
  in-flight request to finish writing its response.  An in-flight
  response is never dropped by a graceful shutdown; only the timeout
  (a wedged handler) abandons the wait, and the facade reports it.

The counters are plain lock-guarded integers: both facades mutate them
from whatever concurrency primitive they use (handler threads, the
event loop), and an uncontended lock costs nanoseconds next to a socket
write.
"""

from __future__ import annotations

import threading
import time

__all__ = [
    "DEFAULT_DRAIN_SECONDS",
    "TransportStats",
    "close_quietly",
    "retry_after_headers",
]


def close_quietly(lines) -> None:
    """Close a streaming line generator, swallowing cleanup failures.

    Both facades call this on every abnormal stream exit: closing fires
    the generator's ``GeneratorExit`` path (which records the failed
    export).  The cleanup itself must never mask the original transport
    error — a generator already finished, already executing on another
    thread (``ValueError``), or misbehaving during close is not worth
    losing the real exception over.
    """
    close = getattr(lines, "close", None)
    if close is None:
        return
    try:
        close()
    except Exception:  # noqa: BLE001 — cleanup must not mask the cause
        pass


def retry_after_headers(body: dict) -> dict:
    """The ``Retry-After`` header a ``RATE_LIMITED`` error body implies.

    Both facades derive the header from the error payload through this
    one function, so the 429 surface cannot drift between transports:
    whole seconds, rounded up, from the precise ``retry_after_ms`` the
    body carries for clients that parse JSON.
    """
    error = body.get("error") if isinstance(body, dict) else None
    if isinstance(error, dict) and error.get("code") == "RATE_LIMITED":
        retry_ms = error.get("details", {}).get("retry_after_ms", 1000)
        return {"Retry-After": str(max(1, -(-int(retry_ms) // 1000)))}
    return {}

#: Default bound on how long a graceful shutdown waits for in-flight
#: requests.  Generous — a warm request is microseconds of service time;
#: only a genuinely wedged handler ever gets near it.
DEFAULT_DRAIN_SECONDS = 10.0


class TransportStats:
    """Connection/request counters plus the graceful-drain rendezvous.

    Lifecycle calls a facade makes:

    * ``connection_opened()`` / ``connection_closed()`` around each
      client connection;
    * ``request_started(reused=..., depth=...)`` when a request is
      admitted to processing (``reused`` marks a keep-alive connection's
      second-or-later request, ``depth`` is how many requests the
      connection currently has parsed-but-unanswered — >1 means the
      client is pipelining);
    * ``request_finished()`` after the response bytes are written (or
      the connection died trying) — **always** paired with
      ``request_started``.

    ``begin_drain()`` flags shutdown (new work should be refused by the
    facade) and ``wait_idle(timeout)`` blocks until in-flight hits zero;
    requests finishing between the two are counted as ``drained``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self.open_connections = 0
        self.total_connections = 0
        self.keepalive_reuses = 0
        self.pipelined_max_depth = 0
        self.in_flight = 0
        self.requests_total = 0
        self.drained_requests = 0
        self.draining = False

    # ------------------------------------------------------------ lifecycle
    def connection_opened(self) -> None:
        with self._lock:
            self.open_connections += 1
            self.total_connections += 1

    def connection_closed(self) -> None:
        with self._lock:
            self.open_connections = max(0, self.open_connections - 1)

    def request_started(self, *, reused: bool = False, depth: int = 1) -> None:
        with self._lock:
            self.in_flight += 1
            self.requests_total += 1
            if reused:
                self.keepalive_reuses += 1
            if depth > self.pipelined_max_depth:
                self.pipelined_max_depth = int(depth)

    def request_finished(self) -> None:
        with self._idle:
            self.in_flight = max(0, self.in_flight - 1)
            if self.draining:
                self.drained_requests += 1
            if self.in_flight == 0:
                self._idle.notify_all()

    # ---------------------------------------------------------------- drain
    def begin_drain(self) -> int:
        """Mark shutdown started; returns the in-flight count to drain."""
        with self._lock:
            self.draining = True
            return self.in_flight

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight; True when fully drained.

        ``False`` means the timeout elapsed with work still in flight —
        the facade is allowed to shut down anyway (the bound exists so a
        wedged handler cannot hold shutdown hostage), but it should
        surface the abandonment.
        """
        deadline = time.monotonic() + max(0.0, float(timeout))
        with self._idle:
            while self.in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    # ---------------------------------------------------------------- stats
    def snapshot(self) -> dict:
        """Counter snapshot for ``/v1/health`` (``serving.transport``)."""
        with self._lock:
            return {
                "open_connections": self.open_connections,
                "total_connections": self.total_connections,
                "keepalive_reuses": self.keepalive_reuses,
                "pipelined_max_depth": self.pipelined_max_depth,
                "in_flight": self.in_flight,
                "requests_total": self.requests_total,
                "drained_requests": self.drained_requests,
                "draining": self.draining,
            }
