"""Versioned, transport-agnostic wire protocol for the query API (v1).

This module is the public contract the paper's web interface (Figure 4)
implies: one typed request/response schema that any transport — the
stdlib HTTP facade in :mod:`repro.api.http`, an in-process caller, a
test harness — speaks unchanged.  Every message type is a frozen
dataclass with strict validation plus ``to_wire()`` / ``from_wire()``
JSON round-tripping under an explicit ``api_version`` (currently
``"v1"``).

Design rules (the compatibility policy, see ROADMAP):

* ``from_wire`` rejects unknown fields and non-``v1`` versions with
  structured :class:`~repro.api.errors.ApiError`\\ s — never a bare
  ``KeyError``/``TypeError`` leaking across the boundary.
* Within ``v1``, fields are append-only and every new field has a
  default, so yesterday's client payloads keep parsing.
* ``to_wire(x).from_wire`` is the identity for every message type
  (property-tested in ``tests/test_api_protocol.py``).

The response side also owns *pagination semantics*: ``total_pages`` is
always reported and a ``page`` past the end raises ``PAGE_OUT_OF_RANGE``
(the legacy ``SpellService.search_page`` empty-page behavior survives
only behind its shim).
"""

from __future__ import annotations

import base64
import math
import re
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Mapping

from repro.api.errors import API_VERSION, ApiError
from repro.cluster.distance import METRICS
from repro.cluster.hierarchical import LINKAGES
from repro.viz.colormap import COLORMAPS

if TYPE_CHECKING:  # runtime-independent: protocol never imports repro.spell
    from repro.spell.engine import SpellResult

__all__ = [
    "API_VERSION",
    "SearchRequest",
    "BatchSearchRequest",
    "DatasetListRequest",
    "ClusterRequest",
    "RenderRequest",
    "ExportRequest",
    "IngestRequest",
    "IngestResponse",
    "SearchResponse",
    "BatchSearchResponse",
    "DatasetInfo",
    "DatasetListResponse",
    "ClusterResponse",
    "RenderResponse",
    "ExportChunk",
    "ExportTrailer",
    "HealthResponse",
    "page_count",
    "check_page",
]


# --------------------------------------------------------------------------
# wire-level helpers
# --------------------------------------------------------------------------
def _invalid(message: str, **details) -> ApiError:
    return ApiError("INVALID_REQUEST", message, details=details or None)


def _check_payload(payload, allowed: frozenset[str], kind: str) -> dict:
    """Version + unknown-field gate every ``from_wire`` runs first."""
    if not isinstance(payload, Mapping):
        raise ApiError(
            "MALFORMED_BODY", f"{kind} payload must be a JSON object, got {type(payload).__name__}"
        )
    version = payload.get("api_version", API_VERSION)
    if version != API_VERSION:
        raise ApiError(
            "UNSUPPORTED_VERSION",
            f"this server speaks api_version {API_VERSION!r}, got {version!r}",
            details={"supported": [API_VERSION]},
        )
    unknown = sorted(set(payload) - allowed - {"api_version"})
    if unknown:
        raise _invalid(f"unknown {kind} field(s): {', '.join(unknown)}", unknown_fields=unknown)
    return dict(payload)


def _str_tuple(value, name: str) -> tuple[str, ...]:
    if isinstance(value, str) or not isinstance(value, (list, tuple)):
        raise _invalid(f"{name} must be a list of strings")
    out = []
    for item in value:
        if not isinstance(item, str):
            raise _invalid(f"{name} must contain only strings, got {type(item).__name__}")
        out.append(item)
    return tuple(out)


def _int_field(value, name: str, *, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _invalid(f"{name} must be an integer, got {type(value).__name__}")
    if minimum is not None and value < minimum:
        raise _invalid(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def _bool_field(value, name: str) -> bool:
    if not isinstance(value, bool):
        raise _invalid(f"{name} must be a boolean, got {type(value).__name__}")
    return value


def _number_field(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _invalid(f"{name} must be a number, got {type(value).__name__}")
    return float(value)


def _allowed_fields(cls) -> frozenset[str]:
    return frozenset(f.name for f in fields(cls))


def _query_genes(value) -> tuple[str, ...]:
    """Shared gene-list validation for every query-shaped request
    (search, export) — one definition, so paged and streaming paths can
    never drift on what counts as a valid query."""
    genes = tuple(str(g) for g in value)
    if not genes:
        raise ApiError("INVALID_QUERY", "query must contain at least one gene")
    if len(set(genes)) != len(genes):
        raise ApiError("INVALID_QUERY", "query contains duplicate genes")
    return genes


def _optional_top_k(value) -> int | None:
    return None if value is None else _int_field(value, "top_k", minimum=1)


def _optional_deadline_ms(value) -> int | None:
    """Shared ``deadline_ms`` validation (None = no budget).

    The server turns this into a monotonic budget at admission; every
    downstream wait (shard RPC, worker pool) is clamped to it and a
    spent budget is a structured ``DEADLINE_EXCEEDED``, never an
    open-ended block.
    """
    return None if value is None else _int_field(value, "deadline_ms", minimum=1)


#: Tenant (compendium) names double as store-directory names, so the
#: grammar is filesystem-safe by construction: leading alphanumeric,
#: then up to 63 more of ``[A-Za-z0-9._-]`` — no separators, no
#: traversal, no hidden files.
_COMPENDIUM_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Ingested dataset names become source-file basenames under the
#: tenant's directory; same grammar, slightly longer budget.
_DATASET_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _optional_compendium(value) -> str | None:
    """Shared ``compendium`` validation (None = the default tenant).

    Every tenant-scoped request runs this one definition, so what
    counts as a routable tenant name can never drift between endpoints
    — and a hostile name can never reach the filesystem layer.
    """
    if value is None:
        return None
    if not isinstance(value, str):
        raise _invalid(f"compendium must be a string or null, got {type(value).__name__}")
    if not _COMPENDIUM_RE.fullmatch(value):
        raise _invalid(
            f"compendium {value!r} is not a valid tenant name (want "
            "leading alphanumeric, then [A-Za-z0-9._-], max 64 chars)"
        )
    return value


def _datasets_filter(value) -> tuple[str, ...] | None:
    """Shared ``datasets`` filter validation (None = whole compendium)."""
    if value is None:
        return None
    datasets = tuple(str(d) for d in value)
    if not datasets:
        raise _invalid("datasets filter must name at least one dataset")
    if len(set(datasets)) != len(datasets):
        raise _invalid("datasets filter contains duplicates")
    return datasets


def page_count(total: int, page_size: int) -> int:
    """Pages needed for ``total`` rows; an empty result still has 1 (empty) page."""
    return max(1, math.ceil(max(0, total) / max(1, page_size)))


def check_page(page: int, total: int, page_size: int) -> int:
    """Validate ``page`` against the ranking size; returns ``total_pages``."""
    total_pages = page_count(total, page_size)
    if page >= total_pages:
        raise ApiError(
            "PAGE_OUT_OF_RANGE",
            f"page {page} out of range: result has {total_pages} page(s) "
            f"of size {page_size} ({total} rows)",
            details={"page": page, "total_pages": total_pages, "total_rows": total},
        )
    return total_pages


# --------------------------------------------------------------------------
# requests
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class SearchRequest:
    """One SPELL query: genes in, ranked genes + datasets out.

    ``datasets`` restricts the search to the named datasets (only they
    are weighted and contribute gene scores); ``None`` searches the whole
    compendium.  ``top_k`` caps the gene ranking the client can page
    over; ``None`` means the full ranking.  ``deadline_ms`` (append-only
    v1 addition) bounds how long the server may spend answering — past
    it the request fails with ``DEADLINE_EXCEEDED`` rather than
    blocking; ``None`` keeps the server's fixed timeouts.
    ``compendium`` (append-only v1 addition) names the tenant
    compendium to search; ``None`` keeps today's behavior exactly (the
    default compendium), so pre-tenant clients parse and are answered
    unchanged.
    """

    genes: tuple[str, ...]
    top_k: int | None = None
    page: int = 0
    page_size: int = 20
    top_datasets: int = 10
    datasets: tuple[str, ...] | None = None
    use_cache: bool = True
    deadline_ms: int | None = None
    compendium: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "genes", _query_genes(self.genes))
        object.__setattr__(self, "top_k", _optional_top_k(self.top_k))
        _int_field(self.page, "page", minimum=0)
        _int_field(self.page_size, "page_size", minimum=1)
        _int_field(self.top_datasets, "top_datasets", minimum=0)
        object.__setattr__(self, "datasets", _datasets_filter(self.datasets))
        _bool_field(self.use_cache, "use_cache")
        object.__setattr__(
            self, "deadline_ms", _optional_deadline_ms(self.deadline_ms)
        )
        object.__setattr__(
            self, "compendium", _optional_compendium(self.compendium)
        )

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "genes": list(self.genes),
            "top_k": self.top_k,
            "page": self.page,
            "page_size": self.page_size,
            "top_datasets": self.top_datasets,
            "datasets": None if self.datasets is None else list(self.datasets),
            "use_cache": self.use_cache,
            "deadline_ms": self.deadline_ms,
            "compendium": self.compendium,
        }

    @classmethod
    def from_wire(cls, payload) -> "SearchRequest":
        data = _check_payload(payload, _allowed_fields(cls), "search request")
        if "genes" not in data:
            raise ApiError("INVALID_QUERY", "search request needs a 'genes' list")
        datasets = data.get("datasets")
        return cls(
            genes=_str_tuple(data["genes"], "genes"),
            top_k=None if data.get("top_k") is None else data["top_k"],
            page=data.get("page", 0),
            page_size=data.get("page_size", 20),
            top_datasets=data.get("top_datasets", 10),
            datasets=None if datasets is None else _str_tuple(datasets, "datasets"),
            use_cache=data.get("use_cache", True),
            deadline_ms=data.get("deadline_ms"),
            compendium=data.get("compendium"),
        )


@dataclass(frozen=True)
class BatchSearchRequest:
    """A batch of searches answered concurrently over the shared index.

    All-or-nothing: if any member request fails (bad page, unknown
    genes), the whole batch fails with that request's error.

    ``deadline_ms`` bounds the *whole batch*; a member search's own
    ``deadline_ms`` can only tighten it further.

    ``compendium`` (append-only v1 addition) scopes the whole batch to
    one tenant.  A member search may repeat the same tenant (or omit
    it), but a batch is never allowed to straddle tenants — mixing
    scopes in one all-or-nothing unit would make its failure semantics
    ambiguous.
    """

    searches: tuple[SearchRequest, ...]
    scheduler: str = "map"
    deadline_ms: int | None = None
    compendium: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "searches", tuple(self.searches))
        if not self.searches:
            raise _invalid("batch must contain at least one search")
        for req in self.searches:
            if not isinstance(req, SearchRequest):
                raise _invalid("batch members must be search requests")
        if self.scheduler not in ("map", "steal"):
            raise _invalid(f"scheduler must be 'map' or 'steal', got {self.scheduler!r}")
        object.__setattr__(
            self, "deadline_ms", _optional_deadline_ms(self.deadline_ms)
        )
        object.__setattr__(
            self, "compendium", _optional_compendium(self.compendium)
        )
        for req in self.searches:
            if req.compendium is not None and req.compendium != self.compendium:
                raise _invalid(
                    "batch members must not name a different compendium than "
                    f"the batch ({req.compendium!r} vs {self.compendium!r})"
                )

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "searches": [req.to_wire() for req in self.searches],
            "scheduler": self.scheduler,
            "deadline_ms": self.deadline_ms,
            "compendium": self.compendium,
        }

    @classmethod
    def from_wire(cls, payload) -> "BatchSearchRequest":
        data = _check_payload(payload, _allowed_fields(cls), "batch request")
        raw = data.get("searches")
        if not isinstance(raw, list):
            raise _invalid("batch request needs a 'searches' list")
        return cls(
            searches=tuple(SearchRequest.from_wire(item) for item in raw),
            scheduler=data.get("scheduler", "map"),
            deadline_ms=data.get("deadline_ms"),
            compendium=data.get("compendium"),
        )


@dataclass(frozen=True)
class DatasetListRequest:
    """List the datasets currently served (name, shape, metadata).

    ``compendium`` (append-only v1 addition) lists a named tenant's
    datasets; ``None`` keeps listing the default compendium, exactly as
    before.
    """

    compendium: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "compendium", _optional_compendium(self.compendium)
        )

    def to_wire(self) -> dict:
        return {"api_version": API_VERSION, "compendium": self.compendium}

    @classmethod
    def from_wire(cls, payload) -> "DatasetListRequest":
        data = _check_payload(
            payload if payload is not None else {},
            _allowed_fields(cls),
            "dataset-list request",
        )
        return cls(compendium=data.get("compendium"))


@dataclass(frozen=True)
class ClusterRequest:
    """Hierarchically cluster a search result's top genes.

    The expression values come from ``dataset`` when named, else from the
    search's top-weighted dataset.  ``top_genes`` bounds how many ranked
    genes enter the clustering.
    """

    search: SearchRequest
    top_genes: int = 30
    dataset: str | None = None
    metric: str = "correlation"
    linkage: str = "average"

    def __post_init__(self) -> None:
        if not isinstance(self.search, SearchRequest):
            raise _invalid("cluster request needs a nested search request")
        _int_field(self.top_genes, "top_genes", minimum=2)
        if self.dataset is not None and not isinstance(self.dataset, str):
            raise _invalid("dataset must be a string or null")
        if self.metric not in METRICS:
            raise _invalid(
                f"unknown metric {self.metric!r}", choices=sorted(METRICS)
            )
        if self.linkage not in LINKAGES:
            raise _invalid(
                f"unknown linkage {self.linkage!r}", choices=sorted(LINKAGES)
            )

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "search": self.search.to_wire(),
            "top_genes": self.top_genes,
            "dataset": self.dataset,
            "metric": self.metric,
            "linkage": self.linkage,
        }

    @classmethod
    def from_wire(cls, payload) -> "ClusterRequest":
        data = _check_payload(payload, _allowed_fields(cls), "cluster request")
        if "search" not in data:
            raise _invalid("cluster request needs a 'search' object")
        return cls(
            search=SearchRequest.from_wire(data["search"]),
            top_genes=data.get("top_genes", 30),
            dataset=data.get("dataset"),
            metric=data.get("metric", "correlation"),
            linkage=data.get("linkage", "average"),
        )


@dataclass(frozen=True)
class RenderRequest:
    """Render a search result's top genes as a heatmap (binary PPM).

    ``cluster=True`` reorders the rows by the dendrogram leaf order
    (correlation distance, average linkage) before rendering; otherwise
    rows follow the search ranking.
    """

    search: SearchRequest
    top_genes: int = 30
    dataset: str | None = None
    colormap: str = "red-green"
    saturation: float | None = None
    cell_width: int = 8
    cell_height: int = 8
    cluster: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.search, SearchRequest):
            raise _invalid("render request needs a nested search request")
        _int_field(self.top_genes, "top_genes", minimum=1)
        if self.dataset is not None and not isinstance(self.dataset, str):
            raise _invalid("dataset must be a string or null")
        if self.colormap not in COLORMAPS:
            raise _invalid(
                f"unknown colormap {self.colormap!r}", choices=sorted(COLORMAPS)
            )
        if self.saturation is not None:
            saturation = _number_field(self.saturation, "saturation")
            if saturation <= 0:
                raise _invalid(f"saturation must be positive, got {saturation}")
            object.__setattr__(self, "saturation", saturation)
        _int_field(self.cell_width, "cell_width", minimum=1)
        _int_field(self.cell_height, "cell_height", minimum=1)
        _bool_field(self.cluster, "cluster")

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "search": self.search.to_wire(),
            "top_genes": self.top_genes,
            "dataset": self.dataset,
            "colormap": self.colormap,
            "saturation": self.saturation,
            "cell_width": self.cell_width,
            "cell_height": self.cell_height,
            "cluster": self.cluster,
        }

    @classmethod
    def from_wire(cls, payload) -> "RenderRequest":
        data = _check_payload(payload, _allowed_fields(cls), "render request")
        if "search" not in data:
            raise _invalid("render request needs a 'search' object")
        return cls(
            search=SearchRequest.from_wire(data["search"]),
            top_genes=data.get("top_genes", 30),
            dataset=data.get("dataset"),
            colormap=data.get("colormap", "red-green"),
            saturation=data.get("saturation"),
            cell_width=data.get("cell_width", 8),
            cell_height=data.get("cell_height", 8),
            cluster=data.get("cluster", False),
        )


@dataclass(frozen=True)
class ExportRequest:
    """Stream a search's *entire* gene ranking as fixed-size chunks.

    The deep-export counterpart of :class:`SearchRequest`: instead of a
    ``page``/``page_size`` window, the server walks the full ranking
    (capped by ``top_k`` when given) in ``chunk_size`` slices and
    streams one :class:`ExportChunk` per slice, terminated by one
    :class:`ExportTrailer`.  Reassembled, the chunks' ``gene_rows`` are
    bit-identical to the concatenation of every page the equivalent
    paged search would have served.

    ``resume_offset`` (append-only v1 addition) restarts an interrupted
    export at a chunk boundary: the stream begins at the chunk whose
    first row has that global offset, and its chunk lines are
    bit-identical to the same-offset lines of an uninterrupted export
    of the same request.  It must be a multiple of ``chunk_size`` —
    resumption is by chunk, never mid-chunk, so a client retries from
    the offset after the last chunk it fully received.

    ``compendium`` (append-only v1 addition) exports from the named
    tenant's compendium; ``None`` exports from the default one.
    """

    genes: tuple[str, ...]
    top_k: int | None = None
    chunk_size: int = 500
    top_datasets: int = 10
    datasets: tuple[str, ...] | None = None
    use_cache: bool = True
    deadline_ms: int | None = None
    resume_offset: int = 0
    compendium: str | None = None

    def __post_init__(self) -> None:
        # identical field discipline to SearchRequest (shared helpers):
        # the export of a query and the pages of that query must agree
        # on what a valid query even is
        object.__setattr__(self, "genes", _query_genes(self.genes))
        object.__setattr__(self, "top_k", _optional_top_k(self.top_k))
        _int_field(self.chunk_size, "chunk_size", minimum=1)
        _int_field(self.top_datasets, "top_datasets", minimum=0)
        object.__setattr__(self, "datasets", _datasets_filter(self.datasets))
        _bool_field(self.use_cache, "use_cache")
        object.__setattr__(
            self, "deadline_ms", _optional_deadline_ms(self.deadline_ms)
        )
        _int_field(self.resume_offset, "resume_offset", minimum=0)
        if self.resume_offset % self.chunk_size != 0:
            raise _invalid(
                f"resume_offset {self.resume_offset} is not a chunk boundary "
                f"(chunk_size {self.chunk_size}) — resume from the offset "
                "after the last fully-received chunk"
            )
        object.__setattr__(
            self, "compendium", _optional_compendium(self.compendium)
        )

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "genes": list(self.genes),
            "top_k": self.top_k,
            "chunk_size": self.chunk_size,
            "top_datasets": self.top_datasets,
            "datasets": None if self.datasets is None else list(self.datasets),
            "use_cache": self.use_cache,
            "deadline_ms": self.deadline_ms,
            "resume_offset": self.resume_offset,
            "compendium": self.compendium,
        }

    @classmethod
    def from_wire(cls, payload) -> "ExportRequest":
        data = _check_payload(payload, _allowed_fields(cls), "export request")
        if "genes" not in data:
            raise ApiError("INVALID_QUERY", "export request needs a 'genes' list")
        datasets = data.get("datasets")
        return cls(
            genes=_str_tuple(data["genes"], "genes"),
            top_k=None if data.get("top_k") is None else data["top_k"],
            chunk_size=data.get("chunk_size", 500),
            top_datasets=data.get("top_datasets", 10),
            datasets=None if datasets is None else _str_tuple(datasets, "datasets"),
            use_cache=data.get("use_cache", True),
            deadline_ms=data.get("deadline_ms"),
            resume_offset=data.get("resume_offset", 0),
            compendium=data.get("compendium"),
        )


@dataclass(frozen=True)
class IngestRequest:
    """Add one SOFT/PCL dataset to a tenant's live compendium.

    ``content`` is the complete source text (a GEO series-matrix SOFT
    file or a PCL table) and is validated *in full* before any store
    mutation — a malformed submission is a structured 4xx and the
    tenant's store is untouched.  ``name`` is the dataset's identity
    within the compendium (append-only: a duplicate is
    ``DATASET_EXISTS``, never an overwrite).  ``compendium=None``
    ingests into the default tenant.

    Publication is copy-on-write end to end: the index syncs through
    ``IndexStore.sync``'s incremental manifest-first path, so queries
    racing an ingest see either the prior or the fully-published
    compendium fingerprint — never a mix.
    """

    name: str
    format: str
    content: str
    compendium: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not _DATASET_NAME_RE.fullmatch(self.name):
            raise _invalid(
                f"name {self.name!r} is not a valid dataset name (want "
                "leading alphanumeric, then [A-Za-z0-9._-], max 128 chars)"
            )
        if self.format not in ("soft", "pcl"):
            raise _invalid(
                f"format must be 'soft' or 'pcl', got {self.format!r}",
                choices=["pcl", "soft"],
            )
        if not isinstance(self.content, str) or not self.content:
            raise _invalid("content must be a non-empty string")
        object.__setattr__(
            self, "compendium", _optional_compendium(self.compendium)
        )

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "name": self.name,
            "format": self.format,
            "content": self.content,
            "compendium": self.compendium,
        }

    @classmethod
    def from_wire(cls, payload) -> "IngestRequest":
        data = _check_payload(payload, _allowed_fields(cls), "ingest request")
        for required in ("name", "format", "content"):
            if required not in data:
                raise _invalid(f"ingest request needs a {required!r} field")
        return cls(
            name=data["name"],
            format=str(data["format"]),
            content=data["content"],
            compendium=data.get("compendium"),
        )


# --------------------------------------------------------------------------
# responses
# --------------------------------------------------------------------------
def _row_tuple(value, name: str, converters) -> tuple:
    if not isinstance(value, (list, tuple)) or len(value) != len(converters):
        raise _invalid(f"{name} rows must have {len(converters)} columns")
    try:
        return tuple(conv(item) for conv, item in zip(converters, value))
    except (TypeError, ValueError) as exc:
        raise _invalid(f"bad {name} row: {exc}") from exc


@dataclass(frozen=True)
class SearchResponse:
    """One page of ranked output (the Figure 4 web table, as data).

    ``gene_rows`` are ``(rank, gene_id, score)`` with 1-based global
    ranks; ``dataset_rows`` are ``(rank, dataset, weight)``.
    ``total_genes`` counts the full candidate ranking while
    ``total_pages`` reflects what this request can actually page over
    (``top_k`` caps it).

    ``partial`` / ``shards`` are append-only v1 additions for the
    sharded serving tier: ``partial=True`` flags a ranking served while
    some dataset owners were unreachable (never silently — ``shards``
    carries the per-node detail, including which datasets were skipped);
    single-node servers always answer ``partial=False`` with an empty
    ``shards``, so old clients see byte-compatible payloads.
    """

    query: tuple[str, ...]
    query_used: tuple[str, ...]
    query_missing: tuple[str, ...]
    page: int
    page_size: int
    total_genes: int
    total_pages: int
    gene_rows: tuple[tuple[int, str, float], ...]
    dataset_rows: tuple[tuple[int, str, float], ...]
    elapsed_seconds: float
    partial: bool = False
    shards: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _bool_field(self.partial, "partial")
        if not isinstance(self.shards, Mapping):
            raise _invalid(f"shards must be an object, got {type(self.shards).__name__}")

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "query": list(self.query),
            "query_used": list(self.query_used),
            "query_missing": list(self.query_missing),
            "page": self.page,
            "page_size": self.page_size,
            "total_genes": self.total_genes,
            "total_pages": self.total_pages,
            "gene_rows": [list(row) for row in self.gene_rows],
            "dataset_rows": [list(row) for row in self.dataset_rows],
            "elapsed_seconds": self.elapsed_seconds,
            "partial": self.partial,
            "shards": dict(self.shards),
        }

    @classmethod
    def from_wire(cls, payload) -> "SearchResponse":
        data = _check_payload(payload, _allowed_fields(cls), "search response")
        gene_conv = (int, str, float)
        return cls(
            query=_str_tuple(data.get("query", []), "query"),
            query_used=_str_tuple(data.get("query_used", []), "query_used"),
            query_missing=_str_tuple(data.get("query_missing", []), "query_missing"),
            page=_int_field(data.get("page", 0), "page", minimum=0),
            page_size=_int_field(data.get("page_size", 1), "page_size", minimum=1),
            total_genes=_int_field(data.get("total_genes", 0), "total_genes", minimum=0),
            total_pages=_int_field(data.get("total_pages", 1), "total_pages", minimum=0),
            gene_rows=tuple(
                _row_tuple(row, "gene", gene_conv) for row in data.get("gene_rows", [])
            ),
            dataset_rows=tuple(
                _row_tuple(row, "dataset", gene_conv) for row in data.get("dataset_rows", [])
            ),
            elapsed_seconds=_number_field(data.get("elapsed_seconds", 0.0), "elapsed_seconds"),
            partial=data.get("partial", False),
            shards=data.get("shards", {}),
        )

    @classmethod
    def from_result(
        cls,
        result: "SpellResult",
        request: SearchRequest,
        *,
        elapsed_seconds: float,
        strict: bool = True,
        partial: bool = False,
        shards: dict | None = None,
    ) -> "SearchResponse":
        """Paginate a :class:`~repro.spell.engine.SpellResult` per ``request``.

        This is where page semantics live for every transport: the
        pageable total is ``total_genes`` capped by the request's
        ``top_k``; ``strict=True`` raises ``PAGE_OUT_OF_RANGE`` past the
        end (``strict=False`` keeps the legacy empty-page behavior the
        ``SpellService.search_page`` shim preserves).
        """
        pageable = result.total_genes
        if request.top_k is not None:
            pageable = min(pageable, request.top_k)
        if strict:
            total_pages = check_page(request.page, pageable, request.page_size)
        else:
            total_pages = page_count(pageable, request.page_size)
        start = request.page * request.page_size
        stop = min(start + request.page_size, pageable)
        gene_rows = tuple(
            (start + i + 1, g.gene_id, g.score)
            for i, g in enumerate(result.genes[start:stop])
        )
        dataset_rows = tuple(
            (i + 1, d.name, d.weight)
            for i, d in enumerate(result.datasets[: request.top_datasets])
        )
        return cls(
            query=result.query,
            query_used=result.query_used,
            query_missing=result.query_missing,
            page=request.page,
            page_size=request.page_size,
            total_genes=result.total_genes,
            total_pages=total_pages,
            gene_rows=gene_rows,
            dataset_rows=dataset_rows,
            elapsed_seconds=float(elapsed_seconds),
            partial=partial,
            shards=dict(shards or {}),
        )


@dataclass(frozen=True)
class BatchSearchResponse:
    """Per-query pages plus aggregate timing for one batch."""

    results: tuple[SearchResponse, ...]
    total_seconds: float
    n_workers: int
    cache_hits: int
    cache_misses: int

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput; ``0.0`` when unmeasurable.

        A batch that completed faster than the clock's resolution (or an
        empty result set) reports ``0.0`` rather than ``inf`` — "no
        measurable rate", which downstream arithmetic and JSON encoding
        both survive.
        """
        if self.total_seconds <= 0.0 or not self.results:
            return 0.0
        return len(self.results) / self.total_seconds

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "results": [r.to_wire() for r in self.results],
            "total_seconds": self.total_seconds,
            "n_workers": self.n_workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    @classmethod
    def from_wire(cls, payload) -> "BatchSearchResponse":
        data = _check_payload(payload, _allowed_fields(cls), "batch response")
        raw = data.get("results")
        if not isinstance(raw, list):
            raise _invalid("batch response needs a 'results' list")
        return cls(
            results=tuple(SearchResponse.from_wire(item) for item in raw),
            total_seconds=_number_field(data.get("total_seconds", 0.0), "total_seconds"),
            n_workers=_int_field(data.get("n_workers", 1), "n_workers", minimum=1),
            cache_hits=_int_field(data.get("cache_hits", 0), "cache_hits", minimum=0),
            cache_misses=_int_field(data.get("cache_misses", 0), "cache_misses", minimum=0),
        )


def _check_kind(data: dict, expected: str, kind: str) -> None:
    """NDJSON stream lines are self-describing via ``kind``; a mismatch
    (a trailer parsed as a chunk, or vice versa) is a structured error,
    never a silently misread line."""
    found = data.pop("kind", expected)
    if found != expected:
        raise _invalid(f"{kind} has kind {found!r}, expected {expected!r}")


@dataclass(frozen=True)
class ExportChunk:
    """One NDJSON line of a streaming export: a slice of the ranking.

    Self-describing: every chunk carries ``api_version``, its ``kind``
    (``"chunk"``), and the global ``offset`` of its first row, so a
    consumer can detect gaps or reordering without trusting transport
    framing.  ``gene_rows`` are ``(rank, gene_id, score)`` with 1-based
    global ranks, exactly as the paged :class:`SearchResponse` serves
    them.
    """

    offset: int
    gene_rows: tuple[tuple[int, str, float], ...]

    KIND = "chunk"

    def __post_init__(self) -> None:
        _int_field(self.offset, "offset", minimum=0)

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "offset": self.offset,
            "gene_rows": [list(row) for row in self.gene_rows],
        }

    @classmethod
    def from_wire(cls, payload) -> "ExportChunk":
        data = _check_payload(
            payload, _allowed_fields(cls) | {"kind"}, "export chunk"
        )
        _check_kind(data, cls.KIND, "export chunk")
        gene_conv = (int, str, float)
        return cls(
            offset=_int_field(data.get("offset", 0), "offset", minimum=0),
            gene_rows=tuple(
                _row_tuple(row, "gene", gene_conv) for row in data.get("gene_rows", [])
            ),
        )


@dataclass(frozen=True)
class ExportTrailer:
    """The final NDJSON line of a streaming export: totals + integrity.

    ``status`` is ``"ok"`` or ``"error"``; a mid-stream failure streams
    as an *error trailer* (``error`` carrying the standard
    ``{code, message, details}`` object) rather than a silently
    truncated response — a consumer that never sees a trailer knows the
    stream was cut.  ``checksum`` is ``sha256:<hex>`` over the exact
    bytes of every chunk line (each including its terminating newline)
    in stream order, so reassembly can be verified without re-parsing;
    ``total_rows`` / ``n_chunks`` count what was actually streamed and
    ``total_genes`` reports the full candidate ranking size.  Query
    attribution and the ranked ``dataset_rows`` ride here (once per
    stream, not once per chunk).

    ``resume_offset`` (append-only v1 addition) echoes the request's
    resume point: checksum/``n_chunks``/``total_rows`` cover only the
    chunk lines *this* stream carried, starting at that offset — a
    resuming client verifies each stream's trailer independently and
    splices streams at chunk boundaries.
    """

    status: str
    total_genes: int = 0
    total_rows: int = 0
    n_chunks: int = 0
    checksum: str = ""
    query: tuple[str, ...] = ()
    query_used: tuple[str, ...] = ()
    query_missing: tuple[str, ...] = ()
    dataset_rows: tuple[tuple[int, str, float], ...] = ()
    elapsed_seconds: float = 0.0
    error: dict | None = None
    resume_offset: int = 0

    KIND = "trailer"

    def __post_init__(self) -> None:
        if self.status not in ("ok", "error"):
            raise _invalid(f"trailer status must be 'ok' or 'error', got {self.status!r}")
        if (self.error is not None) != (self.status == "error"):
            raise _invalid("trailer error object must accompany status 'error' only")
        _int_field(self.total_genes, "total_genes", minimum=0)
        _int_field(self.total_rows, "total_rows", minimum=0)
        _int_field(self.n_chunks, "n_chunks", minimum=0)
        _int_field(self.resume_offset, "resume_offset", minimum=0)

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "kind": self.KIND,
            "status": self.status,
            "total_genes": self.total_genes,
            "total_rows": self.total_rows,
            "n_chunks": self.n_chunks,
            "checksum": self.checksum,
            "query": list(self.query),
            "query_used": list(self.query_used),
            "query_missing": list(self.query_missing),
            "dataset_rows": [list(row) for row in self.dataset_rows],
            "elapsed_seconds": self.elapsed_seconds,
            "error": None if self.error is None else dict(self.error),
            "resume_offset": self.resume_offset,
        }

    @classmethod
    def from_wire(cls, payload) -> "ExportTrailer":
        data = _check_payload(
            payload, _allowed_fields(cls) | {"kind"}, "export trailer"
        )
        _check_kind(data, cls.KIND, "export trailer")
        error = data.get("error")
        if error is not None and not isinstance(error, Mapping):
            raise _invalid("trailer error must be an object or null")
        gene_conv = (int, str, float)
        return cls(
            status=str(data.get("status", "")),
            total_genes=_int_field(data.get("total_genes", 0), "total_genes", minimum=0),
            total_rows=_int_field(data.get("total_rows", 0), "total_rows", minimum=0),
            n_chunks=_int_field(data.get("n_chunks", 0), "n_chunks", minimum=0),
            checksum=str(data.get("checksum", "")),
            query=_str_tuple(data.get("query", []), "query"),
            query_used=_str_tuple(data.get("query_used", []), "query_used"),
            query_missing=_str_tuple(data.get("query_missing", []), "query_missing"),
            dataset_rows=tuple(
                _row_tuple(row, "dataset", gene_conv)
                for row in data.get("dataset_rows", [])
            ),
            elapsed_seconds=_number_field(
                data.get("elapsed_seconds", 0.0), "elapsed_seconds"
            ),
            error=None if error is None else dict(error),
            resume_offset=_int_field(
                data.get("resume_offset", 0), "resume_offset", minimum=0
            ),
        )


@dataclass(frozen=True)
class DatasetInfo:
    """Shape + metadata for one served dataset.

    ``fingerprint`` / ``tier`` are append-only v1 additions:
    ``fingerprint`` is the dataset's durable content hash (stable across
    processes and restarts — the ingest path diffs catalogs on it) and
    ``tier`` is where the persistent store holds the shard
    (``"resident"`` mmap-served or ``"cold"`` compressed archive;
    in-memory-only serving reports ``"resident"``).
    """

    name: str
    n_genes: int
    n_conditions: int
    metadata: dict = field(default_factory=dict)
    fingerprint: str = ""
    tier: str = "resident"

    def to_wire(self) -> dict:
        return {
            "name": self.name,
            "n_genes": self.n_genes,
            "n_conditions": self.n_conditions,
            "metadata": dict(self.metadata),
            "fingerprint": self.fingerprint,
            "tier": self.tier,
        }

    @classmethod
    def from_wire(cls, payload) -> "DatasetInfo":
        if not isinstance(payload, Mapping):
            raise _invalid("dataset info must be an object")
        meta = payload.get("metadata", {})
        if not isinstance(meta, Mapping):
            raise _invalid("dataset metadata must be an object")
        return cls(
            name=str(payload.get("name", "")),
            n_genes=_int_field(payload.get("n_genes", 0), "n_genes", minimum=0),
            n_conditions=_int_field(payload.get("n_conditions", 0), "n_conditions", minimum=0),
            metadata=dict(meta),
            fingerprint=str(payload.get("fingerprint", "")),
            tier=str(payload.get("tier", "resident")),
        )


@dataclass(frozen=True)
class DatasetListResponse:
    datasets: tuple[DatasetInfo, ...]

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "datasets": [d.to_wire() for d in self.datasets],
        }

    @classmethod
    def from_wire(cls, payload) -> "DatasetListResponse":
        data = _check_payload(payload, _allowed_fields(cls), "dataset-list response")
        raw = data.get("datasets")
        if not isinstance(raw, list):
            raise _invalid("dataset-list response needs a 'datasets' list")
        return cls(datasets=tuple(DatasetInfo.from_wire(item) for item in raw))


@dataclass(frozen=True)
class IngestResponse:
    """Acknowledgement of one published ingest.

    ``fingerprint`` is the ingested dataset's durable content hash;
    ``compendium_fingerprint`` is the tenant compendium's hash *after*
    publication — the token the concurrency invariant is stated in
    (racing queries observe either the prior or exactly this value).
    ``datasets`` counts the tenant's datasets after the ingest.
    """

    compendium: str
    dataset: str
    n_genes: int
    n_conditions: int
    fingerprint: str
    compendium_fingerprint: str
    datasets: int
    elapsed_seconds: float

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "compendium": self.compendium,
            "dataset": self.dataset,
            "n_genes": self.n_genes,
            "n_conditions": self.n_conditions,
            "fingerprint": self.fingerprint,
            "compendium_fingerprint": self.compendium_fingerprint,
            "datasets": self.datasets,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_wire(cls, payload) -> "IngestResponse":
        data = _check_payload(payload, _allowed_fields(cls), "ingest response")
        return cls(
            compendium=str(data.get("compendium", "")),
            dataset=str(data.get("dataset", "")),
            n_genes=_int_field(data.get("n_genes", 0), "n_genes", minimum=0),
            n_conditions=_int_field(
                data.get("n_conditions", 0), "n_conditions", minimum=0
            ),
            fingerprint=str(data.get("fingerprint", "")),
            compendium_fingerprint=str(data.get("compendium_fingerprint", "")),
            datasets=_int_field(data.get("datasets", 0), "datasets", minimum=0),
            elapsed_seconds=_number_field(
                data.get("elapsed_seconds", 0.0), "elapsed_seconds"
            ),
        )


@dataclass(frozen=True)
class ClusterResponse:
    """Dendrogram over the clustered genes.

    ``genes`` lists the clustered gene ids in left-to-right leaf order;
    ``merges`` are scipy-style records ``(left, right, height, size)``
    with leaves ``0..n-1`` numbered by *ranking* order (the row order the
    expression submatrix was clustered in).
    """

    genes: tuple[str, ...]
    dataset: str
    metric: str
    linkage: str
    merges: tuple[tuple[int, int, float, int], ...]
    elapsed_seconds: float

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "genes": list(self.genes),
            "dataset": self.dataset,
            "metric": self.metric,
            "linkage": self.linkage,
            "merges": [list(m) for m in self.merges],
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_wire(cls, payload) -> "ClusterResponse":
        data = _check_payload(payload, _allowed_fields(cls), "cluster response")
        merge_conv = (int, int, float, int)
        return cls(
            genes=_str_tuple(data.get("genes", []), "genes"),
            dataset=str(data.get("dataset", "")),
            metric=str(data.get("metric", "")),
            linkage=str(data.get("linkage", "")),
            merges=tuple(
                _row_tuple(row, "merge", merge_conv) for row in data.get("merges", [])
            ),
            elapsed_seconds=_number_field(data.get("elapsed_seconds", 0.0), "elapsed_seconds"),
        )


@dataclass(frozen=True)
class RenderResponse:
    """A rendered heatmap: binary PPM bytes plus its row/column labels."""

    width: int
    height: int
    dataset: str
    colormap: str
    genes: tuple[str, ...]  # heatmap rows, top to bottom
    ppm: bytes
    elapsed_seconds: float

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "width": self.width,
            "height": self.height,
            "dataset": self.dataset,
            "colormap": self.colormap,
            "genes": list(self.genes),
            "ppm_base64": base64.b64encode(self.ppm).decode("ascii"),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_wire(cls, payload) -> "RenderResponse":
        allowed = (_allowed_fields(cls) - {"ppm"}) | {"ppm_base64"}
        data = _check_payload(payload, allowed, "render response")
        try:
            ppm = base64.b64decode(data.get("ppm_base64", ""), validate=True)
        except (ValueError, TypeError) as exc:
            raise _invalid(f"ppm_base64 is not valid base64: {exc}") from exc
        return cls(
            width=_int_field(data.get("width", 0), "width", minimum=0),
            height=_int_field(data.get("height", 0), "height", minimum=0),
            dataset=str(data.get("dataset", "")),
            colormap=str(data.get("colormap", "")),
            genes=_str_tuple(data.get("genes", []), "genes"),
            ppm=ppm,
            elapsed_seconds=_number_field(data.get("elapsed_seconds", 0.0), "elapsed_seconds"),
        )


@dataclass(frozen=True)
class HealthResponse:
    """Liveness plus the per-endpoint serving counters ``ApiApp`` keeps.

    ``cache`` carries the result cache's full counter set (hits, misses,
    evictions, plus the admission policy's ``min_cost`` / ``admitted`` /
    ``rejected`` and the hottest entry's hit count); ``serving``
    describes the batch topology (thread workers, process workers, and
    the worker pool's batch/resync counters).  Both are free-form
    objects on the wire so new counters stay append-only.
    """

    status: str
    uptime_seconds: float
    datasets: int
    genes: int
    index_bytes: int
    query_count: int
    cache: dict
    endpoints: dict  # endpoint -> {count, errors, total_seconds, mean_seconds}
    serving: dict = field(default_factory=dict)  # appended in-version: default keeps v1 parsing
    limits: dict = field(default_factory=dict)  # gate config + rejection counters
    shards: dict = field(default_factory=dict)  # sharded serving: per-node liveness + routing
    storage: dict = field(default_factory=dict)  # store tiers: resident/cold/promotions/quarantined
    tenants: dict = field(default_factory=dict)  # multi-tenant catalog: per-tenant rollup

    def to_wire(self) -> dict:
        return {
            "api_version": API_VERSION,
            "status": self.status,
            "uptime_seconds": self.uptime_seconds,
            "datasets": self.datasets,
            "genes": self.genes,
            "index_bytes": self.index_bytes,
            "query_count": self.query_count,
            "cache": dict(self.cache),
            "endpoints": {k: dict(v) for k, v in self.endpoints.items()},
            "serving": dict(self.serving),
            "limits": dict(self.limits),
            "shards": dict(self.shards),
            "storage": dict(self.storage),
            "tenants": {k: dict(v) for k, v in self.tenants.items()},
        }

    @classmethod
    def from_wire(cls, payload) -> "HealthResponse":
        data = _check_payload(payload, _allowed_fields(cls), "health response")
        cache = data.get("cache", {})
        endpoints = data.get("endpoints", {})
        serving = data.get("serving", {})
        limits = data.get("limits", {})
        shards = data.get("shards", {})
        storage = data.get("storage", {})
        tenants = data.get("tenants", {})
        if not isinstance(cache, Mapping) or not isinstance(endpoints, Mapping):
            raise _invalid("health cache/endpoints must be objects")
        if not isinstance(serving, Mapping):
            raise _invalid("health serving must be an object")
        if not isinstance(limits, Mapping):
            raise _invalid("health limits must be an object")
        if not isinstance(shards, Mapping):
            raise _invalid("health shards must be an object")
        if not isinstance(storage, Mapping):
            raise _invalid("health storage must be an object")
        if not isinstance(tenants, Mapping):
            raise _invalid("health tenants must be an object")
        return cls(
            status=str(data.get("status", "")),
            uptime_seconds=_number_field(data.get("uptime_seconds", 0.0), "uptime_seconds"),
            datasets=_int_field(data.get("datasets", 0), "datasets", minimum=0),
            genes=_int_field(data.get("genes", 0), "genes", minimum=0),
            index_bytes=_int_field(data.get("index_bytes", 0), "index_bytes", minimum=0),
            query_count=_int_field(data.get("query_count", 0), "query_count", minimum=0),
            cache=dict(cache),
            endpoints={str(k): dict(v) for k, v in endpoints.items()},
            serving=dict(serving),
            limits=dict(limits),
            shards=dict(shards),
            storage=dict(storage),
            tenants={str(k): dict(v) for k, v in tenants.items()},
        )
