"""Stdlib-only HTTP facade over :class:`~repro.api.app.ApiApp` (v1).

The paper's deployed SPELL is a *web* query interface over a pre-built
compendium; this module is that deployment surface, built entirely on
``http.server`` (no new dependencies).  A
:class:`~http.server.ThreadingHTTPServer` serves concurrent requests
against the shared memory-mapped index — NumPy releases the GIL in the
scoring matmuls, so concurrent searches genuinely overlap.

Routes (all JSON in/out; errors are structured codes, never raw 500s):

==========================  ======  =========================================
``/v1/search``              POST    one SPELL query, paginated
``/v1/search/batch``        POST    many queries, answered concurrently
``/v1/search/export``       POST    full ranking as a chunked NDJSON stream
``/v1/datasets``            GET     served datasets (name, shape, metadata)
``/v1/cluster``             POST    dendrogram over a result's top genes
``/v1/render/heatmap``      POST    heatmap PPM (``?format=ppm`` for raw bytes)
``/v1/health``              GET     liveness + per-endpoint serving counters
==========================  ======  =========================================

``/v1/search/export`` answers ``Transfer-Encoding: chunked`` with
``application/x-ndjson``: one JSON line per ranking slice, terminated
by a trailer line carrying totals and a content checksum (a mid-stream
failure streams a structured *error* trailer, never a silent cut).

**Hardening** (:mod:`repro.api.limits`, enforced in
:meth:`repro.api.app.ApiApp.handle_wire` so every transport inherits
it; this facade additionally runs the gate *before reading the body*,
marking the context admitted so no token is spent twice): optional
bearer-token auth (``--auth-token-file``; 401), per-client token-bucket
rate limiting (``--rate-limit``/``--rate-burst``; 429 with
``retry_after_ms`` and a ``Retry-After`` header), and a request body cap
(``--max-body-bytes``; 413) checked against ``Content-Length`` *before*
the body is read — a hostile 2 GB header never becomes an allocation,
and a rejected client never costs a body read.  The rate-limit key is
the peer address; an ``X-Client-Id`` header is honored only on
*authenticated* requests (an anonymous spoofable key would mint a
fresh bucket per request and void the limit).

Run a demo server over a synthetic compendium (the repo ships no
proprietary data) with a persistent index store::

    python -m repro.api.http --port 8080 --store-dir /tmp/spell-index

The CLI prints a ready-to-curl example query against the planted module.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.api.app import ApiApp, all_endpoints
from repro.api.errors import ApiError, as_api_error, error_payload
from repro.api.limits import DEFAULT_MAX_BODY_BYTES, RequestContext, RequestGate
from repro.api.routes import ROUTE_BY_NAME, Route
from repro.api.transport import (
    DEFAULT_DRAIN_SECONDS,
    TransportStats,
    close_quietly as _close_quietly,
    retry_after_headers,
)

__all__ = ["ApiHTTPServer", "serve", "main"]

#: Back-compat alias; the live cap is the app gate's ``max_body_bytes``.
MAX_BODY_BYTES = DEFAULT_MAX_BODY_BYTES

_PREFIX = "/v1/"


class ApiHTTPServer(ThreadingHTTPServer):
    """One listening socket, one :class:`ApiApp`, a thread per request."""

    daemon_threads = True
    allow_reuse_address = True
    # socketserver's default accept backlog of 5 makes reconnecting
    # clients hit SYN-retransmit stalls under mild concurrency
    request_queue_size = 128
    # idle keep-alive handler threads must not hold server_close hostage;
    # the drain contract (close()) waits on *in-flight requests* instead
    block_on_close = False

    def __init__(
        self,
        address: tuple[str, int],
        app: ApiApp,
        *,
        quiet: bool = True,
        drain_seconds: float = DEFAULT_DRAIN_SECONDS,
        transport_label: str = "http",
    ):
        super().__init__(address, _Handler)
        self.app = app
        self.quiet = quiet
        self.drain_seconds = float(drain_seconds)
        self.stats = TransportStats()
        self._closed = False
        register = getattr(app.service, "register_transport_stats", None)
        if callable(register):
            register(str(transport_label), self.stats.snapshot)

    @property
    def draining(self) -> bool:
        return self.stats.draining

    def close(self, *, timeout: float | None = None) -> bool:
        """Graceful shutdown: stop accepting, drain in-flight, tear down.

        The shared drain contract (:mod:`repro.api.transport`): after
        ``shutdown()`` stops the accept loop, every request already
        being handled finishes writing its response — bounded by
        ``timeout`` (default ``drain_seconds``) so a wedged handler
        cannot hold shutdown hostage.  Returns ``True`` when fully
        drained, ``False`` when the bound expired with work in flight.
        Must be called off the serving thread (like ``shutdown()``).
        """
        self.stats.begin_drain()
        self.shutdown()  # stops serve_forever; no new connections accepted
        drained = self.stats.wait_idle(
            self.drain_seconds if timeout is None else timeout
        )
        if not self._closed:
            self._closed = True
            self.server_close()
        return drained


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-api/1"
    protocol_version = "HTTP/1.1"
    # keep-alive idle bound: a parked connection times out instead of
    # pinning its handler thread forever
    timeout = 60.0
    # headers and body go out as separate sends; without TCP_NODELAY the
    # second waits on the client's delayed ACK (~40 ms) on keep-alive
    # connections, swamping the warm-cache path
    disable_nagle_algorithm = True

    def handle(self) -> None:
        """One connection (possibly many keep-alive requests)."""
        stats: TransportStats = self.server.stats  # type: ignore[attr-defined]
        stats.connection_opened()
        self._requests_served = 0
        try:
            super().handle()
        finally:
            stats.connection_closed()

    # ----------------------------------------------------------------- verbs
    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._tracked(self._dispatch, "GET")

    def do_POST(self) -> None:  # noqa: N802
        self._tracked(self._dispatch, "POST")

    def _tracked(self, fn, *args) -> None:
        """Request accounting + the drain contract around one request.

        ``request_started``/``request_finished`` bracket the handler so
        a graceful ``close()`` can wait for the response bytes to hit
        the socket; during a drain the response advertises and performs
        ``Connection: close`` so keep-alive clients disperse.
        """
        stats: TransportStats = self.server.stats  # type: ignore[attr-defined]
        served = getattr(self, "_requests_served", 0)
        self._requests_served = served + 1
        if getattr(self.server, "draining", False):
            self.close_connection = True
        stats.request_started(reused=served > 0)
        try:
            fn(*args)
        finally:
            stats.request_finished()

    def _reject_verb(self) -> None:
        """Non-GET/POST verbs get the structured 405, not the stdlib's
        HTML 501 page — the error contract holds for every method."""
        err = ApiError(
            "METHOD_NOT_ALLOWED",
            f"method {self.command} is not supported; use GET or POST",
            details={"allowed": ["GET", "POST"]},
        )
        self.close_connection = True  # request body (if any) was not drained
        self._tracked(self._send_json, err.http_status, error_payload(err))

    do_PUT = do_DELETE = do_PATCH = do_HEAD = do_OPTIONS = _reject_verb

    #: Gate-rejection codes the facade raises before ``handle_wire`` ran
    #: (and could do its own error accounting).
    _GATE_CODES = frozenset({"UNAUTHORIZED", "RATE_LIMITED", "BODY_TOO_LARGE"})

    # ------------------------------------------------------------- plumbing
    def _dispatch(self, verb: str) -> None:
        app: ApiApp = self.server.app  # type: ignore[attr-defined]
        parsed = urlparse(self.path)
        route: Route | None = None
        try:
            route = self._route(parsed.path, verb)
            # gate BEFORE the body read: a 401/429/413 must not cost the
            # server a recv of the (up to cap-sized) declared body
            context = self._admit(app, route.name)
            payload = self._read_body(app) if verb == "POST" else {}
        except ApiError as err:
            # the declared body may be unread at this point; a reused
            # keep-alive connection would parse it as the next request
            # line, so close instead of desyncing the stream
            self.close_connection = True
            if err.code in self._GATE_CODES:
                app.record_rejection(route.name if route is not None else "(unknown)")
            self._send_json(err.http_status, error_payload(err))
            return

        if route.kind == "stream":
            self._stream(app, payload, context)
            return
        raw = self._raw_format(parsed.query)
        if raw is not None and raw in route.raw_formats:
            self._render_raw(app, payload, context)
            return
        status, body = app.handle_wire(route.name, payload, context=context)
        self._send_json(status, body)

    def _admit(self, app: ApiApp, endpoint: str) -> RequestContext:
        """Run admission control on the headers alone, pre-body-read.

        Returns the context marked ``admitted`` so the app layer's own
        ``gate.admit`` (which every transport inherits) passes it
        through without spending a second token.
        """
        context = self._context()
        app.gate.admit(endpoint, context)
        return replace(context, admitted=True)

    def _context(self) -> RequestContext:
        """Describe this request for admission control (before any read).

        ``client`` is the peer address — transport-assigned, so an
        anonymous caller cannot mint fresh rate buckets per request;
        an ``X-Client-Id`` header rides as ``declared_client``, which
        the gate honors only once auth vouched for the caller.  The
        bearer token comes from ``Authorization``; ``body_bytes`` is
        the *declared* Content-Length — what the cap must judge, since
        rejecting after reading defends nothing.
        """
        client = self.client_address[0] if self.client_address else "unknown"
        auth = self.headers.get("Authorization", "")
        token = auth[7:].strip() if auth.startswith("Bearer ") else None
        try:
            declared = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            declared = None
        return RequestContext(
            client=str(client),
            auth_token=token,
            body_bytes=declared,
            declared_client=self.headers.get("X-Client-Id") or None,
        )

    def _route(self, path: str, verb: str) -> Route:
        """Resolve a URL path against the declarative route registry."""
        if not path.startswith(_PREFIX):
            raise ApiError(
                "UNKNOWN_ENDPOINT",
                f"no route {path!r}; endpoints live under {_PREFIX}",
                details={"endpoints": [_PREFIX + e for e in all_endpoints()]},
            )
        endpoint = path[len(_PREFIX):].strip("/")
        route = ROUTE_BY_NAME.get(endpoint)
        if route is None:
            raise ApiError(
                "UNKNOWN_ENDPOINT",
                f"no endpoint {path!r}",
                details={"endpoints": [_PREFIX + e for e in all_endpoints()]},
            )
        if verb != route.method:
            raise ApiError(
                "METHOD_NOT_ALLOWED",
                f"{path} expects {route.method}, got {verb}",
                details={"allowed": [route.method]},
            )
        return route

    def _read_body(self, app: ApiApp) -> dict:
        """Read and parse the POST body — after validating its *declared*
        size.  A bad or negative ``Content-Length`` is a 400; a length
        over the gate's cap is a structured 413 **before** any byte is
        read or buffered, so an unauthenticated 2 GB header can never
        become an allocation request (regression-tested over a raw
        socket)."""
        length_header = self.headers.get("Content-Length", "0")
        # RFC 9110: 1*DIGIT only — int() also accepts '+5', ' 5', '1_0',
        # and disagreeing with a stricter front proxy on framing is the
        # request-smuggling precondition (same rule as the aio parser)
        if not length_header or not all(c in "0123456789" for c in length_header):
            raise ApiError("MALFORMED_BODY", f"bad Content-Length {length_header!r}")
        length = int(length_header)
        app.gate.check_body(length)  # raises BODY_TOO_LARGE pre-read
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError("MALFORMED_BODY", f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ApiError(
                "MALFORMED_BODY",
                f"request body must be a JSON object, got {type(payload).__name__}",
            )
        return payload

    @staticmethod
    def _raw_format(query_string: str) -> str | None:
        """The ``?format=`` value when it requests raw bytes, else None."""
        value = parse_qs(query_string).get("format", ["json"])[-1]
        return None if value == "json" else value

    def _render_raw(self, app: ApiApp, payload: dict, context: RequestContext) -> None:
        """``?format=ppm``: the image bytes themselves, not a JSON envelope."""
        try:
            response = app.render_heatmap_wire(payload, context=context)
        except Exception as exc:  # noqa: BLE001 — boundary
            err = as_api_error(exc)
            self._send_json(err.http_status, error_payload(err))
            return
        self._send_bytes(200, response.ppm, "image/x-portable-pixmap")

    def _stream(self, app: ApiApp, payload: dict, context: RequestContext) -> None:
        """``/v1/search/export``: chunked NDJSON streaming.

        Pre-stream failures (gate, parse, unknown gene, the search) still
        answer with an ordinary JSON error status; once the 200 and the
        ``Transfer-Encoding: chunked`` header are committed, failures
        surface as the structured error trailer the app layer emits.
        """
        try:
            lines = app.export(payload, context=context)
        except Exception as exc:  # noqa: BLE001 — boundary
            err = as_api_error(exc)
            self._send_json(err.http_status, error_payload(err))
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson; charset=utf-8")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        completed = False
        try:
            for line in lines:
                self._write_chunk(line)
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
            completed = True
        except OSError:
            # client went away mid-stream (BrokenPipeError /
            # ConnectionResetError / TimeoutError are all OSErrors; a raw
            # EPIPE surfaces the same way): the connection is dead, drop it
            self.close_connection = True
        finally:
            # closing the generator fires its GeneratorExit path, which
            # records the failed export and releases anything pinned for
            # the stream — on *every* abnormal exit, not just connection
            # errors; a no-op after a completed stream
            if not completed:
                _close_quietly(lines)

    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunk: size line, payload, CRLF."""
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def _send_json(self, status: int, body: dict) -> None:
        # Retry-After on 429s comes from the shared transport helper so
        # the header cannot drift between the threaded and async facades
        headers = retry_after_headers(body)
        self._send_bytes(
            status,
            json.dumps(body).encode("utf-8"),
            "application/json; charset=utf-8",
            extra_headers=headers,
        )

    def _send_bytes(
        self,
        status: int,
        data: bytes,
        content_type: str,
        *,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.close_connection:
            # advertise what we will do — a keep-alive client must not
            # queue another request on this socket
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):
            sys.stderr.write(
                f"{self.address_string()} - {format % args}\n"
            )


def serve(app: ApiApp, *, host: str = "127.0.0.1", port: int = 0,
          quiet: bool = True, **kwargs) -> ApiHTTPServer:
    """Bind (but do not start) an HTTP server for ``app``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``.  Call ``serve_forever()`` (typically on a
    thread) to start answering; ``close()`` for the graceful drain.
    """
    return ApiHTTPServer((host, port), app, quiet=quiet, **kwargs)


def serve_background(app: ApiApp, *, host: str = "127.0.0.1", port: int = 0,
                     quiet: bool = True,
                     **kwargs) -> tuple[ApiHTTPServer, threading.Thread]:
    """Bind and start serving on a daemon thread; returns (server, thread)."""
    server = serve(app, host=host, port=port, quiet=quiet, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


# --------------------------------------------------------------------------
# CLI: python -m repro.api.http
# --------------------------------------------------------------------------
def _build_service(args: argparse.Namespace):
    """Synthetic-compendium service (the repo ships no proprietary data)."""
    import numpy as np

    from repro.spell.service import SpellService
    from repro.synth import make_spell_compendium

    compendium, truth = make_spell_compendium(
        n_datasets=args.synth_datasets,
        n_relevant=max(1, args.synth_datasets // 4),
        n_genes=args.synth_genes,
        n_conditions=args.synth_conditions,
        module_size=max(6, args.synth_genes // 20),
        query_size=4,
        seed=args.seed,
    )
    service = SpellService(
        compendium,
        n_workers=args.n_workers,
        n_procs=args.n_procs,
        cache_size=args.cache_size,
        cache_min_cost=args.cache_min_cost,
        dtype=np.float32 if args.dtype == "float32" else np.float64,
        store_dir=args.store_dir,
        store_verify=getattr(args, "store_verify", None),
        pool_timeout=args.pool_timeout,
    )
    return service, truth


def _build_catalog(args: argparse.Namespace, service):
    """The multi-tenant catalog when ``--catalog-root`` asks for one.

    The CLI-built service stays the pinned default tenant, so a fleet
    deployment answers default-tenant requests bit-identically to the
    single-tenant CLI it replaces.  Tenant services inherit the serving
    knobs but never a process pool — per-tenant pools would multiply
    worker processes by resident tenants.
    """
    if getattr(args, "catalog_root", None) is None:
        return None
    import numpy as np

    from repro.spell.catalog import CompendiumCatalog

    return CompendiumCatalog(
        args.catalog_root,
        default_service=service,
        max_resident=getattr(args, "max_resident", 4),
        service_options={
            "n_workers": args.n_workers,
            "cache_size": args.cache_size,
            "cache_min_cost": args.cache_min_cost,
            "dtype": np.float32 if args.dtype == "float32" else np.float64,
            "store_verify": getattr(args, "store_verify", None),
        },
    )


def _read_auth_tokens(path: str | None) -> dict[str, str]:
    """Parse a ``principal:token`` per-line credentials file.

    Returns token -> principal (the shape :class:`RequestGate` keys its
    per-token quota buckets on).  Blank lines and ``#`` comments are
    skipped.
    """
    if path is None:
        return {}
    tokens: dict[str, str] = {}
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            principal, sep, token = line.partition(":")
            if not sep or not principal.strip() or not token.strip():
                raise ValueError(
                    f"{path}:{lineno}: want 'principal:token', got {line!r}"
                )
            tokens[token.strip()] = principal.strip()
    return tokens


def _gate_kwargs(args: argparse.Namespace, auth_token: str | None,
                 auth_tokens: dict[str, str] | None = None) -> dict:
    """One gate-construction recipe both CLI facades share — the flag
    set and the policy it produces can never drift between them."""
    return {
        "auth_token": auth_token,
        "auth_tokens": auth_tokens or {},
        "rate_limit": args.rate_limit,
        "rate_burst": args.rate_burst,
        "token_rate_limit": getattr(args, "token_rate_limit", 0.0),
        "token_rate_burst": getattr(args, "token_rate_burst", None),
        "tenant_rate_limit": getattr(args, "tenant_rate_limit", 0.0),
        "tenant_rate_burst": getattr(args, "tenant_rate_burst", None),
        "max_body_bytes": args.max_body_bytes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.http",
        description="Serve the v1 SPELL query API over HTTP (demo compendium).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listening port (0 = ephemeral)")
    parser.add_argument("--store-dir", default=None,
                        help="persistent index directory (mmap cold start)")
    parser.add_argument("--store-verify", choices=("eager", "lazy"), default=None,
                        help="shard integrity policy at store load: eager "
                             "hashes every shard before serving (quarantine + "
                             "rebuild on mismatch); lazy keeps the zero-copy "
                             "mmap cold start and defers to a verify scrub. "
                             "Default: eager for in-RAM loads, lazy for mmap")
    parser.add_argument("--dtype", choices=("float64", "float32"), default="float64")
    parser.add_argument("--n-workers", type=int, default=4)
    parser.add_argument("--n-procs", type=int, default=1,
                        help=">= 2 serves /v1/search/batch from a process "
                             "pool sharing the mmap index store")
    parser.add_argument("--pool-timeout", type=float, default=120.0,
                        help="seconds to wait on one pool worker's reply "
                             "before declaring the pool broken (request "
                             "deadline_ms budgets clamp waits further)")
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--cache-min-cost", type=int, default=0,
                        help="result-cache admission threshold: only cache "
                             "results that ranked at least this many genes")
    parser.add_argument("--synth-datasets", type=int, default=12)
    parser.add_argument("--synth-genes", type=int, default=300)
    parser.add_argument("--synth-conditions", type=int, default=14)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--auth-token-file", default=None,
                        help="file holding the shared bearer token; when "
                             "set, requests (except /v1/health) must send "
                             "'Authorization: Bearer <token>' or get 401")
    parser.add_argument("--auth-tokens-file", default=None,
                        help="multi-credential file, one 'principal:token' "
                             "per line; each principal gets its own "
                             "--token-rate-limit quota bucket")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        help="per-client request budget in requests/second "
                             "(token bucket; 0 disables). Over-budget "
                             "clients get 429 RATE_LIMITED with "
                             "retry_after_ms")
    parser.add_argument("--rate-burst", type=int, default=None,
                        help="token-bucket burst size (default: "
                             "ceil(rate-limit))")
    parser.add_argument("--token-rate-limit", type=float, default=0.0,
                        help="per-authenticated-principal requests/second "
                             "quota, distinct from the per-peer --rate-limit "
                             "(0 disables)")
    parser.add_argument("--token-rate-burst", type=int, default=None)
    parser.add_argument("--tenant-rate-limit", type=float, default=0.0,
                        help="per-compendium requests/second budget across "
                             "all callers (0 disables)")
    parser.add_argument("--tenant-rate-burst", type=int, default=None)
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES,
                        help="largest accepted request body; bigger "
                             "declared bodies get 413 BODY_TOO_LARGE "
                             "before any byte is read")
    parser.add_argument("--catalog-root", default=None,
                        help="multi-tenant catalog directory: each tenant "
                             "compendium lives under <root>/<tenant>/ with "
                             "its own datasets/ and store/; requests carry "
                             "the tenant in the 'compendium' field")
    parser.add_argument("--max-resident", type=int, default=4,
                        help="LRU bound on tenants resident in RAM at once "
                             "(the default tenant is pinned and not counted "
                             "against evictions)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    args = parser.parse_args(argv)

    auth_token = None
    if args.auth_token_file is not None:
        with open(args.auth_token_file, encoding="utf-8") as fh:
            auth_token = fh.read().strip()
        if not auth_token:
            parser.error(f"auth token file {args.auth_token_file!r} is empty")
    try:
        auth_tokens = _read_auth_tokens(args.auth_tokens_file)
    except ValueError as exc:
        parser.error(str(exc))

    service, truth = _build_service(args)
    catalog = _build_catalog(args, service)
    gate = RequestGate(**_gate_kwargs(args, auth_token, auth_tokens))
    app = ApiApp(service, gate=gate, catalog=catalog)
    server = serve(app, host=args.host, port=args.port, quiet=not args.verbose)
    host, port = server.server_address[:2]
    example = json.dumps({"genes": list(truth.query_genes), "page_size": 10})
    print(f"serving v1 API on http://{host}:{port}{_PREFIX}", flush=True)
    print(f"  try: curl http://{host}:{port}/v1/health", flush=True)
    print(
        f"  try: curl -X POST http://{host}:{port}/v1/search -d '{example}'",
        flush=True,
    )
    print(
        f"  try: curl -N -X POST http://{host}:{port}/v1/search/export "
        f"-d '{json.dumps({'genes': list(truth.query_genes), 'chunk_size': 100})}'",
        flush=True,
    )
    def _on_term(signum, frame):
        # close() must come from off the serving thread (shutdown() blocks
        # until serve_forever exits); the drain happens on the helper
        threading.Thread(target=server.close, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        if catalog is not None:
            catalog.close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
