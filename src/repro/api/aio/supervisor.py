"""Loop-group supervisor: one event loop per core, one shared port.

A single event loop is single-core by construction; the paper's
display-wall workload (many analysts, many small dynamic queries) wants
every core answering.  The topology here is the classic
``SO_REUSEPORT`` fan-out: N worker *processes*, each running one
:class:`~repro.api.aio.server.AioApiServer`, all binding the same
``(host, port)`` — the kernel load-balances accepted connections across
the listening sockets, so there is no user-space proxy hop and no
shared accept lock.  Processes (not threads) also sidestep the GIL for
the JSON/dict-heavy request handling the executor threads do.

Port reservation: with ``port=0`` the parent must learn a concrete port
*before* any child exists, yet must not serve.  It binds — without
listening — its own ``SO_REUSEPORT`` socket; the kernel assigns the
ephemeral port and, because only *listening* sockets participate in
accept load-balancing, the reservation never steals a connection.  The
socket is held open for the group's lifetime so the port cannot be
reused out from under a restarting worker.

Workers build their own :class:`~repro.api.app.ApiApp` from a picklable
``"module:callable"`` factory spec (a bound app object cannot cross a
``spawn`` boundary); the default factory serves the same synthetic
compendium as the CLIs, so equal seeds give every worker bit-identical
data — the oracle invariant holds regardless of which loop the kernel
picks.

Shutdown honors the drain contract end-to-end: ``stop()`` sends
SIGTERM, each worker stops accepting, finishes in-flight responses
(bounded), and exits; stragglers past the bound are killed and
reported.
"""

from __future__ import annotations

import atexit
import importlib
import json
import multiprocessing
import os
import signal
import socket
import time
import urllib.error
import urllib.request

from repro.api.transport import DEFAULT_DRAIN_SECONDS

__all__ = ["LoopGroup", "default_app_factory", "resolve_factory"]

#: Factory spec the CLI and tests use when none is given: a synthetic
#: compendium app (the repo ships no proprietary data).
DEFAULT_FACTORY = "repro.api.aio.supervisor:default_app_factory"


def resolve_factory(spec: str):
    """``"module:callable"`` → the callable (imported in *this* process)."""
    modname, sep, attr = spec.partition(":")
    if not sep or not modname or not attr:
        raise ValueError(
            f"factory spec {spec!r} must look like 'package.module:callable'"
        )
    fn = getattr(importlib.import_module(modname), attr, None)
    if not callable(fn):
        raise ValueError(f"factory spec {spec!r} does not name a callable")
    return fn


def default_app_factory(
    *,
    synth_datasets: int = 12,
    synth_genes: int = 300,
    synth_conditions: int = 14,
    n_relevant: int | None = None,
    module_size: int | None = None,
    query_size: int = 4,
    seed: int = 42,
    n_workers: int = 4,
    n_procs: int = 1,
    cache_size: int = 256,
    cache_min_cost: int = 0,
    dtype: str = "float64",
    store_dir: str | None = None,
    store_verify: str | None = None,
    pool_timeout: float = 120.0,
    auth_token: str | None = None,
    auth_tokens: dict | None = None,
    rate_limit: float = 0.0,
    rate_burst: int | None = None,
    token_rate_limit: float = 0.0,
    token_rate_burst: int | None = None,
    tenant_rate_limit: float = 0.0,
    tenant_rate_burst: int | None = None,
    max_body_bytes: int | None = None,
    catalog_root: str | None = None,
    max_resident: int = 4,
):
    """Build the demo :class:`ApiApp` (synthetic compendium) in-process.

    Mirrors ``repro.api.http``'s ``_build_service`` so both CLIs serve
    identical data for identical arguments; every kwarg is a plain
    picklable scalar, so the same call crosses the ``spawn`` boundary.
    """
    import numpy as np

    from repro.api.app import ApiApp
    from repro.api.limits import DEFAULT_MAX_BODY_BYTES, RequestGate
    from repro.spell.service import SpellService
    from repro.synth import make_spell_compendium

    compendium, _truth = make_spell_compendium(
        n_datasets=synth_datasets,
        n_relevant=max(1, synth_datasets // 4) if n_relevant is None else n_relevant,
        n_genes=synth_genes,
        n_conditions=synth_conditions,
        module_size=max(6, synth_genes // 20) if module_size is None else module_size,
        query_size=query_size,
        seed=seed,
    )
    service = SpellService(
        compendium,
        n_workers=n_workers,
        n_procs=n_procs,
        cache_size=cache_size,
        cache_min_cost=cache_min_cost,
        dtype=np.float32 if dtype == "float32" else np.float64,
        store_dir=store_dir,
        store_verify=store_verify,
        pool_timeout=pool_timeout,
    )
    catalog = None
    if catalog_root is not None:
        # each worker holds its own catalog view over the shared root:
        # an ingest publishes durably (sources + per-tenant store), is
        # visible to its own loop immediately, and to sibling loops at
        # their next tenant (re)load — never a torn state, because the
        # store publish is manifest-first and the sources are atomic
        from repro.spell.catalog import CompendiumCatalog

        catalog = CompendiumCatalog(
            catalog_root,
            default_service=service,
            max_resident=max_resident,
            service_options={
                "n_workers": n_workers,
                "cache_size": cache_size,
                "cache_min_cost": cache_min_cost,
                "dtype": np.float32 if dtype == "float32" else np.float64,
                "store_verify": store_verify,
            },
        )
    gate = RequestGate(
        auth_token=auth_token,
        auth_tokens=auth_tokens or {},
        rate_limit=rate_limit,
        rate_burst=rate_burst,
        token_rate_limit=token_rate_limit,
        token_rate_burst=token_rate_burst,
        tenant_rate_limit=tenant_rate_limit,
        tenant_rate_burst=tenant_rate_burst,
        max_body_bytes=(
            DEFAULT_MAX_BODY_BYTES if max_body_bytes is None else max_body_bytes
        ),
    )
    return ApiApp(service, gate=gate, catalog=catalog)


def _worker_main(
    factory_spec: str,
    factory_kwargs: dict | None,
    host: str,
    port: int,
    index: int,
    server_options: dict | None,
) -> None:
    """Entry point of one worker process: build app, serve, drain on TERM."""
    import asyncio

    from repro.api.aio.server import AioApiServer

    app = resolve_factory(factory_spec)(**(factory_kwargs or {}))
    server = AioApiServer(
        app,
        host=host,
        port=port,
        reuse_port=True,
        transport_label=f"aio:{index}",
        **(server_options or {}),
    )

    async def _main() -> None:
        task = asyncio.current_task()
        loop = asyncio.get_running_loop()
        # first signal: graceful (cancel → drain); a second one lands
        # mid-drain and cancels the drain sleep, forcing exit
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, task.cancel)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    finally:
        catalog = getattr(app, "catalog", None)
        if catalog is not None:
            catalog.close()
        close = getattr(app.service, "close", None)
        if callable(close):
            close()


class LoopGroup:
    """Supervise N single-loop worker processes sharing one port.

    >>> group = LoopGroup(n_loops=2, factory_kwargs={"seed": 7})
    >>> group.start()          # doctest: +SKIP
    >>> group.port             # doctest: +SKIP
    >>> group.stop()           # doctest: +SKIP

    ``start()`` blocks until ``/v1/health`` answers (the group is
    usable) or raises if a worker dies during boot.  Use as a context
    manager for exception-safe teardown.
    """

    def __init__(
        self,
        *,
        n_loops: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        factory: str = DEFAULT_FACTORY,
        factory_kwargs: dict | None = None,
        server_options: dict | None = None,
        start_timeout: float = 120.0,
        drain_seconds: float = DEFAULT_DRAIN_SECONDS,
    ) -> None:
        self.n_loops = max(1, int(n_loops if n_loops is not None else os.cpu_count() or 1))
        self.host = host
        self._requested_port = int(port)
        self.factory = factory
        self.factory_kwargs = dict(factory_kwargs or {})
        self.server_options = dict(server_options or {})
        self.server_options.setdefault("drain_seconds", drain_seconds)
        self.start_timeout = float(start_timeout)
        self.drain_seconds = float(self.server_options["drain_seconds"])
        self.port: int | None = None
        self._reservation: socket.socket | None = None
        self._procs: list[multiprocessing.process.BaseProcess] = []

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "LoopGroup":
        if self._procs:
            raise RuntimeError("LoopGroup already started")
        self.port = self._reserve_port()
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.n_loops):
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    self.factory,
                    self.factory_kwargs,
                    self.host,
                    self.port,
                    index,
                    self.server_options,
                ),
                # NOT daemonic: the app a worker builds may itself spawn
                # IndexWorkerPool child processes (n_procs > 1), which
                # multiprocessing forbids for daemonic parents; stop()
                # owns teardown (SIGTERM, bounded join, then kill)
                name=f"aio-loop-{index}",
                daemon=False,
            )
            proc.start()
            self._procs.append(proc)
        # non-daemonic children are joined by multiprocessing at
        # interpreter exit — which never returns while they serve; make
        # sure they are stopped first even if the caller forgot stop()
        atexit.register(self.stop)
        try:
            self._wait_ready()
        except BaseException:
            self.stop(timeout=5.0)
            raise
        return self

    def _reserve_port(self) -> int:
        """Pin (or verify) the group's port without serving on it."""
        if not hasattr(socket, "SO_REUSEPORT"):
            raise OSError(
                "SO_REUSEPORT is not available on this platform; "
                "the multi-loop topology requires it"
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((self.host, self._requested_port))
        except BaseException:
            sock.close()
            raise
        self._reservation = sock  # held (not listening) for group lifetime
        return sock.getsockname()[1]

    def _wait_ready(self) -> None:
        """Poll ``/v1/health`` until the group answers (workers are slow
        to boot: ``spawn`` + synthetic compendium + index build)."""
        url = f"http://{self.host}:{self.port}/v1/health"
        deadline = time.monotonic() + self.start_timeout
        last_error: str = "no response"
        while time.monotonic() < deadline:
            for proc in self._procs:
                if not proc.is_alive():
                    raise RuntimeError(
                        f"worker {proc.name} died during startup "
                        f"(exitcode={proc.exitcode})"
                    )
            try:
                with urllib.request.urlopen(url, timeout=2.0) as resp:
                    if resp.status == 200:
                        json.loads(resp.read())
                        return
                    last_error = f"health answered {resp.status}"
            except (urllib.error.URLError, ConnectionError, OSError, TimeoutError) as exc:
                last_error = str(exc)
            time.sleep(0.1)
        raise TimeoutError(
            f"loop group not ready after {self.start_timeout:.0f}s "
            f"(last error: {last_error})"
        )

    def alive(self) -> list[bool]:
        return [proc.is_alive() for proc in self._procs]

    def stop(self, *, timeout: float | None = None) -> int:
        """SIGTERM the group (graceful drain), bounded join, then kill.

        Returns the number of workers that had to be killed (0 on a
        fully graceful stop).
        """
        atexit.unregister(self.stop)
        budget = (timeout if timeout is not None else self.drain_seconds) + 5.0
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM → cancel → drain → exit
        deadline = time.monotonic() + budget
        killed = 0
        for proc in self._procs:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
                killed += 1
        self._procs = []
        if self._reservation is not None:
            self._reservation.close()
            self._reservation = None
        return killed

    def __enter__(self) -> "LoopGroup":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
