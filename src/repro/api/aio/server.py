"""One-event-loop HTTP/1.1 server over :class:`~repro.api.app.ApiApp`.

This is the asyncio half of the serving tier: a hand-rolled accept loop
(``loop.sock_accept`` on a socket the server binds itself, optionally
with ``SO_REUSEPORT`` so N worker processes share one port), per
connection a **reader** coroutine (incremental HTTP/1.1 parsing via
:mod:`repro.api.aio.http11`, admission control on headers alone) and a
**responder** coroutine (in-order dispatch and response writing) joined
by a bounded queue — the queue *is* the per-connection pipelining
window, and a full queue stops the reader, which stops ``sock_recv``,
which is TCP backpressure.

The event loop never blocks on the analysis core: every
``ApiApp.handle_wire`` / ``export`` call — which may wait on the index
worker pool's pipes or the sharded router's sockets — runs on a bounded
thread-pool executor (``loop.run_in_executor``), so hundreds of
connections stay responsive while a handful of requests compute.

Semantics are **identical** to the threaded facade
(:mod:`repro.api.http`) by construction: the same route registry, the
same :class:`~repro.api.limits.RequestGate` run *before* the body is
read (the context is marked admitted, so no token is ever spent twice),
the same structured error codes, the same ``Retry-After`` header on
429s, and the same close-don't-desync rule — a request rejected before
its body was drained answers ``Connection: close``.  The oracle tests
assert byte-identical JSON bodies against the threaded facade and
direct ``ApiApp`` calls.

Graceful drain (shared contract with the threaded facade, see
:mod:`repro.api.transport`): ``shutdown()`` stops accepting, lets every
parsed-and-admitted request finish writing its response (bounded by
``drain_seconds``), closes idle keep-alive connections, and only then
tears the loop down — an in-flight response is never dropped.
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
from dataclasses import dataclass, replace
from functools import partial
from urllib.parse import parse_qs, urlparse

from repro.api.app import ApiApp, all_endpoints
from repro.api.errors import ApiError, as_api_error, error_payload
from repro.api.limits import RequestContext
from repro.api.routes import ROUTE_BY_NAME, Route
from repro.api.transport import (
    DEFAULT_DRAIN_SECONDS,
    TransportStats,
    close_quietly as _close_quietly,
    retry_after_headers,
)
from repro.api.aio.http11 import (
    CHUNKED_EOF,
    ProtocolError,
    RequestHead,
    RequestParser,
    encode_chunk,
    encode_response,
    encode_stream_head,
)

__all__ = ["AioApiServer", "serve", "serve_background"]

_PREFIX = "/v1/"

#: Bytes asked of the socket per read — large enough that a pipelined
#: burst of small requests arrives in one syscall.
_RECV_BYTES = 1 << 16

#: Default per-connection pipelining window (parsed-but-unanswered
#: requests); a full window pauses the reader (TCP backpressure).
DEFAULT_PIPELINE_DEPTH = 8

#: Default cap on concurrently served connections; at the cap the accept
#: loop pauses (SYN backlog holds the overflow) instead of growing
#: per-connection state without bound.
DEFAULT_MAX_CONNECTIONS = 512

_DONE = object()  # responder sentinel: no more items for this connection

#: Gate-rejection codes raised before ``handle_wire`` could do its own
#: error accounting (mirrors the threaded facade).
_GATE_CODES = frozenset({"UNAUTHORIZED", "RATE_LIMITED", "BODY_TOO_LARGE"})


@dataclass
class _Item:
    """One parsed request handed from the reader to the responder."""

    kind: str  # "unary" | "stream" | "raw" | "error"
    route: Route | None = None
    payload: dict | None = None
    context: RequestContext | None = None
    error: ApiError | None = None
    close: bool = False  # client asked (or framing demands) to close after


@dataclass
class _ConnState:
    """Per-connection bookkeeping shared by reader and responder."""

    seen: int = 0  # requests enqueued on this connection, ever
    pending: int = 0  # enqueued but not yet fully responded


class AioApiServer:
    """One event loop serving the v1 API; N of these share a port.

    The listening socket is bound in the constructor (so ``port=0``
    resolves immediately, like the threaded facade); the loop work —
    accepting, parsing, dispatching — happens inside
    :meth:`serve_forever`, which runs until :meth:`shutdown`.

    ``reuse_port=True`` sets ``SO_REUSEPORT`` before binding: start one
    server (process) per core on the same port and the kernel load
    balances accepted connections across their accept queues — the
    multi-loop topology :mod:`repro.api.aio.supervisor` manages.
    """

    def __init__(
        self,
        app: ApiApp,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        reuse_port: bool = False,
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        executor_threads: int | None = None,
        drain_seconds: float = DEFAULT_DRAIN_SECONDS,
        transport_label: str = "aio",
        quiet: bool = True,
    ) -> None:
        self.app = app
        self.pipeline_depth = max(1, int(pipeline_depth))
        self.max_connections = max(1, int(max_connections))
        self.drain_seconds = float(drain_seconds)
        self.quiet = bool(quiet)
        self.stats = TransportStats()
        self.transport_label = str(transport_label)
        self._executor_threads = executor_threads
        self._executor = None  # created on the loop, torn down with it
        self._loop: asyncio.AbstractEventLoop | None = None
        self._serve_task: asyncio.Task | None = None
        self._draining = False
        self._shutdown_requested = threading.Event()
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_socks: set[socket.socket] = set()

        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            if reuse_port:
                if not hasattr(socket, "SO_REUSEPORT"):
                    raise OSError("SO_REUSEPORT is not available on this platform")
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            sock.listen(128)
            sock.setblocking(False)
        except BaseException:
            sock.close()
            raise
        self._sock = sock
        self.server_address = sock.getsockname()

        register = getattr(app.service, "register_transport_stats", None)
        if callable(register):
            register(self.transport_label, self.stats.snapshot)

    # ------------------------------------------------------------------ serve
    async def serve_forever(self) -> None:
        """Accept and serve until :meth:`shutdown` (or task cancellation)."""
        from concurrent.futures import ThreadPoolExecutor
        import os

        loop = asyncio.get_running_loop()
        self._loop = loop
        self._serve_task = asyncio.current_task()
        threads = self._executor_threads
        if threads is None:
            threads = max(4, os.cpu_count() or 1)
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="aio-dispatch"
        )
        slots = asyncio.Semaphore(self.max_connections)
        self._started.set()
        try:
            while True:
                await slots.acquire()  # accept pause at the connection cap
                try:
                    conn, addr = await loop.sock_accept(self._sock)
                except (asyncio.CancelledError, OSError):
                    slots.release()
                    raise
                conn.setblocking(False)
                try:
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:
                    pass
                task = loop.create_task(self._handle_connection(conn, addr))
                self._conn_tasks.add(task)
                self._conn_socks.add(conn)

                def _done(t, *, c=conn):
                    self._conn_tasks.discard(t)
                    self._conn_socks.discard(c)
                    slots.release()

                task.add_done_callback(_done)
        except asyncio.CancelledError:
            pass
        finally:
            await self._drain_and_close()
            self._executor.shutdown(wait=False)
            self._stopped.set()

    async def _drain_and_close(self) -> None:
        """The drain contract: finish in-flight responses, then tear down."""
        self._draining = True
        self._sock.close()
        in_flight = self.stats.begin_drain()
        if in_flight or self._conn_tasks:
            deadline = self._loop.time() + self.drain_seconds
            while self.stats.snapshot()["in_flight"] > 0:
                if self._loop.time() >= deadline:
                    self._log(
                        f"drain timeout: abandoning "
                        f"{self.stats.snapshot()['in_flight']} request(s)"
                    )
                    break
                await asyncio.sleep(0.01)
        # idle keep-alive connections (readers parked in sock_recv) hold
        # no in-flight work; cancel their tasks — closing the socket
        # under a pending sock_recv would strand the future forever
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)

    # ------------------------------------------------------------- connection
    async def _handle_connection(self, sock: socket.socket, addr) -> None:
        self.stats.connection_opened()
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(self.pipeline_depth)
        state = _ConnState()
        responder = loop.create_task(self._respond_loop(sock, queue, state))
        try:
            await self._read_loop(sock, addr, queue, state, responder)
        except asyncio.CancelledError:
            responder.cancel()
            raise
        finally:
            if responder.done():
                if not responder.cancelled():
                    responder.exception()  # retrieve, or the loop warns
            else:
                try:
                    # racing the sentinel put against the responder keeps
                    # a full pipeline window from deadlocking this task
                    # against a responder that exits mid-wait
                    await self._put_or_abort(queue, responder, _DONE)
                    await responder
                except asyncio.CancelledError:
                    responder.cancel()
                except Exception:
                    pass  # responder's own failure; keep balancing books
            # anything still queued was admitted (counted in-flight) but
            # will never be answered — balance the books
            while not queue.empty():
                item = queue.get_nowait()
                if item is not _DONE and isinstance(item, _Item):
                    state.pending -= 1
                    self.stats.request_finished()
            try:
                sock.close()
            except OSError:
                pass
            self.stats.connection_closed()

    async def _read_loop(self, sock, addr, queue, state, responder) -> None:
        """Parse requests off the socket and enqueue them in order."""
        loop = asyncio.get_running_loop()
        parser = RequestParser()
        while not responder.done():
            try:
                head = parser.poll_head()
            except ProtocolError as exc:
                await self._enqueue(
                    queue, state, responder,
                    _Item(kind="error", close=True,
                          error=ApiError(exc.code, exc.message)),
                )
                return  # unframeable stream: nothing after it is trusted
            if head is None:
                if self._draining and state.pending == 0 and parser.pending_bytes() == 0:
                    return  # idle keep-alive connection during drain
                try:
                    data = await loop.sock_recv(sock, _RECV_BYTES)
                except (OSError, asyncio.CancelledError):
                    return
                if not data:
                    return  # client closed
                parser.feed(data)
                continue

            item = await self._parse_request(sock, loop, parser, head, addr)
            if not await self._enqueue(queue, state, responder, item):
                return  # responder exited (close/write failure) mid-wait
            if item.kind == "error":
                # the body (if any) was not drained; the stream cannot
                # be resynced — stop reading, responder will close
                return

    async def _parse_request(self, sock, loop, parser, head: RequestHead, addr) -> _Item:
        """Route + admit on headers, then read and parse the body.

        Mirrors the threaded facade's ``_dispatch`` ordering exactly:
        route resolution, then the gate (pre-body-read), then the body —
        any :class:`ApiError` on that path becomes an error item that
        closes the connection (the declared body may be undrained).
        """
        parsed = urlparse(head.target)
        route: Route | None = None
        try:
            route = self._route(parsed.path, head.method)
            context = self._context(head, addr)
            self.app.gate.admit(route.name, context)
            context = replace(context, admitted=True)
            if head.method == "POST":
                payload = await self._read_body(loop, sock, parser, head)
            else:
                payload = {}
                if head.content_length > 0:
                    # a GET that declared a body: the gate already judged
                    # the declared size in admit(), so drain it (bounded
                    # by the body cap) — left in the buffer it would be
                    # parsed as the *next* request on this keep-alive
                    # connection, a stream desync the threaded facade
                    # avoids by closing
                    await self._buffer_body(loop, sock, parser, head)
        except ApiError as err:
            if err.code in _GATE_CODES:
                self.app.record_rejection(route.name if route is not None else "(unknown)")
            return _Item(kind="error", error=err, close=True)

        close = not head.keep_alive
        if route.kind == "stream":
            return _Item(kind="stream", route=route, payload=payload,
                         context=context, close=close)
        raw = self._raw_format(parsed.query)
        if raw is not None and raw in route.raw_formats:
            return _Item(kind="raw", route=route, payload=payload,
                         context=context, close=close)
        return _Item(kind="unary", route=route, payload=payload,
                     context=context, close=close)

    async def _read_body(self, loop, sock, parser, head: RequestHead) -> dict:
        """Read the declared body (the cap was already judged) and parse it."""
        self.app.gate.check_body(head.content_length)  # 413 pre-read
        body = await self._buffer_body(loop, sock, parser, head)
        try:
            payload = json.loads(body or b"{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError("MALFORMED_BODY", f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ApiError(
                "MALFORMED_BODY",
                f"request body must be a JSON object, got {type(payload).__name__}",
            )
        return payload

    @staticmethod
    async def _buffer_body(loop, sock, parser, head: RequestHead) -> bytes:
        """Pull the declared ``content_length`` bytes off the wire."""
        while True:
            body = parser.poll_body(head)
            if body is not None:
                return body
            try:
                data = await loop.sock_recv(sock, _RECV_BYTES)
            except OSError as exc:
                raise ApiError("MALFORMED_BODY", f"connection lost mid-body: {exc}")
            if not data:
                raise ApiError("MALFORMED_BODY", "connection closed mid-body")
            parser.feed(data)

    async def _enqueue(
        self, queue, state: _ConnState, responder: asyncio.Task, item: _Item
    ) -> bool:
        """Admit one parsed request to the pipeline window (may block).

        Returns whether the item was enqueued.  ``False`` means the
        responder finished first — a ``Connection: close`` response or a
        write failure ended the connection while the pipeline window was
        full — so nothing more will ever be served and the reader must
        stop.  Racing the put against the responder is what prevents the
        reader from deadlocking on a dead responder (which would strand
        the connection task and its ``max_connections`` slot forever).
        """
        state.seen += 1
        state.pending += 1
        self.stats.request_started(reused=state.seen > 1, depth=state.pending)
        try:
            enqueued = await self._put_or_abort(queue, responder, item)
        except asyncio.CancelledError:
            state.pending -= 1
            self.stats.request_finished()
            raise
        if not enqueued:
            state.pending -= 1
            self.stats.request_finished()
        return enqueued

    @staticmethod
    async def _put_or_abort(
        queue: asyncio.Queue, responder: asyncio.Task, item
    ) -> bool:
        """``queue.put(item)`` unless the responder exits first.

        Returns whether the item made it onto the queue.  A plain
        ``await queue.put`` on a full queue never wakes once the
        responder (the only consumer) has returned.
        """
        put = asyncio.ensure_future(queue.put(item))
        try:
            await asyncio.wait({put, responder}, return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            put.cancel()
            raise
        if put.done() and not put.cancelled():
            return True
        put.cancel()
        return False

    # -------------------------------------------------------------- responder
    async def _respond_loop(self, sock, queue, state: _ConnState) -> None:
        """Serve queued requests strictly in order; stop on close."""
        while True:
            item = await queue.get()
            if item is _DONE:
                return
            try:
                close = await self._write_response(sock, item)
            except (ConnectionError, OSError, BrokenPipeError):
                state.pending -= 1
                self.stats.request_finished()
                return  # client went away; reader will hit EOF/close
            state.pending -= 1
            self.stats.request_finished()
            if close:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                return

    async def _write_response(self, sock, item: _Item) -> bool:
        """Write one response; returns whether the connection must close."""
        loop = asyncio.get_running_loop()
        close = item.close or self._draining
        if item.kind == "error":
            body = error_payload(item.error)
            await loop.sock_sendall(sock, self._json_bytes(
                item.error.http_status, body, close=True
            ))
            return True
        if item.kind == "unary":
            status, body = await loop.run_in_executor(
                self._executor,
                partial(self.app.handle_wire, item.route.name, item.payload,
                        context=item.context),
            )
            await loop.sock_sendall(sock, self._json_bytes(status, body, close=close))
            return close
        if item.kind == "raw":
            return await self._write_raw(loop, sock, item, close)
        return await self._write_stream(loop, sock, item, close)

    async def _write_raw(self, loop, sock, item: _Item, close: bool) -> bool:
        """``?format=ppm``: the image bytes themselves, not a JSON envelope."""
        try:
            response = await loop.run_in_executor(
                self._executor,
                partial(self.app.render_heatmap_wire, item.payload,
                        context=item.context),
            )
        except Exception as exc:  # noqa: BLE001 — boundary
            err = as_api_error(exc)
            await loop.sock_sendall(
                sock, self._json_bytes(err.http_status, error_payload(err), close=close)
            )
            return close
        await loop.sock_sendall(sock, encode_response(
            200, response.ppm, "image/x-portable-pixmap", close=close
        ))
        return close

    async def _write_stream(self, loop, sock, item: _Item, close: bool) -> bool:
        """``/v1/search/export``: chunked NDJSON, error trailer discipline.

        The eager half of the export (gate, parse, the search) runs in
        the executor and still answers plain JSON errors; once the
        chunked header is committed, failures surface as the structured
        error trailer the app layer emits.  Each ``next()`` on the line
        iterator is blocking work (slicing + JSON + checksum), so it too
        runs on the executor — the loop only ever moves ready bytes.
        """
        try:
            lines = await loop.run_in_executor(
                self._executor,
                partial(self.app.export, item.payload, context=item.context),
            )
        except Exception as exc:  # noqa: BLE001 — boundary
            err = as_api_error(exc)
            await loop.sock_sendall(
                sock, self._json_bytes(err.http_status, error_payload(err), close=close)
            )
            return close
        iterator = iter(lines)
        completed = False
        try:
            await loop.sock_sendall(sock, encode_stream_head(close=close))
            while True:
                line = await loop.run_in_executor(
                    self._executor, partial(next, iterator, None)
                )
                if line is None:
                    break
                await loop.sock_sendall(sock, encode_chunk(line))
            await loop.sock_sendall(sock, CHUNKED_EOF)
            completed = True
        finally:
            # client gone (ConnectionError/OSError) or task cancelled
            # mid-stream: closing the generator fires its GeneratorExit
            # path, which records the failed export and releases anything
            # pinned for the stream; a no-op after a completed stream.
            # The original exception keeps propagating to the responder
            # loop, which balances the connection-slot accounting.
            if not completed and hasattr(lines, "close"):
                await loop.run_in_executor(
                    self._executor, partial(_close_quietly, lines)
                )
        return close

    # -------------------------------------------------------------- plumbing
    def _json_bytes(self, status: int, body: dict, *, close: bool) -> bytes:
        return encode_response(
            status,
            json.dumps(body).encode("utf-8"),
            extra_headers=retry_after_headers(body),
            close=close,
        )

    def _route(self, path: str, verb: str) -> Route:
        """Resolve a URL path against the declarative route registry."""
        if verb not in ("GET", "POST"):
            raise ApiError(
                "METHOD_NOT_ALLOWED",
                f"method {verb} is not supported; use GET or POST",
                details={"allowed": ["GET", "POST"]},
            )
        if not path.startswith(_PREFIX):
            raise ApiError(
                "UNKNOWN_ENDPOINT",
                f"no route {path!r}; endpoints live under {_PREFIX}",
                details={"endpoints": [_PREFIX + e for e in all_endpoints()]},
            )
        endpoint = path[len(_PREFIX):].strip("/")
        route = ROUTE_BY_NAME.get(endpoint)
        if route is None:
            raise ApiError(
                "UNKNOWN_ENDPOINT",
                f"no endpoint {path!r}",
                details={"endpoints": [_PREFIX + e for e in all_endpoints()]},
            )
        if verb != route.method:
            raise ApiError(
                "METHOD_NOT_ALLOWED",
                f"{path} expects {route.method}, got {verb}",
                details={"allowed": [route.method]},
            )
        return route

    @staticmethod
    def _context(head: RequestHead, addr) -> RequestContext:
        """Describe one request for admission control (before any read)."""
        client = addr[0] if addr else "unknown"
        auth = head.headers.get("authorization", "")
        token = auth[7:].strip() if auth.startswith("Bearer ") else None
        return RequestContext(
            client=str(client),
            auth_token=token,
            body_bytes=head.content_length,
            declared_client=head.headers.get("x-client-id") or None,
        )

    @staticmethod
    def _raw_format(query_string: str) -> str | None:
        value = parse_qs(query_string).get("format", ["json"])[-1]
        return None if value == "json" else value

    def _log(self, message: str) -> None:
        if not self.quiet:
            sys.stderr.write(f"repro.api.aio: {message}\n")

    # ------------------------------------------------------------- lifecycle
    async def shutdown(self) -> None:
        """Graceful drain from inside the loop (signal handlers land here)."""
        self._draining = True
        # cancelling serve_forever's accept wait routes through
        # _drain_and_close exactly once; the task was recorded by
        # serve_forever itself, so every launch style — asyncio.run,
        # serve_background, the supervisor — is covered
        task = self._serve_task
        if task is not None and task is not asyncio.current_task() and not task.done():
            task.cancel()

    def close(self, *, drain: bool = True, timeout: float | None = None) -> bool:
        """Thread-safe shutdown for callers outside the loop (tests, CLI).

        With ``drain=True`` (default) the server honors the drain
        contract before stopping; returns once the loop has fully torn
        down (bounded by ``timeout`` + drain budget).
        """
        if not drain:
            self.drain_seconds = 0.0
        loop = self._loop
        if loop is None or self._stopped.is_set():
            self._sock.close()
            return True
        loop.call_soon_threadsafe(self._cancel_serve)
        budget = (timeout if timeout is not None else self.drain_seconds) + 5.0
        return self._stopped.wait(budget)

    def _cancel_serve(self) -> None:
        task = self._serve_task
        if task is not None and not task.done():
            task.cancel()


def serve(app: ApiApp, *, host: str = "127.0.0.1", port: int = 0,
          **kwargs) -> AioApiServer:
    """Bind (but do not run) an asyncio server for ``app``.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.server_address``.  Run ``asyncio.run(server.serve_forever())``
    (or use :func:`serve_background`) to start answering.
    """
    return AioApiServer(app, host=host, port=port, **kwargs)


def serve_background(app: ApiApp, *, host: str = "127.0.0.1", port: int = 0,
                     **kwargs) -> tuple[AioApiServer, threading.Thread]:
    """Bind and serve on a daemon thread running a private event loop."""
    server = serve(app, host=host, port=port, **kwargs)

    def _run() -> None:
        asyncio.run(server.serve_forever())

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    server._started.wait(10)
    return server, thread
