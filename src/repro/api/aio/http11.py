"""Minimal hand-rolled HTTP/1.1 framing for the asyncio serving tier.

The stdlib's ``http.server`` couples parsing to blocking file objects
and a thread-per-connection model; the asyncio tier needs the opposite:
a **pure, incremental** parser that is fed raw bytes as they arrive and
never touches a socket, so one event loop can interleave hundreds of
connections.  This module is that parser plus the response encoders —
everything byte-level lives here, and :mod:`repro.api.aio.server` only
moves bytes between sockets and these functions.

Design points:

* **Two-phase parsing.**  :meth:`RequestParser.poll_head` yields a
  :class:`RequestHead` as soon as the header block is complete, *before*
  any body byte is consumed — admission control (auth, rate limit, the
  declared-body cap) must run on headers alone, so a rejected 2 GB
  upload never costs a read.  :meth:`RequestParser.poll_body` then
  returns the body once buffered.
* **Pipelining-safe.**  The parser is a splitter over one growing
  buffer: bytes beyond the current request are simply the next
  request's, so a client may write N requests back-to-back and poll
  them out in order.
* **Strict framing limits.**  Oversized request lines / header blocks
  and malformed ``Content-Length`` values raise :class:`ProtocolError`
  — the connection answers a structured error and closes, because a
  stream that cannot be framed cannot be resynced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "MAX_REQUEST_LINE_BYTES",
    "MAX_HEADER_BYTES",
    "ProtocolError",
    "RequestHead",
    "RequestParser",
    "encode_response",
    "encode_chunk",
    "encode_stream_head",
    "CHUNKED_EOF",
    "reason_phrase",
]

#: Longest accepted request line (method + target + version).  Generous
#: for the v1 surface (targets are short) but bounded: an unframed
#: byte-flood must not grow the buffer without limit.
MAX_REQUEST_LINE_BYTES = 8192

#: Longest accepted header block (request line included).
MAX_HEADER_BYTES = 32768

#: Sentinel chunk terminating a chunked response body.
CHUNKED_EOF = b"0\r\n\r\n"

_REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def reason_phrase(status: int) -> str:
    return _REASONS.get(int(status), "Unknown")


class ProtocolError(Exception):
    """The byte stream violates HTTP/1.1 framing; the connection must close.

    ``status`` is the HTTP status the connection should answer with
    before closing (400 for malformed framing, 431-ish cases map to 400
    too — the v1 error table has no header-specific code, and
    ``MALFORMED_BODY`` covers every unframeable request).
    """

    def __init__(self, message: str, *, status: int = 400, code: str = "MALFORMED_BODY"):
        super().__init__(message)
        self.message = message
        self.status = int(status)
        self.code = code


@dataclass
class RequestHead:
    """One parsed request line + header block (body not yet read).

    ``headers`` keys are lower-cased (HTTP headers are case-insensitive;
    normalizing once keeps every lookup trivial).  ``content_length`` is
    the *validated* declared body size — the parser rejects garbage and
    negative values before the head is ever surfaced, so consumers can
    trust the number (they must still judge it against the body cap).
    """

    method: str
    target: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    content_length: int = 0

    @property
    def keep_alive(self) -> bool:
        """Whether the client permits reusing the connection afterwards.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 defaults to close unless ``Connection: keep-alive``.
        """
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


class RequestParser:
    """Incremental splitter: feed bytes, poll heads and bodies in order.

    One parser per connection.  The caller alternates::

        parser.feed(chunk)
        head = parser.poll_head()      # None until headers complete
        ...admission on head.headers...
        body = parser.poll_body(head)  # None until content_length buffered

    Pipelined requests simply queue in the buffer; after ``poll_body``
    returns, the next ``poll_head`` starts on the following request.
    :meth:`pending_bytes` says whether the client has already sent more
    (the observable signal that it is pipelining).
    """

    def __init__(
        self,
        *,
        max_line: int = MAX_REQUEST_LINE_BYTES,
        max_headers: int = MAX_HEADER_BYTES,
    ) -> None:
        self._buffer = bytearray()
        self._max_line = int(max_line)
        self._max_headers = int(max_headers)

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def pending_bytes(self) -> int:
        """Bytes buffered beyond what has been polled out."""
        return len(self._buffer)

    # ------------------------------------------------------------------ head
    def poll_head(self) -> RequestHead | None:
        """The next request's head, or ``None`` until its headers complete."""
        end = self._buffer.find(b"\r\n\r\n")
        if end < 0:
            # no complete header block yet — but an unbounded wait is an
            # attack surface, so judge the partial buffer against limits
            if len(self._buffer) > self._max_headers:
                raise ProtocolError(
                    f"header block exceeds {self._max_headers} bytes"
                )
            newline = self._buffer.find(b"\r\n")
            if newline < 0 and len(self._buffer) > self._max_line:
                raise ProtocolError(
                    f"request line exceeds {self._max_line} bytes"
                )
            return None
        if end + 4 > self._max_headers:
            raise ProtocolError(f"header block exceeds {self._max_headers} bytes")
        block = bytes(self._buffer[:end])
        del self._buffer[: end + 4]
        lines = block.split(b"\r\n")
        head = self._parse_request_line(lines[0])
        for raw in lines[1:]:
            if not raw:
                continue
            name, sep, value = raw.partition(b":")
            if not sep or not name or name != name.strip():
                raise ProtocolError(f"malformed header line {raw[:80]!r}")
            try:
                key = name.decode("ascii").lower()
                head.headers[key] = value.strip().decode("latin-1")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"non-ascii header name {name[:80]!r}") from exc
        self._validate_body_framing(head)
        return head

    def _parse_request_line(self, line: bytes) -> RequestHead:
        if len(line) > self._max_line:
            raise ProtocolError(f"request line exceeds {self._max_line} bytes")
        try:
            text = line.decode("ascii")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"non-ascii request line {line[:80]!r}") from exc
        parts = text.split(" ")
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line {text[:120]!r}")
        method, target, version = parts
        if not method.isalpha() or method != method.upper():
            raise ProtocolError(f"malformed method {method[:40]!r}")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise ProtocolError(
                f"unsupported protocol version {version[:40]!r}"
            )
        if not target.startswith("/"):
            raise ProtocolError(f"malformed request target {target[:120]!r}")
        return RequestHead(method=method, target=target, version=version)

    def _validate_body_framing(self, head: RequestHead) -> None:
        """Pin down the body length from the headers (never trust later)."""
        if "transfer-encoding" in head.headers:
            # the v1 surface has no streaming *requests*; a chunked body
            # would make the declared-length body cap meaningless
            raise ProtocolError(
                "chunked request bodies are not supported; "
                "send Content-Length"
            )
        raw = head.headers.get("content-length")
        if raw is None:
            head.content_length = 0
            return
        # RFC 9110 says 1*DIGIT, nothing else: Python's int() also
        # accepts '+5', ' 5', and '1_0', and a parser more lenient than
        # the proxy in front of it is the request-smuggling precondition
        if not raw or not all(c in "0123456789" for c in raw):
            raise ProtocolError(f"bad Content-Length {raw!r}")
        head.content_length = int(raw)

    # ------------------------------------------------------------------ body
    def poll_body(self, head: RequestHead) -> bytes | None:
        """The request's full body once buffered, else ``None``."""
        need = head.content_length
        if len(self._buffer) < need:
            return None
        body = bytes(self._buffer[:need])
        del self._buffer[:need]
        return body


# --------------------------------------------------------------------------
# response encoding
# --------------------------------------------------------------------------
def _head_lines(
    status: int,
    content_type: str,
    extra_headers: dict[str, str] | None,
    close: bool,
) -> list[str]:
    lines = [
        f"HTTP/1.1 {int(status)} {reason_phrase(status)}",
        "Server: repro-aio/1",
        f"Content-Type: {content_type}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    if close:
        lines.append("Connection: close")
    return lines


def encode_response(
    status: int,
    body: bytes,
    content_type: str = "application/json; charset=utf-8",
    *,
    extra_headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    """One complete fixed-length response, ready to write."""
    lines = _head_lines(status, content_type, extra_headers, close)
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def encode_json_response(
    status: int,
    payload: dict,
    *,
    extra_headers: dict[str, str] | None = None,
    close: bool = False,
) -> bytes:
    return encode_response(
        status,
        json.dumps(payload).encode("utf-8"),
        extra_headers=extra_headers,
        close=close,
    )


def encode_stream_head(
    content_type: str = "application/x-ndjson; charset=utf-8",
    *,
    close: bool = False,
) -> bytes:
    """Headers committing to a chunked (streaming) response body."""
    lines = _head_lines(200, content_type, None, close)
    lines.append("Transfer-Encoding: chunked")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def encode_chunk(data: bytes) -> bytes:
    """One HTTP/1.1 body chunk: hex size line, payload, CRLF."""
    return f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n"
