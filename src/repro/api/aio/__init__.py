"""Asyncio serving tier: event-loop HTTP/1.1 front end for the v1 API.

The package splits along the seams the design needs tested in
isolation:

* :mod:`repro.api.aio.http11` — pure incremental HTTP/1.1 parsing and
  response encoding (no sockets, no loop);
* :mod:`repro.api.aio.server` — one event loop serving one
  :class:`~repro.api.app.ApiApp`: accept loop, keep-alive, pipelining,
  chunked export streaming, bounded-executor dispatch, graceful drain;
* :mod:`repro.api.aio.supervisor` — the multi-loop topology: N worker
  processes, each its own loop, sharing one port via ``SO_REUSEPORT``;
* ``python -m repro.api.aio`` — the CLI (mirrors
  ``python -m repro.api.http``, plus ``--loops``).
"""

from repro.api.aio.http11 import ProtocolError, RequestHead, RequestParser
from repro.api.aio.server import AioApiServer, serve, serve_background
from repro.api.aio.supervisor import LoopGroup

__all__ = [
    "AioApiServer",
    "LoopGroup",
    "ProtocolError",
    "RequestHead",
    "RequestParser",
    "serve",
    "serve_background",
]
