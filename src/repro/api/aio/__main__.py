"""CLI: ``python -m repro.api.aio`` — serve the v1 API on event loops.

Mirrors ``python -m repro.api.http`` (same demo compendium, same
hardening flags) plus the async-tier knobs: ``--loops`` for the
SO_REUSEPORT multi-loop topology, and the per-loop bounds
(``--pipeline-depth``, ``--max-connections``, ``--executor-threads``,
``--drain-seconds``).

``--loops 1`` (default) serves in-process on one event loop; SIGTERM /
Ctrl-C triggers the graceful drain.  ``--loops N`` spawns N worker
processes sharing the port (see :mod:`repro.api.aio.supervisor`).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
import time

from repro.api.limits import DEFAULT_MAX_BODY_BYTES, RequestGate
from repro.api.transport import DEFAULT_DRAIN_SECONDS
from repro.api.aio.server import (
    DEFAULT_MAX_CONNECTIONS,
    DEFAULT_PIPELINE_DEPTH,
    AioApiServer,
)
from repro.api.aio.supervisor import LoopGroup

_PREFIX = "/v1/"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.aio",
        description="Serve the v1 SPELL query API on asyncio event loops "
                    "(demo compendium).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listening port (0 = ephemeral)")
    parser.add_argument("--loops", type=int, default=1,
                        help="event loops (worker processes) sharing the "
                             "port via SO_REUSEPORT; size to physical cores")
    parser.add_argument("--pipeline-depth", type=int,
                        default=DEFAULT_PIPELINE_DEPTH,
                        help="per-connection window of parsed-but-unanswered "
                             "requests; a full window pauses the read loop")
    parser.add_argument("--max-connections", type=int,
                        default=DEFAULT_MAX_CONNECTIONS,
                        help="per-loop cap on concurrently served "
                             "connections; at the cap the accept loop pauses")
    parser.add_argument("--executor-threads", type=int, default=None,
                        help="threads bridging blocking service calls off "
                             "the loop (default: max(4, cpu count))")
    parser.add_argument("--drain-seconds", type=float,
                        default=DEFAULT_DRAIN_SECONDS,
                        help="bound on the graceful drain of in-flight "
                             "requests at shutdown")
    parser.add_argument("--store-dir", default=None,
                        help="persistent index directory (mmap cold start; "
                             "with --loops > 1, workers share the store)")
    parser.add_argument("--store-verify", choices=("eager", "lazy"), default=None,
                        help="shard integrity policy at store load: eager "
                             "hashes every shard before serving (quarantine + "
                             "rebuild on mismatch); lazy keeps the zero-copy "
                             "mmap cold start and defers to a verify scrub. "
                             "Default: eager for in-RAM loads, lazy for mmap")
    parser.add_argument("--dtype", choices=("float64", "float32"), default="float64")
    parser.add_argument("--n-workers", type=int, default=4)
    parser.add_argument("--n-procs", type=int, default=1)
    parser.add_argument("--pool-timeout", type=float, default=120.0)
    parser.add_argument("--cache-size", type=int, default=256)
    parser.add_argument("--cache-min-cost", type=int, default=0)
    parser.add_argument("--synth-datasets", type=int, default=12)
    parser.add_argument("--synth-genes", type=int, default=300)
    parser.add_argument("--synth-conditions", type=int, default=14)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--auth-token-file", default=None,
                        help="file holding the shared bearer token; when "
                             "set, requests (except /v1/health) must send "
                             "'Authorization: Bearer <token>' or get 401")
    parser.add_argument("--auth-tokens-file", default=None,
                        help="multi-credential file, one 'principal:token' "
                             "per line; each principal gets its own "
                             "--token-rate-limit quota bucket")
    parser.add_argument("--rate-limit", type=float, default=0.0,
                        help="per-client requests/second (token bucket; 0 "
                             "disables); over-budget clients get 429")
    parser.add_argument("--rate-burst", type=int, default=None)
    parser.add_argument("--token-rate-limit", type=float, default=0.0,
                        help="per-authenticated-principal requests/second "
                             "quota, distinct from the per-peer --rate-limit "
                             "(0 disables)")
    parser.add_argument("--token-rate-burst", type=int, default=None)
    parser.add_argument("--tenant-rate-limit", type=float, default=0.0,
                        help="per-compendium requests/second budget across "
                             "all callers (0 disables)")
    parser.add_argument("--tenant-rate-burst", type=int, default=None)
    parser.add_argument("--max-body-bytes", type=int,
                        default=DEFAULT_MAX_BODY_BYTES)
    parser.add_argument("--catalog-root", default=None,
                        help="multi-tenant catalog directory: each tenant "
                             "compendium lives under <root>/<tenant>/ with "
                             "its own datasets/ and store/; requests carry "
                             "the tenant in the 'compendium' field. With "
                             "--loops > 1 each worker holds its own catalog "
                             "view: an ingest is visible to its own loop "
                             "immediately and to sibling loops at their next "
                             "tenant (re)load")
    parser.add_argument("--max-resident", type=int, default=4,
                        help="LRU bound on tenants resident in RAM at once "
                             "(the default tenant is pinned and not counted "
                             "against evictions)")
    parser.add_argument("--verbose", action="store_true",
                        help="log drain/teardown events to stderr")
    return parser


def _read_auth_token(parser: argparse.ArgumentParser,
                     args: argparse.Namespace) -> str | None:
    if args.auth_token_file is None:
        return None
    with open(args.auth_token_file, encoding="utf-8") as fh:
        token = fh.read().strip()
    if not token:
        parser.error(f"auth token file {args.auth_token_file!r} is empty")
    return token


def _print_examples(host: str, port: int, example_query: str | None) -> None:
    print(f"serving v1 API on http://{host}:{port}{_PREFIX}", flush=True)
    print(f"  try: curl http://{host}:{port}/v1/health", flush=True)
    if example_query is not None:
        print(
            f"  try: curl -X POST http://{host}:{port}/v1/search "
            f"-d '{example_query}'",
            flush=True,
        )
    print(f"  try: curl http://{host}:{port}/v1/datasets", flush=True)


def _serve_single(args: argparse.Namespace, auth_token: str | None,
                  auth_tokens: dict[str, str]) -> int:
    """One in-process event loop (the --loops 1 path)."""
    from repro.api.app import ApiApp
    from repro.api.http import _build_catalog, _build_service, _gate_kwargs

    service, truth = _build_service(args)
    catalog = _build_catalog(args, service)
    gate = RequestGate(**_gate_kwargs(args, auth_token, auth_tokens))
    app = ApiApp(service, gate=gate, catalog=catalog)
    server = AioApiServer(
        app,
        host=args.host,
        port=args.port,
        pipeline_depth=args.pipeline_depth,
        max_connections=args.max_connections,
        executor_threads=args.executor_threads,
        drain_seconds=args.drain_seconds,
        quiet=not args.verbose,
    )
    host, port = server.server_address[:2]
    example = json.dumps({"genes": list(truth.query_genes), "page_size": 10})
    _print_examples(host, port, example)

    async def _main() -> None:
        task = asyncio.current_task()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, task.cancel)
        await server.serve_forever()

    try:
        asyncio.run(_main())
    finally:
        if catalog is not None:
            catalog.close()
        service.close()
    return 0


def _serve_group(args: argparse.Namespace, auth_token: str | None,
                 auth_tokens: dict[str, str]) -> int:
    """N spawned loops sharing the port (the --loops > 1 path)."""
    group = LoopGroup(
        n_loops=args.loops,
        host=args.host,
        port=args.port,
        factory_kwargs={
            "synth_datasets": args.synth_datasets,
            "synth_genes": args.synth_genes,
            "synth_conditions": args.synth_conditions,
            "seed": args.seed,
            "n_workers": args.n_workers,
            "n_procs": args.n_procs,
            "cache_size": args.cache_size,
            "cache_min_cost": args.cache_min_cost,
            "dtype": args.dtype,
            "store_dir": args.store_dir,
            "store_verify": args.store_verify,
            "pool_timeout": args.pool_timeout,
            "auth_token": auth_token,
            "auth_tokens": auth_tokens,
            "rate_limit": args.rate_limit,
            "rate_burst": args.rate_burst,
            "token_rate_limit": args.token_rate_limit,
            "token_rate_burst": args.token_rate_burst,
            "tenant_rate_limit": args.tenant_rate_limit,
            "tenant_rate_burst": args.tenant_rate_burst,
            "max_body_bytes": args.max_body_bytes,
            "catalog_root": args.catalog_root,
            "max_resident": args.max_resident,
        },
        server_options={
            "pipeline_depth": args.pipeline_depth,
            "max_connections": args.max_connections,
            "executor_threads": args.executor_threads,
            "drain_seconds": args.drain_seconds,
            "quiet": not args.verbose,
        },
    )
    group.start()
    _print_examples(args.host, group.port, None)
    print(f"  loops: {args.loops} (SO_REUSEPORT)", flush=True)

    stop = {"signaled": False}

    def _on_term(signum, frame) -> None:
        stop["signaled"] = True

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    try:
        while not stop["signaled"] and all(group.alive()):
            time.sleep(0.2)
    finally:
        killed = group.stop()
        if killed and args.verbose:
            sys.stderr.write(f"repro.api.aio: killed {killed} worker(s) "
                             f"past the drain bound\n")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)
    if args.loops < 1:
        parser.error("--loops must be >= 1")
    auth_token = _read_auth_token(parser, args)
    from repro.api.http import _read_auth_tokens

    try:
        auth_tokens = _read_auth_tokens(args.auth_tokens_file)
    except ValueError as exc:
        parser.error(str(exc))
    try:
        if args.loops == 1:
            return _serve_single(args, auth_token, auth_tokens)
        return _serve_group(args, auth_token, auth_tokens)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
