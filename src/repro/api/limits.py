"""Serving hardening for the API boundary: auth, rate limits, body caps.

The HTTP facade fronts a shared index for many tenants; before this
module, any client could hold the service hostage — an unauthenticated
loop of deep queries monopolizes the scoring arena, and a single bogus
``Content-Length: 2GB`` header used to be an allocation request.  The
:class:`RequestGate` centralizes the three defenses the ROADMAP names
("auth/rate limits on the HTTP facade") so that **every transport
inherits them**: :meth:`repro.api.app.ApiApp.handle_wire` (and the
export streaming path) run ``gate.admit(endpoint, context)`` before any
work, and a transport only has to describe the request in a
:class:`RequestContext`:

* **Bearer-token auth** — a single shared token (read from
  ``--auth-token-file`` by the CLI), compared constant-time with
  :func:`hmac.compare_digest` so the comparison leaks no prefix timing.
  Failure is the stable ``UNAUTHORIZED`` code (HTTP 401).
* **Token-bucket rate limiting** — per client key.  The key is the
  *transport-assigned* ``client`` (the HTTP facade uses the peer
  address); a caller-declared key (``declared_client``, from the
  ``X-Client-Id`` header) is honored **only on authenticated
  requests** — the caller then holds the shared secret (e.g. a trusted
  frontend forwarding tenant ids), whereas an anonymous client could
  otherwise mint a fresh bucket (and a fresh burst) per request and
  void the limit entirely.  Each key gets a bucket of ``rate_burst``
  tokens refilled at ``rate_limit`` tokens/second; an empty bucket
  answers ``RATE_LIMITED`` (HTTP 429) with a machine-usable
  ``retry_after_ms`` in the error details.  The key map is itself
  bounded (LRU) so an attacker spraying client ids cannot grow it
  without limit.
* **Request body cap** — bodies over ``max_body_bytes`` are rejected
  with ``BODY_TOO_LARGE`` (HTTP 413).  Transports that know the
  declared size *before* reading (HTTP ``Content-Length``) must check
  via :meth:`RequestGate.check_body` pre-read — rejecting after
  allocation defends nothing.
* **Per-token quotas** — with ``auth_tokens`` (token -> principal name)
  the gate recognizes *many* credentials, and ``token_rate_limit``
  gives each authenticated principal its own bucket, **distinct from**
  the per-peer buckets above: the peer bucket throttles a network
  endpoint, the token bucket throttles an identity no matter how many
  addresses it connects from.  Both run inside ``admit`` (the token
  rides in the headers, so admission sees it pre-body).
* **Per-tenant budgets** — ``tenant_rate_limit`` bounds how fast any
  one *compendium* may be queried, across all callers.  The tenant
  name rides in the request body, which transports admit before
  reading — so this charge happens post-parse via
  :meth:`RequestGate.charge_tenant`, called by ``ApiApp`` once the
  request's tenant is known.  All three limiter failures answer the
  same stable ``RATE_LIMITED`` code with ``retry_after_ms`` (a
  ``scope`` detail says which budget ran dry), so every transport's
  existing ``Retry-After`` derivation keeps working unchanged.

``/v1/health`` stays exempt from auth and rate limiting by default:
liveness probes must not flap when a deploy rotates tokens or a probe
loop exceeds the tenant budget.  All counters are surfaced in the
health payload (``limits``) so the policy's behavior is observable.
"""

from __future__ import annotations

import hmac
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping

from repro.api.errors import ApiError

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "RequestContext",
    "TokenBucket",
    "RateLimiter",
    "RequestGate",
]

#: Largest request body admitted by default (a batch of thousands of
#: queries fits comfortably; anything larger is a client bug).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024

#: Endpoints exempt from auth + rate limiting by default (liveness
#: probes must keep answering while credentials rotate).
DEFAULT_EXEMPT = ("health",)


@dataclass(frozen=True)
class RequestContext:
    """What a transport knows about one request, for admission control.

    ``client`` is the *transport-assigned* rate-limiting key (the HTTP
    facade uses the peer address — something the client cannot forge
    per request); ``declared_client`` is a caller-supplied key
    (``X-Client-Id``) that the gate honors only once auth has vouched
    for the caller.  ``auth_token`` is the presented bearer token
    (``None`` when absent); ``body_bytes`` is the declared or observed
    request body size (``None`` when unknown).  ``admitted=True``
    marks a context whose transport already ran :meth:`RequestGate.admit`
    (e.g. the HTTP facade, which must gate *before* reading the body);
    the gate then skips re-checking so one request never spends two
    tokens.  In-process callers that pass no context bypass the gate
    entirely — admission control is a *transport* boundary concern.
    """

    client: str = "local"
    auth_token: str | None = None
    body_bytes: int | None = None
    declared_client: str | None = None
    admitted: bool = False


class TokenBucket:
    """One client's budget: ``burst`` tokens, refilled at ``rate``/second.

    Not thread-safe on its own — :class:`RateLimiter` serializes access.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = float(now)

    def try_acquire(self, now: float) -> float:
        """Spend one token; returns 0.0 on success, else seconds until
        the next token becomes available (the ``Retry-After`` hint)."""
        elapsed = max(0.0, now - self.stamp)
        self.stamp = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-client token buckets behind one lock, with a bounded key map.

    ``check(client)`` returns 0.0 when the request is admitted, else the
    seconds the client should wait.  At most ``max_clients`` buckets are
    retained (least-recently-seen evicted first), so hostile key
    churn cannot grow the map without bound — an evicted client simply
    restarts from a full burst, which errs on the side of serving.
    """

    def __init__(
        self, rate: float, burst: int | None = None, *, max_clients: int = 4096
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 tokens/second, got {rate}")
        self.rate = float(rate)
        self.burst = max(1, int(burst if burst is not None else math.ceil(rate)))
        self.max_clients = max(1, int(max_clients))
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._lock = threading.Lock()

    def check(self, client: str, now: float | None = None) -> float:
        now = time.monotonic() if now is None else float(now)
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            else:
                self._buckets.move_to_end(client)
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
            return bucket.try_acquire(now)


class RequestGate:
    """Admission control every transport runs before touching the service.

    ``auth_token=None`` disables auth, ``rate_limit=0`` disables rate
    limiting, and the body cap always applies (it defends the process,
    not a tenant policy).  ``admit`` raises :class:`ApiError` with the
    stable codes ``UNAUTHORIZED`` / ``RATE_LIMITED`` / ``BODY_TOO_LARGE``;
    a ``context`` of ``None`` (in-process caller) is always admitted.
    """

    def __init__(
        self,
        *,
        auth_token: str | None = None,
        auth_tokens: Mapping[str, str] | None = None,
        rate_limit: float = 0.0,
        rate_burst: int | None = None,
        token_rate_limit: float = 0.0,
        token_rate_burst: int | None = None,
        tenant_rate_limit: float = 0.0,
        tenant_rate_burst: int | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        exempt: tuple[str, ...] = DEFAULT_EXEMPT,
    ) -> None:
        # one credential map: the legacy single token becomes principal
        # "default", so every downstream consumer (quota key, stats)
        # sees exactly one shape
        self._principals: dict[str, str] = {
            str(tok): str(name) for tok, name in (auth_tokens or {}).items() if tok
        }
        if auth_token:
            self._principals.setdefault(str(auth_token), "default")
        self.auth_token = auth_token if auth_token else None
        self.max_body_bytes = int(max_body_bytes)
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {max_body_bytes}"
            )
        self.rate_limit = max(0.0, float(rate_limit))
        self._limiter = (
            RateLimiter(self.rate_limit, rate_burst) if self.rate_limit > 0 else None
        )
        self.token_rate_limit = max(0.0, float(token_rate_limit))
        self._token_limiter = (
            RateLimiter(self.token_rate_limit, token_rate_burst)
            if self.token_rate_limit > 0
            else None
        )
        self.tenant_rate_limit = max(0.0, float(tenant_rate_limit))
        self._tenant_limiter = (
            RateLimiter(self.tenant_rate_limit, tenant_rate_burst)
            if self.tenant_rate_limit > 0
            else None
        )
        self.exempt = frozenset(exempt)
        self._lock = threading.Lock()
        self.unauthorized = 0
        self.rate_limited = 0
        self.token_limited = 0
        self.tenant_limited = 0
        self.body_rejected = 0

    @property
    def auth_required(self) -> bool:
        return bool(self._principals)

    # --------------------------------------------------------------- checks
    def check_body(self, body_bytes: int | None) -> None:
        """Reject an overlong (declared or observed) body — call this
        *before* reading the body off the wire."""
        if body_bytes is not None and int(body_bytes) > self.max_body_bytes:
            with self._lock:
                self.body_rejected += 1
            raise ApiError(
                "BODY_TOO_LARGE",
                f"request body of {int(body_bytes)} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
                details={
                    "body_bytes": int(body_bytes),
                    "max_body_bytes": self.max_body_bytes,
                },
            )

    def _check_auth(self, context: RequestContext) -> str | None:
        """Validate the bearer token; returns the principal name.

        ``None`` means auth is disabled.  Every configured credential is
        compared with :func:`hmac.compare_digest` and the scan never
        short-circuits, so the comparison leaks neither a prefix nor
        *which* token matched.
        """
        if not self._principals:
            return None
        presented = context.auth_token
        principal = None
        if presented is not None:
            raw = presented.encode("utf-8")
            for token, name in self._principals.items():
                if hmac.compare_digest(raw, token.encode("utf-8")):
                    principal = name
        if principal is None:
            with self._lock:
                self.unauthorized += 1
            raise ApiError(
                "UNAUTHORIZED",
                "missing or invalid bearer token"
                if presented is None
                else "invalid bearer token",
                details={"scheme": "Bearer"},
            )
        return principal

    def _rate_key(self, context: RequestContext) -> str:
        """The bucket key for one request.

        The caller-declared key (``X-Client-Id``) is only honored when
        auth is on — ``admit`` runs the auth check first, so reaching
        here means the token was validated and the caller is trusted to
        forward tenant ids.  Anonymous requests always key on the
        transport-assigned ``client`` (peer address): a spoofable key
        would hand every request a fresh bucket and void the limit.
        """
        if self._principals and context.declared_client:
            return str(context.declared_client)
        return str(context.client)

    def _check_rate(self, context: RequestContext) -> None:
        if self._limiter is None:
            return
        key = self._rate_key(context)
        wait = self._limiter.check(key)
        if wait > 0.0:
            with self._lock:
                self.rate_limited += 1
            retry_after_ms = max(1, int(math.ceil(wait * 1000.0)))
            raise ApiError(
                "RATE_LIMITED",
                f"client {key!r} exceeded "
                f"{self.rate_limit:g} requests/second; retry in "
                f"{retry_after_ms} ms",
                details={
                    "retry_after_ms": retry_after_ms,
                    "rate_limit_per_second": self.rate_limit,
                },
            )

    def _check_token_quota(self, principal: str | None) -> None:
        """Spend one token from the authenticated principal's quota.

        Distinct from the per-peer buckets: this keys on *who* the
        caller is (the credential's principal), not where they connect
        from, so a tenant cannot multiply its quota by fanning out over
        addresses.  Only meaningful once auth identified a principal.
        """
        if self._token_limiter is None or principal is None:
            return
        wait = self._token_limiter.check(f"token:{principal}")
        if wait > 0.0:
            with self._lock:
                self.token_limited += 1
            retry_after_ms = max(1, int(math.ceil(wait * 1000.0)))
            raise ApiError(
                "RATE_LIMITED",
                f"token {principal!r} exceeded its "
                f"{self.token_rate_limit:g} requests/second quota; retry in "
                f"{retry_after_ms} ms",
                details={
                    "retry_after_ms": retry_after_ms,
                    "rate_limit_per_second": self.token_rate_limit,
                    "scope": "token",
                    "principal": principal,
                },
            )

    def charge_tenant(self, tenant: str, context: RequestContext | None) -> None:
        """Spend one token from a tenant compendium's rate budget.

        The tenant name rides in the request *body*, which transports
        admit before reading — so this runs post-parse, called by
        ``ApiApp`` once the request's tenant is resolved.  In-process
        callers (``context is None``) bypass it like every other check:
        admission control is a transport boundary concern.
        """
        if self._tenant_limiter is None or context is None:
            return
        wait = self._tenant_limiter.check(f"tenant:{tenant}")
        if wait > 0.0:
            with self._lock:
                self.tenant_limited += 1
            retry_after_ms = max(1, int(math.ceil(wait * 1000.0)))
            raise ApiError(
                "RATE_LIMITED",
                f"compendium {tenant!r} exceeded its "
                f"{self.tenant_rate_limit:g} requests/second budget; retry in "
                f"{retry_after_ms} ms",
                details={
                    "retry_after_ms": retry_after_ms,
                    "rate_limit_per_second": self.tenant_rate_limit,
                    "scope": "tenant",
                    "compendium": tenant,
                },
            )

    def admit(self, endpoint: str, context: RequestContext | None) -> None:
        """Run every check for one request; raises on the first failure.

        Order: auth (an unauthenticated flood must not drain a tenant's
        bucket), then the authenticated principal's quota, then the
        per-peer rate limit, then the body cap.  ``health`` (and any
        other ``exempt`` endpoint) skips auth + rate limiting but still
        honors the body cap.  A context marked ``admitted`` was already
        gated by its transport (pre-body-read) and passes through — no
        double-spent tokens, no double-counted rejections.
        """
        if context is None or context.admitted:
            return
        if endpoint not in self.exempt:
            principal = self._check_auth(context)
            self._check_token_quota(principal)
            self._check_rate(context)
        self.check_body(context.body_bytes)

    # ---------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Counters + configuration for the health payload."""
        with self._lock:
            return {
                "auth_required": bool(self._principals),
                "auth_principals": len(self._principals),
                "rate_limit_per_second": self.rate_limit,
                "token_rate_limit_per_second": self.token_rate_limit,
                "tenant_rate_limit_per_second": self.tenant_rate_limit,
                "max_body_bytes": self.max_body_bytes,
                "unauthorized": self.unauthorized,
                "rate_limited": self.rate_limited,
                "token_limited": self.token_limited,
                "tenant_limited": self.tenant_limited,
                "body_rejected": self.body_rejected,
            }
