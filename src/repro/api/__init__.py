"""repro.api — the versioned, transport-agnostic query API (v1).

This package is the architectural seam between the analysis core and
every frontend: a typed wire protocol (:mod:`repro.api.protocol`), a
unified error model (:mod:`repro.api.errors`), one application object
routing to SPELL / clustering / rendering (:mod:`repro.api.app`), and a
stdlib HTTP facade (:mod:`repro.api.http`).  See the ROADMAP's
"Versioned query API" section for the endpoint list, wire schema, error
codes, and compatibility policy.

``protocol`` and ``errors`` are import-light (they never touch the
analysis core) and load eagerly; ``ApiApp`` and the HTTP helpers import
:mod:`repro.spell` and load lazily via module ``__getattr__`` — which is
also what lets :mod:`repro.spell.service` import the protocol types
without a cycle.
"""

from repro.api.errors import API_VERSION, ERROR_STATUS, ApiError, as_api_error, error_payload
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ClusterRequest,
    ClusterResponse,
    DatasetInfo,
    DatasetListRequest,
    DatasetListResponse,
    HealthResponse,
    RenderRequest,
    RenderResponse,
    SearchRequest,
    SearchResponse,
)

__all__ = [
    "API_VERSION",
    "ERROR_STATUS",
    "ApiError",
    "as_api_error",
    "error_payload",
    "SearchRequest",
    "BatchSearchRequest",
    "DatasetListRequest",
    "ClusterRequest",
    "RenderRequest",
    "SearchResponse",
    "BatchSearchResponse",
    "DatasetInfo",
    "DatasetListResponse",
    "ClusterResponse",
    "RenderResponse",
    "HealthResponse",
    # lazy (see __getattr__): the application object and HTTP facade
    "ApiApp",
    "ENDPOINTS",
    "ApiHTTPServer",
    "serve",
    "serve_background",
]

_LAZY = {
    "ApiApp": ("repro.api.app", "ApiApp"),
    "ENDPOINTS": ("repro.api.app", "ENDPOINTS"),
    "ApiHTTPServer": ("repro.api.http", "ApiHTTPServer"),
    "serve": ("repro.api.http", "serve"),
    "serve_background": ("repro.api.http", "serve_background"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
