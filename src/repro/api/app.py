"""Transport-agnostic application object behind every API frontend.

:class:`ApiApp` routes protocol requests (:mod:`repro.api.protocol`) to
the analysis core — :class:`~repro.spell.service.SpellService` for
search, :mod:`repro.cluster` for dendrograms, :mod:`repro.viz` for
heatmap rendering — behind one object that any transport can host: the
stdlib HTTP facade (:mod:`repro.api.http`), an in-process caller, or a
test harness.  Responsibilities:

* **Routing** — ``handle_wire(endpoint, payload)`` parses, dispatches,
  and serializes entirely in wire (JSON-object) space, so transports
  never import protocol types.
* **Error discipline** — every failure crossing the boundary becomes a
  stable code (:mod:`repro.api.errors`); precise codes (``UNKNOWN_GENE``,
  ``UNKNOWN_DATASET``) are raised here, before the generic buckets.
* **Observability** — per-endpoint count/error/latency counters, served
  by the ``health`` endpoint.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import replace

from repro.api.errors import ApiError, as_api_error, error_payload
from repro.api.limits import RequestContext, RequestGate
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ClusterRequest,
    ClusterResponse,
    DatasetInfo,
    DatasetListRequest,
    DatasetListResponse,
    ExportRequest,
    ExportTrailer,
    HealthResponse,
    RenderRequest,
    RenderResponse,
    SearchRequest,
    SearchResponse,
)
from repro.api.routes import ROUTES, all_endpoints, stream_endpoints, unary_endpoints
from repro.cluster.hierarchical import hierarchical_cluster
from repro.spell.engine import SpellResult
from repro.spell.service import SpellService
from repro.util.deadline import Deadline
from repro.util.timing import Stopwatch
from repro.viz.colormap import get_colormap
from repro.viz.heatmap import render_heatmap_block
from repro.viz.ppm import encode_ppm

__all__ = ["ApiApp", "ENDPOINTS", "ROUTES", "STREAM_ENDPOINTS", "all_endpoints"]

#: endpoint name -> (request type or None, ApiApp method name) — derived
#: from the declarative registry (:mod:`repro.api.routes`), which is the
#: single registration point every facade shares.  The names stay
#: exported for transports and tests that consume the dispatch tables.
ENDPOINTS: dict[str, tuple[type | None, str]] = unary_endpoints()

#: Streaming endpoints answer with a *sequence* of NDJSON lines, not one
#: JSON body, so they dispatch through :meth:`ApiApp.export` rather than
#: ``handle_wire`` (whose (status, body) contract cannot stream).
STREAM_ENDPOINTS: dict[str, type] = stream_endpoints()


class _EndpointStats:
    """Thread-safe per-endpoint serving counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, dict[str, float]] = {}

    def record(self, endpoint: str, seconds: float, *, error: bool) -> None:
        with self._lock:
            row = self._data.setdefault(
                endpoint, {"count": 0, "errors": 0, "total_seconds": 0.0}
            )
            row["count"] += 1
            row["errors"] += 1 if error else 0
            row["total_seconds"] += float(seconds)

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            out = {}
            for endpoint, row in self._data.items():
                count = int(row["count"])
                out[endpoint] = {
                    "count": count,
                    "errors": int(row["errors"]),
                    "total_seconds": row["total_seconds"],
                    "mean_seconds": row["total_seconds"] / count if count else 0.0,
                }
            return out


class ApiApp:
    """One analysis core, many frontends: the v1 API application object.

    ``gate`` is the admission-control policy (:mod:`repro.api.limits`):
    auth, per-client rate limits, and the request body cap run in
    :meth:`handle_wire` / :meth:`export` *before* any routing or
    parsing, so every transport inherits the hardening by passing a
    :class:`RequestContext`.  Transports that pass no context (trusted
    in-process callers, tests) bypass the gate.
    """

    def __init__(self, service: SpellService, *, gate: RequestGate | None = None) -> None:
        self.service = service
        self.gate = gate if gate is not None else RequestGate()
        self._stats = _EndpointStats()
        self._started = time.monotonic()
        self._universe_lock = threading.Lock()
        self._universe: tuple[int, frozenset[str]] | None = None

    # ------------------------------------------------------------- wire layer
    def handle_wire(
        self, endpoint: str, payload, *, context: RequestContext | None = None
    ) -> tuple[int, dict]:
        """Dispatch one wire request; returns ``(http_status, json_body)``.

        Never raises: every failure — gate rejection, unknown endpoint,
        malformed payload, downstream error — comes back as a structured
        error payload with its mapped status code.
        """
        route = ENDPOINTS.get(endpoint)
        stats_key = endpoint if route is not None else "(unknown)"
        try:
            self.gate.admit(endpoint, context)
        except ApiError as err:
            # rejected before any handler ran: count it here so a flood
            # of 401/429/413s is visible in /v1/health error rates
            self._stats.record(stats_key, 0.0, error=True)
            return err.http_status, error_payload(err)
        if route is None:
            err = ApiError(
                "UNKNOWN_ENDPOINT",
                f"no endpoint {endpoint!r}",
                details={"endpoints": all_endpoints()},
            )
            # one fixed sentinel key, not the caller-supplied string: a
            # client spraying bogus names must not grow the stats map
            # (and the /v1/health payload) without bound
            self._stats.record("(unknown)", 0.0, error=True)
            return err.http_status, error_payload(err)
        request_cls, method = route
        try:
            if request_cls is None:
                response = getattr(self, method)()
            else:
                try:
                    request = request_cls.from_wire(payload if payload is not None else {})
                except Exception:
                    # handler never ran, so _timed() never counted this
                    # request — record the parse failure here or /v1/health
                    # under-reports error rates during a malformed flood
                    self._stats.record(endpoint, 0.0, error=True)
                    raise
                response = getattr(self, method)(request)
        except Exception as exc:  # noqa: BLE001 — the boundary swallows all
            err = as_api_error(exc)
            return err.http_status, error_payload(err)
        return 200, response.to_wire()

    # -------------------------------------------------------------- endpoints
    def search(self, request: SearchRequest) -> SearchResponse:
        with self._timed("search"):
            # the budget starts at admission, so validation time counts
            # against the client's deadline_ms too
            budget = Deadline.after_ms(request.deadline_ms)
            self._check(request)
            return self.service.respond(request, deadline=budget)

    def search_batch(self, request: BatchSearchRequest) -> BatchSearchResponse:
        with self._timed("search/batch"):
            budget = Deadline.after_ms(request.deadline_ms)
            for member in request.searches:
                self._check(member)
            return self.service.respond_batch(request, deadline=budget)

    def datasets(self, request: DatasetListRequest) -> DatasetListResponse:
        with self._timed("datasets"):
            return DatasetListResponse(
                datasets=tuple(
                    DatasetInfo(
                        name=ds.name,
                        n_genes=ds.n_genes,
                        n_conditions=ds.n_conditions,
                        metadata=dict(ds.metadata),
                    )
                    for ds in self.service.compendium
                )
            )

    def cluster(self, request: ClusterRequest) -> ClusterResponse:
        """Hierarchically cluster the top genes of a search result.

        The expression submatrix comes from the named dataset (or the
        search's top-weighted one); genes absent from that dataset are
        dropped, and at least two must survive.
        """
        with self._timed("cluster"):
            with Stopwatch() as sw:
                result = self._full_result(request.search)
                dataset, matrix = self._gene_submatrix(
                    result, request.dataset,
                    self._gene_limit(request.search, request.top_genes),
                )
                if matrix.n_genes < 2:
                    raise ApiError(
                        "INVALID_REQUEST",
                        f"only {matrix.n_genes} of the top {request.top_genes} "
                        f"genes are present in dataset {dataset!r}; "
                        "clustering needs at least 2",
                    )
                tree = hierarchical_cluster(
                    matrix.values,
                    metric=request.metric,
                    linkage=request.linkage,
                    leaf_ids=matrix.gene_ids,
                )
            return ClusterResponse(
                genes=tuple(matrix.gene_ids[i] for i in tree.leaf_order()),
                dataset=dataset,
                metric=request.metric,
                linkage=request.linkage,
                merges=tuple(
                    (int(left), int(right), float(height), int(size))
                    for left, right, height, size in tree.to_merges()
                ),
                elapsed_seconds=sw.elapsed,
            )

    def render_heatmap(self, request: RenderRequest) -> RenderResponse:
        """Render the top genes of a search result as a PPM heatmap."""
        with self._timed("render/heatmap"):
            with Stopwatch() as sw:
                result = self._full_result(request.search)
                dataset, matrix = self._gene_submatrix(
                    result, request.dataset,
                    self._gene_limit(request.search, request.top_genes),
                )
                if matrix.n_genes < 1:
                    raise ApiError(
                        "INVALID_REQUEST",
                        f"none of the top {request.top_genes} genes are "
                        f"present in dataset {dataset!r}",
                    )
                if request.cluster and matrix.n_genes >= 2:
                    tree = hierarchical_cluster(
                        matrix.values, leaf_ids=matrix.gene_ids
                    )
                    matrix = matrix.reorder_genes(tree.leaf_order())
                colormap = get_colormap(request.colormap)
                if request.saturation is not None:
                    colormap = colormap.with_saturation(request.saturation)
                width = matrix.n_conditions * request.cell_width
                height = matrix.n_genes * request.cell_height
                pixels = render_heatmap_block(
                    matrix.values,
                    colormap,
                    x=0, y=0, w=width, h=height,
                    rx=0, ry=0, rw=width, rh=height,
                )
            return RenderResponse(
                width=width,
                height=height,
                dataset=dataset,
                colormap=request.colormap,
                genes=tuple(matrix.gene_ids),
                ppm=encode_ppm(pixels),
                elapsed_seconds=sw.elapsed,
            )

    def render_heatmap_wire(
        self, payload, *, context: RequestContext | None = None
    ) -> RenderResponse:
        """Parse-and-render for transports that need the typed response
        (the ``?format=ppm`` raw-bytes path).  Gate rejections and parse
        failures count toward the endpoint's error stats exactly as in
        ``handle_wire``.
        """
        try:
            self.gate.admit("render/heatmap", context)
            request = RenderRequest.from_wire(payload if payload is not None else {})
        except Exception:
            self._stats.record("render/heatmap", 0.0, error=True)
            raise
        return self.render_heatmap(request)

    # ------------------------------------------------------ streaming export
    def export(self, payload, *, context: RequestContext | None = None):
        """``search/export``: returns an iterator of NDJSON lines (bytes).

        Everything that can fail *before* streaming — gate rejection,
        parse errors, unknown genes/datasets, the search itself — raises
        here (as :class:`ApiError` or a mappable exception), so a
        transport can still answer with an ordinary error status.  Once
        the iterator is handed back, failure mid-walk surfaces as a
        final ``status="error"`` trailer line carrying the structured
        error — a consumer always sees either an ``ok`` trailer with a
        matching checksum or an explicit error, never a silently
        truncated stream.
        """
        endpoint = "search/export"
        sw = Stopwatch()
        sw.start()
        try:
            self.gate.admit(endpoint, context)
            request = ExportRequest.from_wire(payload if payload is not None else {})
            budget = Deadline.after_ms(request.deadline_ms)
            self._check(request)
            cursor = self.service.iter_result(request, deadline=budget)
        except BaseException:
            self._stats.record(endpoint, sw.stop(), error=True)
            raise
        return self._encode_export(cursor, sw)

    def _encode_export(self, cursor, sw: Stopwatch):
        """Serialize an export cursor to NDJSON, checksumming chunk bytes.

        The checksum is ``sha256`` over the exact bytes of every chunk
        line (newline included) in stream order — the trailer promises
        integrity of what was actually sent, so it must hash wire bytes,
        not protocol objects.
        """
        endpoint = "search/export"
        digest = hashlib.sha256()
        n_chunks = 0
        total_rows = 0
        recorded = False
        try:
            for item in cursor:
                if isinstance(item, ExportTrailer):
                    trailer = replace(
                        item,
                        checksum=f"sha256:{digest.hexdigest()}",
                        n_chunks=n_chunks,
                        total_rows=total_rows,
                    )
                    self._stats.record(endpoint, sw.stop(), error=False)
                    recorded = True
                    yield json.dumps(trailer.to_wire()).encode("utf-8") + b"\n"
                    return
                line = json.dumps(item.to_wire()).encode("utf-8") + b"\n"
                digest.update(line)
                n_chunks += 1
                total_rows += len(item.gene_rows)
                yield line
            raise RuntimeError("export cursor ended without a trailer")
        except GeneratorExit:
            # consumer went away mid-stream (client disconnect): the
            # export did not complete — count it as an error
            if not recorded:
                self._stats.record(endpoint, sw.stop(), error=True)
            raise
        except Exception as exc:  # noqa: BLE001 — the stream boundary
            err = as_api_error(exc)
            if not recorded:
                self._stats.record(endpoint, sw.stop(), error=True)
            yield json.dumps(
                ExportTrailer(
                    status="error",
                    total_rows=total_rows,
                    n_chunks=n_chunks,
                    checksum=f"sha256:{digest.hexdigest()}",
                    error=error_payload(err)["error"],
                ).to_wire()
            ).encode("utf-8") + b"\n"

    def health(self) -> HealthResponse:
        with self._timed("health"):
            service = self.service
            # sharded services report per-node routing state; single-node
            # services have no shard_stats and answer the v1 default ({})
            shard_stats = getattr(service, "shard_stats", None)
            # storage tiers exist only where a SpellService owns a store;
            # router frontends answer the v1 default ({})
            storage_stats = getattr(service, "storage_stats", None)
            return HealthResponse(
                status="ok",
                uptime_seconds=time.monotonic() - self._started,
                datasets=len(service.compendium),
                genes=len(self._gene_universe()),
                index_bytes=service.index_bytes(),
                query_count=service.query_count,
                cache=service.cache_stats(),
                endpoints=self._stats.snapshot(),
                serving=service.serving_stats(),
                limits=self.gate.stats(),
                shards=shard_stats() if callable(shard_stats) else {},
                storage=storage_stats() if callable(storage_stats) else {},
            )

    def endpoint_stats(self) -> dict[str, dict[str, float]]:
        return self._stats.snapshot()

    def record_rejection(self, endpoint: str) -> None:
        """Count a transport-level gate rejection against an endpoint.

        A transport that gates *before* reading the body (the HTTP
        facade) rejects requests ``handle_wire`` never sees; this keeps
        those 401/429/413s visible in ``/v1/health`` error rates.  The
        caller-supplied name is clamped to known endpoints so a spray
        cannot grow the stats map.
        """
        known = endpoint in ENDPOINTS or endpoint in STREAM_ENDPOINTS
        self._stats.record(endpoint if known else "(unknown)", 0.0, error=True)

    # -------------------------------------------------------------- internals
    @contextmanager
    def _timed(self, endpoint: str):
        sw = Stopwatch()
        sw.start()
        try:
            yield
        except BaseException:
            self._stats.record(endpoint, sw.stop(), error=True)
            raise
        else:
            self._stats.record(endpoint, sw.stop(), error=False)

    def _gene_universe(self) -> frozenset[str]:
        """Known gene ids, cached against the compendium's version token."""
        version = self.service.compendium.version
        with self._universe_lock:
            if self._universe is not None and self._universe[0] == version:
                return self._universe[1]
        universe = frozenset(self.service.compendium.gene_universe())
        with self._universe_lock:
            self._universe = (version, universe)
        return universe

    def _check(self, request: SearchRequest) -> None:
        """Raise precise codes for unknown genes / datasets before searching.

        Gene existence is judged against the searched scope: the whole
        compendium, or — under a ``datasets`` filter — just the filtered
        datasets, so "no query gene exists" is always ``UNKNOWN_GENE``
        regardless of whether a filter narrowed the search.
        """
        compendium = self.service.compendium
        if request.datasets is not None:
            known = set(compendium.names)
            unknown = sorted(set(request.datasets) - known)
            if unknown:
                raise ApiError(
                    "UNKNOWN_DATASET",
                    f"unknown dataset(s) in filter: {', '.join(unknown)}",
                    details={"unknown_datasets": unknown, "known_count": len(known)},
                )
            matrices = [compendium[name].matrix for name in request.datasets]
            unknown_genes = [
                g for g in request.genes if not any(g in m for m in matrices)
            ]
            scope = "the filtered datasets"
        else:
            universe = self._gene_universe()
            unknown_genes = [g for g in request.genes if g not in universe]
            scope = "the compendium"
        if len(unknown_genes) == len(request.genes):
            raise ApiError(
                "UNKNOWN_GENE",
                f"no query gene exists in {scope}: " + ", ".join(unknown_genes),
                details={"unknown_genes": unknown_genes},
            )

    def _full_result(self, request: SearchRequest) -> SpellResult:
        """Full (un-truncated) search result for cluster/render endpoints."""
        self._check(request)
        return self.service.search(
            request.genes, use_cache=request.use_cache, datasets=request.datasets
        )

    @staticmethod
    def _gene_limit(search: SearchRequest, top_genes: int) -> int:
        """Honor the nested search's ``top_k`` cap: cluster/render must
        never touch genes the client's search contract excluded."""
        if search.top_k is None:
            return top_genes
        return min(top_genes, search.top_k)

    def _gene_submatrix(self, result: SpellResult, dataset: str | None, top_genes: int):
        """Expression submatrix of the result's top genes in one dataset."""
        compendium = self.service.compendium
        if dataset is None:
            if not result.datasets:
                raise ApiError("INVALID_REQUEST", "search returned no datasets")
            dataset = result.datasets[0].name
        elif dataset not in compendium:
            raise ApiError(
                "UNKNOWN_DATASET",
                f"unknown dataset {dataset!r}",
                details={"unknown_datasets": [dataset]},
            )
        top = result.top_genes(top_genes)
        matrix = compendium[dataset].matrix.subset_genes(top, missing="skip")
        return dataset, matrix
