"""Transport-agnostic application object behind every API frontend.

:class:`ApiApp` routes protocol requests (:mod:`repro.api.protocol`) to
the analysis core — :class:`~repro.spell.service.SpellService` for
search, :mod:`repro.cluster` for dendrograms, :mod:`repro.viz` for
heatmap rendering — behind one object that any transport can host: the
stdlib HTTP facade (:mod:`repro.api.http`), an in-process caller, or a
test harness.  Responsibilities:

* **Routing** — ``handle_wire(endpoint, payload)`` parses, dispatches,
  and serializes entirely in wire (JSON-object) space, so transports
  never import protocol types.
* **Error discipline** — every failure crossing the boundary becomes a
  stable code (:mod:`repro.api.errors`); precise codes (``UNKNOWN_GENE``,
  ``UNKNOWN_DATASET``) are raised here, before the generic buckets.
* **Observability** — per-endpoint count/error/latency counters, served
  by the ``health`` endpoint.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from contextlib import contextmanager
from dataclasses import replace

from repro.api.errors import ApiError, as_api_error, error_payload
from repro.api.limits import RequestContext, RequestGate
from repro.api.protocol import (
    BatchSearchRequest,
    BatchSearchResponse,
    ClusterRequest,
    ClusterResponse,
    DatasetInfo,
    DatasetListRequest,
    DatasetListResponse,
    ExportRequest,
    ExportTrailer,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    RenderRequest,
    RenderResponse,
    SearchRequest,
    SearchResponse,
)
from repro.api.routes import ROUTES, all_endpoints, stream_endpoints, unary_endpoints
from repro.cluster.hierarchical import hierarchical_cluster
from repro.data.loader import parse_dataset
from repro.spell.engine import SpellResult
from repro.spell.service import SpellService
from repro.util.deadline import Deadline
from repro.util.timing import Stopwatch
from repro.viz.colormap import get_colormap
from repro.viz.heatmap import render_heatmap_block
from repro.viz.ppm import encode_ppm

__all__ = [
    "ApiApp",
    "DEFAULT_TENANT",
    "ENDPOINTS",
    "ROUTES",
    "STREAM_ENDPOINTS",
    "all_endpoints",
]

#: endpoint name -> (request type or None, ApiApp method name) — derived
#: from the declarative registry (:mod:`repro.api.routes`), which is the
#: single registration point every facade shares.  The names stay
#: exported for transports and tests that consume the dispatch tables.
ENDPOINTS: dict[str, tuple[type | None, str]] = unary_endpoints()

#: Streaming endpoints answer with a *sequence* of NDJSON lines, not one
#: JSON body, so they dispatch through :meth:`ApiApp.export` rather than
#: ``handle_wire`` (whose (status, body) contract cannot stream).
STREAM_ENDPOINTS: dict[str, type] = stream_endpoints()

#: The tenant a request without a ``compendium`` field is served from —
#: must agree with :data:`repro.spell.catalog.DEFAULT_TENANT` (asserted
#: by tests) without importing the catalog here: the app must keep
#: working for single-tenant deployments that never construct one.
DEFAULT_TENANT = "default"


class _EndpointStats:
    """Thread-safe per-endpoint serving counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._data: dict[str, dict[str, float]] = {}

    def record(self, endpoint: str, seconds: float, *, error: bool) -> None:
        with self._lock:
            row = self._data.setdefault(
                endpoint, {"count": 0, "errors": 0, "total_seconds": 0.0}
            )
            row["count"] += 1
            row["errors"] += 1 if error else 0
            row["total_seconds"] += float(seconds)

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._lock:
            out = {}
            for endpoint, row in self._data.items():
                count = int(row["count"])
                out[endpoint] = {
                    "count": count,
                    "errors": int(row["errors"]),
                    "total_seconds": row["total_seconds"],
                    "mean_seconds": row["total_seconds"] / count if count else 0.0,
                }
            return out


class ApiApp:
    """One analysis core, many frontends: the v1 API application object.

    ``gate`` is the admission-control policy (:mod:`repro.api.limits`):
    auth, per-client rate limits, and the request body cap run in
    :meth:`handle_wire` / :meth:`export` *before* any routing or
    parsing, so every transport inherits the hardening by passing a
    :class:`RequestContext`.  Transports that pass no context (trusted
    in-process callers, tests) bypass the gate.

    ``catalog`` (a :class:`~repro.spell.catalog.CompendiumCatalog`)
    turns the app multi-tenant: requests carrying a ``compendium``
    field are served from that tenant's resident service, and a request
    without one keeps being served from ``service`` — the pinned
    default tenant — so single-tenant deployments and their wire
    behavior are untouched.  Without a catalog, only the default
    tenant exists and any other name is ``UNKNOWN_COMPENDIUM``.
    """

    def __init__(
        self,
        service: SpellService,
        *,
        gate: RequestGate | None = None,
        catalog=None,
    ) -> None:
        self.service = service
        self.gate = gate if gate is not None else RequestGate()
        self.catalog = catalog
        self._stats = _EndpointStats()
        self._started = time.monotonic()
        self._universe_lock = threading.Lock()
        #: tenant -> (compendium version, gene-id set): the per-tenant
        #: universe caches invalidate independently, so one tenant's
        #: ingest never recomputes another tenant's universe
        self._universe: dict[str, tuple[int, frozenset[str]]] = {}

    # ---------------------------------------------------------- tenant routing
    def _resolve(self, compendium: str | None):
        """``(tenant, service)`` for one request's ``compendium`` field."""
        if self.catalog is not None:
            return self.catalog.resolve(compendium)
        if compendium is None or compendium == DEFAULT_TENANT:
            return DEFAULT_TENANT, self.service
        raise ApiError(
            "UNKNOWN_COMPENDIUM",
            f"no compendium named {compendium!r} (single-tenant serving)",
            details={"known": [DEFAULT_TENANT]},
        )

    @staticmethod
    def _tenant_of(request) -> str | None:
        """The tenant a parsed request addresses, or ``None`` when the
        request type has no tenant scope (health).  Nested-search
        requests (cluster, render) are scoped by their inner search."""
        if hasattr(request, "compendium"):
            return request.compendium or DEFAULT_TENANT
        search = getattr(request, "search", None)
        if search is not None:
            return search.compendium or DEFAULT_TENANT
        return None

    # ------------------------------------------------------------- wire layer
    def handle_wire(
        self, endpoint: str, payload, *, context: RequestContext | None = None
    ) -> tuple[int, dict]:
        """Dispatch one wire request; returns ``(http_status, json_body)``.

        Never raises: every failure — gate rejection, unknown endpoint,
        malformed payload, downstream error — comes back as a structured
        error payload with its mapped status code.
        """
        route = ENDPOINTS.get(endpoint)
        stats_key = endpoint if route is not None else "(unknown)"
        try:
            self.gate.admit(endpoint, context)
        except ApiError as err:
            # rejected before any handler ran: count it here so a flood
            # of 401/429/413s is visible in /v1/health error rates
            self._stats.record(stats_key, 0.0, error=True)
            return err.http_status, error_payload(err)
        if route is None:
            err = ApiError(
                "UNKNOWN_ENDPOINT",
                f"no endpoint {endpoint!r}",
                details={"endpoints": all_endpoints()},
            )
            # one fixed sentinel key, not the caller-supplied string: a
            # client spraying bogus names must not grow the stats map
            # (and the /v1/health payload) without bound
            self._stats.record("(unknown)", 0.0, error=True)
            return err.http_status, error_payload(err)
        request_cls, method = route
        try:
            if request_cls is None:
                response = getattr(self, method)()
            else:
                try:
                    request = request_cls.from_wire(payload if payload is not None else {})
                    # the tenant rides in the body, so its rate budget
                    # can only be charged here, post-parse — admission
                    # (auth, per-peer, per-token) already ran pre-body
                    tenant = self._tenant_of(request)
                    if tenant is not None:
                        self.gate.charge_tenant(tenant, context)
                except Exception:
                    # handler never ran, so _timed() never counted this
                    # request — record the parse failure here or /v1/health
                    # under-reports error rates during a malformed flood
                    self._stats.record(endpoint, 0.0, error=True)
                    raise
                response = getattr(self, method)(request)
        except Exception as exc:  # noqa: BLE001 — the boundary swallows all
            err = as_api_error(exc)
            return err.http_status, error_payload(err)
        return 200, response.to_wire()

    # -------------------------------------------------------------- endpoints
    def search(self, request: SearchRequest) -> SearchResponse:
        with self._timed("search"):
            # the budget starts at admission, so validation time counts
            # against the client's deadline_ms too
            budget = Deadline.after_ms(request.deadline_ms)
            tenant, service = self._resolve(request.compendium)
            self._check(request, service, tenant)
            return service.respond(request, deadline=budget)

    def search_batch(self, request: BatchSearchRequest) -> BatchSearchResponse:
        with self._timed("search/batch"):
            budget = Deadline.after_ms(request.deadline_ms)
            tenant, service = self._resolve(request.compendium)
            for member in request.searches:
                self._check(member, service, tenant)
            return service.respond_batch(request, deadline=budget)

    def datasets(self, request: DatasetListRequest) -> DatasetListResponse:
        with self._timed("datasets"):
            tenant, service = self._resolve(request.compendium)
            # storage tiers exist only where a SpellService owns a store;
            # router frontends report everything resident (the v1 default)
            tiers_fn = getattr(service, "dataset_tiers", None)
            tiers = tiers_fn() if callable(tiers_fn) else {}
            return DatasetListResponse(
                datasets=tuple(
                    DatasetInfo(
                        name=ds.name,
                        n_genes=ds.n_genes,
                        n_conditions=ds.n_conditions,
                        metadata=dict(ds.metadata),
                        fingerprint=ds.fingerprint,
                        tier=tiers.get(ds.name, "resident"),
                    )
                    for ds in service.compendium
                )
            )

    def ingest(self, request: IngestRequest) -> IngestResponse:
        """``POST /v1/ingest``: add one SOFT/PCL dataset to a live tenant.

        The submission is validated in full before any mutation, then
        published through the eager copy-on-write index sync — a query
        racing this request sees either the prior or the fully-published
        compendium fingerprint, never a mix.  Without a catalog the
        ingest lands in the default service (same ordering guarantees,
        no on-disk source bookkeeping beyond its own store).
        """
        with self._timed("ingest"):
            with Stopwatch() as sw:
                if self.catalog is not None:
                    tenant, service, dataset = self.catalog.ingest(
                        request.compendium,
                        request.name,
                        request.format,
                        request.content,
                    )
                else:
                    tenant, service = self._resolve(request.compendium)
                    dataset = parse_dataset(
                        request.content, request.format, name=request.name
                    )
                    if request.name in service.compendium:
                        raise ApiError(
                            "DATASET_EXISTS",
                            f"compendium {tenant!r} already serves a dataset "
                            f"named {request.name!r}",
                            details={"compendium": tenant, "dataset": request.name},
                        )
                    service.ingest_dataset(dataset)
            return IngestResponse(
                compendium=tenant,
                dataset=dataset.name,
                n_genes=dataset.n_genes,
                n_conditions=dataset.n_conditions,
                fingerprint=dataset.fingerprint,
                compendium_fingerprint=service.compendium.fingerprint,
                datasets=len(service.compendium),
                elapsed_seconds=sw.elapsed,
            )

    def cluster(self, request: ClusterRequest) -> ClusterResponse:
        """Hierarchically cluster the top genes of a search result.

        The expression submatrix comes from the named dataset (or the
        search's top-weighted one); genes absent from that dataset are
        dropped, and at least two must survive.
        """
        with self._timed("cluster"):
            with Stopwatch() as sw:
                tenant, service = self._resolve(request.search.compendium)
                result = self._full_result(request.search, service, tenant)
                dataset, matrix = self._gene_submatrix(
                    result, request.dataset,
                    self._gene_limit(request.search, request.top_genes),
                    service,
                )
                if matrix.n_genes < 2:
                    raise ApiError(
                        "INVALID_REQUEST",
                        f"only {matrix.n_genes} of the top {request.top_genes} "
                        f"genes are present in dataset {dataset!r}; "
                        "clustering needs at least 2",
                    )
                tree = hierarchical_cluster(
                    matrix.values,
                    metric=request.metric,
                    linkage=request.linkage,
                    leaf_ids=matrix.gene_ids,
                )
            return ClusterResponse(
                genes=tuple(matrix.gene_ids[i] for i in tree.leaf_order()),
                dataset=dataset,
                metric=request.metric,
                linkage=request.linkage,
                merges=tuple(
                    (int(left), int(right), float(height), int(size))
                    for left, right, height, size in tree.to_merges()
                ),
                elapsed_seconds=sw.elapsed,
            )

    def render_heatmap(self, request: RenderRequest) -> RenderResponse:
        """Render the top genes of a search result as a PPM heatmap."""
        with self._timed("render/heatmap"):
            with Stopwatch() as sw:
                tenant, service = self._resolve(request.search.compendium)
                result = self._full_result(request.search, service, tenant)
                dataset, matrix = self._gene_submatrix(
                    result, request.dataset,
                    self._gene_limit(request.search, request.top_genes),
                    service,
                )
                if matrix.n_genes < 1:
                    raise ApiError(
                        "INVALID_REQUEST",
                        f"none of the top {request.top_genes} genes are "
                        f"present in dataset {dataset!r}",
                    )
                if request.cluster and matrix.n_genes >= 2:
                    tree = hierarchical_cluster(
                        matrix.values, leaf_ids=matrix.gene_ids
                    )
                    matrix = matrix.reorder_genes(tree.leaf_order())
                colormap = get_colormap(request.colormap)
                if request.saturation is not None:
                    colormap = colormap.with_saturation(request.saturation)
                width = matrix.n_conditions * request.cell_width
                height = matrix.n_genes * request.cell_height
                pixels = render_heatmap_block(
                    matrix.values,
                    colormap,
                    x=0, y=0, w=width, h=height,
                    rx=0, ry=0, rw=width, rh=height,
                )
            return RenderResponse(
                width=width,
                height=height,
                dataset=dataset,
                colormap=request.colormap,
                genes=tuple(matrix.gene_ids),
                ppm=encode_ppm(pixels),
                elapsed_seconds=sw.elapsed,
            )

    def render_heatmap_wire(
        self, payload, *, context: RequestContext | None = None
    ) -> RenderResponse:
        """Parse-and-render for transports that need the typed response
        (the ``?format=ppm`` raw-bytes path).  Gate rejections and parse
        failures count toward the endpoint's error stats exactly as in
        ``handle_wire``.
        """
        try:
            self.gate.admit("render/heatmap", context)
            request = RenderRequest.from_wire(payload if payload is not None else {})
            tenant = self._tenant_of(request)
            if tenant is not None:
                self.gate.charge_tenant(tenant, context)
        except Exception:
            self._stats.record("render/heatmap", 0.0, error=True)
            raise
        return self.render_heatmap(request)

    # ------------------------------------------------------ streaming export
    def export(self, payload, *, context: RequestContext | None = None):
        """``search/export``: returns an iterator of NDJSON lines (bytes).

        Everything that can fail *before* streaming — gate rejection,
        parse errors, unknown genes/datasets, the search itself — raises
        here (as :class:`ApiError` or a mappable exception), so a
        transport can still answer with an ordinary error status.  Once
        the iterator is handed back, failure mid-walk surfaces as a
        final ``status="error"`` trailer line carrying the structured
        error — a consumer always sees either an ``ok`` trailer with a
        matching checksum or an explicit error, never a silently
        truncated stream.
        """
        endpoint = "search/export"
        sw = Stopwatch()
        sw.start()
        try:
            self.gate.admit(endpoint, context)
            request = ExportRequest.from_wire(payload if payload is not None else {})
            tenant, service = self._resolve(request.compendium)
            self.gate.charge_tenant(tenant, context)
            budget = Deadline.after_ms(request.deadline_ms)
            self._check(request, service, tenant)
            cursor = service.iter_result(request, deadline=budget)
        except BaseException:
            self._stats.record(endpoint, sw.stop(), error=True)
            raise
        return self._encode_export(cursor, sw)

    def _encode_export(self, cursor, sw: Stopwatch):
        """Serialize an export cursor to NDJSON, checksumming chunk bytes.

        The checksum is ``sha256`` over the exact bytes of every chunk
        line (newline included) in stream order — the trailer promises
        integrity of what was actually sent, so it must hash wire bytes,
        not protocol objects.
        """
        endpoint = "search/export"
        digest = hashlib.sha256()
        n_chunks = 0
        total_rows = 0
        recorded = False
        try:
            for item in cursor:
                if isinstance(item, ExportTrailer):
                    trailer = replace(
                        item,
                        checksum=f"sha256:{digest.hexdigest()}",
                        n_chunks=n_chunks,
                        total_rows=total_rows,
                    )
                    self._stats.record(endpoint, sw.stop(), error=False)
                    recorded = True
                    yield json.dumps(trailer.to_wire()).encode("utf-8") + b"\n"
                    return
                line = json.dumps(item.to_wire()).encode("utf-8") + b"\n"
                digest.update(line)
                n_chunks += 1
                total_rows += len(item.gene_rows)
                yield line
            raise RuntimeError("export cursor ended without a trailer")
        except GeneratorExit:
            # consumer went away mid-stream (client disconnect): the
            # export did not complete — count it as an error
            if not recorded:
                self._stats.record(endpoint, sw.stop(), error=True)
            raise
        except Exception as exc:  # noqa: BLE001 — the stream boundary
            err = as_api_error(exc)
            if not recorded:
                self._stats.record(endpoint, sw.stop(), error=True)
            yield json.dumps(
                ExportTrailer(
                    status="error",
                    total_rows=total_rows,
                    n_chunks=n_chunks,
                    checksum=f"sha256:{digest.hexdigest()}",
                    error=error_payload(err)["error"],
                ).to_wire()
            ).encode("utf-8") + b"\n"

    def health(self) -> HealthResponse:
        with self._timed("health"):
            service = self.service
            # sharded services report per-node routing state; single-node
            # services have no shard_stats and answer the v1 default ({})
            shard_stats = getattr(service, "shard_stats", None)
            # storage tiers exist only where a SpellService owns a store;
            # router frontends answer the v1 default ({})
            storage_stats = getattr(service, "storage_stats", None)
            tenants = self.catalog.stats() if self.catalog is not None else {}
            return HealthResponse(
                status="ok",
                uptime_seconds=time.monotonic() - self._started,
                datasets=len(service.compendium),
                genes=len(self._gene_universe()),
                index_bytes=service.index_bytes(),
                query_count=service.query_count,
                cache=service.cache_stats(),
                endpoints=self._stats.snapshot(),
                serving=service.serving_stats(),
                limits=self.gate.stats(),
                shards=shard_stats() if callable(shard_stats) else {},
                storage=storage_stats() if callable(storage_stats) else {},
                tenants=tenants,
            )

    def endpoint_stats(self) -> dict[str, dict[str, float]]:
        return self._stats.snapshot()

    def record_rejection(self, endpoint: str) -> None:
        """Count a transport-level gate rejection against an endpoint.

        A transport that gates *before* reading the body (the HTTP
        facade) rejects requests ``handle_wire`` never sees; this keeps
        those 401/429/413s visible in ``/v1/health`` error rates.  The
        caller-supplied name is clamped to known endpoints so a spray
        cannot grow the stats map.
        """
        known = endpoint in ENDPOINTS or endpoint in STREAM_ENDPOINTS
        self._stats.record(endpoint if known else "(unknown)", 0.0, error=True)

    # -------------------------------------------------------------- internals
    @contextmanager
    def _timed(self, endpoint: str):
        sw = Stopwatch()
        sw.start()
        try:
            yield
        except BaseException:
            self._stats.record(endpoint, sw.stop(), error=True)
            raise
        else:
            self._stats.record(endpoint, sw.stop(), error=False)

    def _gene_universe(
        self, service: SpellService | None = None, tenant: str = DEFAULT_TENANT
    ) -> frozenset[str]:
        """Known gene ids, cached per tenant against its version token."""
        service = self.service if service is None else service
        version = service.compendium.version
        with self._universe_lock:
            cached = self._universe.get(tenant)
            if cached is not None and cached[0] == version:
                return cached[1]
        universe = frozenset(service.compendium.gene_universe())
        with self._universe_lock:
            self._universe[tenant] = (version, universe)
        return universe

    def _check(
        self,
        request: SearchRequest,
        service: SpellService | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> None:
        """Raise precise codes for unknown genes / datasets before searching.

        Gene existence is judged against the searched scope: the whole
        compendium, or — under a ``datasets`` filter — just the filtered
        datasets, so "no query gene exists" is always ``UNKNOWN_GENE``
        regardless of whether a filter narrowed the search.
        """
        service = self.service if service is None else service
        compendium = service.compendium
        if request.datasets is not None:
            known = set(compendium.names)
            unknown = sorted(set(request.datasets) - known)
            if unknown:
                raise ApiError(
                    "UNKNOWN_DATASET",
                    f"unknown dataset(s) in filter: {', '.join(unknown)}",
                    details={"unknown_datasets": unknown, "known_count": len(known)},
                )
            matrices = [compendium[name].matrix for name in request.datasets]
            unknown_genes = [
                g for g in request.genes if not any(g in m for m in matrices)
            ]
            scope = "the filtered datasets"
        else:
            universe = self._gene_universe(service, tenant)
            unknown_genes = [g for g in request.genes if g not in universe]
            scope = "the compendium"
        if len(unknown_genes) == len(request.genes):
            raise ApiError(
                "UNKNOWN_GENE",
                f"no query gene exists in {scope}: " + ", ".join(unknown_genes),
                details={"unknown_genes": unknown_genes},
            )

    def _full_result(
        self,
        request: SearchRequest,
        service: SpellService | None = None,
        tenant: str = DEFAULT_TENANT,
    ) -> SpellResult:
        """Full (un-truncated) search result for cluster/render endpoints."""
        service = self.service if service is None else service
        self._check(request, service, tenant)
        return service.search(
            request.genes, use_cache=request.use_cache, datasets=request.datasets
        )

    @staticmethod
    def _gene_limit(search: SearchRequest, top_genes: int) -> int:
        """Honor the nested search's ``top_k`` cap: cluster/render must
        never touch genes the client's search contract excluded."""
        if search.top_k is None:
            return top_genes
        return min(top_genes, search.top_k)

    def _gene_submatrix(
        self,
        result: SpellResult,
        dataset: str | None,
        top_genes: int,
        service: SpellService | None = None,
    ):
        """Expression submatrix of the result's top genes in one dataset."""
        service = self.service if service is None else service
        compendium = service.compendium
        if dataset is None:
            if not result.datasets:
                raise ApiError("INVALID_REQUEST", "search returned no datasets")
            dataset = result.datasets[0].name
        elif dataset not in compendium:
            raise ApiError(
                "UNKNOWN_DATASET",
                f"unknown dataset {dataset!r}",
                details={"unknown_datasets": [dataset]},
            )
        top = result.top_genes(top_genes)
        matrix = compendium[dataset].matrix.subset_genes(top, missing="skip")
        return dataset, matrix
