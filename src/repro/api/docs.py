"""Generate the v1 API reference (``docs/api.md``) from the registry.

The reference is *derived*, never hand-edited: every table is rendered
from the same objects the server dispatches on — the route table
(:data:`repro.api.routes.ROUTES`), the request/response dataclasses in
:mod:`repro.api.protocol`, and the error registry in
:mod:`repro.api.errors`.  That makes documentation drift structurally
impossible: a freshness test regenerates the markdown and asserts it
matches the committed file, so adding an endpoint or an error code
without regenerating fails CI.

Regenerate with::

    PYTHONPATH=src python -m repro.api.docs

or verify without writing (what CI does)::

    PYTHONPATH=src python -m repro.api.docs --check
"""

from __future__ import annotations

import argparse
import dataclasses
from pathlib import Path

from repro.api.errors import API_VERSION, ERROR_DESCRIPTIONS, ERROR_STATUS
from repro.api.routes import ROUTES, Route

__all__ = ["generate_markdown", "main"]

_HEADER = f"""# {API_VERSION} query API reference

<!-- GENERATED FILE — do not edit by hand.
     Regenerate with: PYTHONPATH=src python -m repro.api.docs -->

Every payload carries ``"api_version": "{API_VERSION}"``.  The wire contract is
**append-only** within a version: new response fields may appear (old
clients ignore them), existing fields never change meaning or vanish.
Unary endpoints take one JSON body and return one JSON body; stream
endpoints return NDJSON — one JSON object per line, terminated by a
checksummed trailer line.

Errors from any endpoint share one envelope::

    {{"api_version": "{API_VERSION}",
     "error": {{"code": "...", "message": "...", "details": {{...}}}}}}

``code`` and ``details`` are stable and machine-branchable; ``message``
is for humans and may change between releases.

Two HTTP facades serve this registry — the threaded server
(``python -m repro.api.http``) and the asyncio loop group
(``python -m repro.api.aio``).  Both dispatch through the same route
table and admission gate, so every endpoint, status code, and error
payload below is transport-independent; see ``docs/operations.md`` for
choosing and sizing a facade.
"""


def _first_doc_line(obj: type | None) -> str:
    doc = (getattr(obj, "__doc__", None) or "").strip()
    return doc.splitlines()[0].strip() if doc else ""


def _default_repr(field: dataclasses.Field) -> str:
    if field.default is not dataclasses.MISSING:
        return f"`{field.default!r}`"
    if field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f"`{field.default_factory.__name__}()`"  # type: ignore[misc]
    return "*required*"


def _type_repr(field: dataclasses.Field) -> str:
    # `from __future__ import annotations` keeps these as source strings
    t = field.type
    return t if isinstance(t, str) else getattr(t, "__name__", str(t))


def _fields_table(cls: type) -> list[str]:
    lines = [
        "| field | type | default |",
        "| --- | --- | --- |",
    ]
    for field in dataclasses.fields(cls):
        lines.append(
            f"| `{field.name}` | `{_type_repr(field)}` | {_default_repr(field)} |"
        )
    return lines


def _route_section(route: Route) -> list[str]:
    lines = [f"### `{route.method} {route.path}`", ""]
    if route.summary:
        lines += [route.summary, ""]
    meta = [f"kind: **{route.kind}**"]
    if route.raw_formats:
        formats = ", ".join(f"`?format={f}`" for f in route.raw_formats)
        meta.append(f"raw formats: {formats}")
    lines += ["; ".join(meta), ""]

    if route.request_cls is None:
        lines += ["**Request:** no body.", ""]
    else:
        intro = _first_doc_line(route.request_cls)
        lines += [f"**Request** — `{route.request_cls.__name__}`: {intro}", ""]
        lines += _fields_table(route.request_cls) + [""]

    responses = route.response_cls
    if not isinstance(responses, tuple):
        responses = (responses,) if responses is not None else ()
    for i, cls in enumerate(responses):
        label = "**Response**" if len(responses) == 1 else (
            f"**Stream line {i + 1}**"
        )
        intro = _first_doc_line(cls)
        lines += [f"{label} — `{cls.__name__}`: {intro}", ""]
        lines += _fields_table(cls) + [""]
    return lines


def generate_markdown() -> str:
    """Render the full reference; pure function of the registries."""
    lines: list[str] = [_HEADER, "## Endpoints", ""]
    lines += [
        "| endpoint | method | kind | summary |",
        "| --- | --- | --- | --- |",
    ]
    for route in ROUTES:
        lines.append(
            f"| [`{route.path}`](#{_anchor(route)}) | {route.method} "
            f"| {route.kind} | {route.summary} |"
        )
    lines.append("")
    for route in ROUTES:
        lines += _route_section(route)

    lines += ["## Error codes", ""]
    lines += [
        "| code | HTTP status | meaning |",
        "| --- | --- | --- |",
    ]
    for code, status in ERROR_STATUS.items():
        lines.append(f"| `{code}` | {status} | {ERROR_DESCRIPTIONS[code]} |")
    lines.append("")
    return "\n".join(lines)


def _anchor(route: Route) -> str:
    """GitHub-style anchor for a `### `METHOD /v1/name`` heading."""
    return (
        (route.method + " " + route.path)
        .lower()
        .replace("/", "")
        .replace(" ", "-")
    )


def default_output() -> Path:
    """``docs/api.md`` at the repository root (two levels above this file)."""
    return Path(__file__).resolve().parents[3] / "docs" / "api.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.api.docs",
        description="Regenerate (or verify) docs/api.md from the route table.",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="target file (default: <repo>/docs/api.md)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="verify the committed file matches the registry; write nothing",
    )
    args = parser.parse_args(argv)
    target = args.output if args.output is not None else default_output()
    rendered = generate_markdown()
    if args.check:
        current = target.read_text() if target.exists() else None
        if current != rendered:
            print(
                f"{target} is stale — regenerate with "
                "`PYTHONPATH=src python -m repro.api.docs`"
            )
            return 1
        print(f"{target} is up to date")
        return 0
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rendered)
    print(f"wrote {target} ({len(rendered.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
