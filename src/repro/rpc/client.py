"""Reconnecting RPC client for one remote node.

A client holds at most one TCP connection and issues one call at a time
(guarded by a lock — fan-out parallelism lives in
:meth:`repro.rpc.membership.Membership.scatter`, which runs one client
per node on its own thread).  A transport failure closes the connection
so the next call dials fresh; the failed call itself raises
:class:`~repro.util.errors.RpcError` for the caller (usually the
membership layer) to record.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.rpc.framing import read_frame, write_frame
from repro.rpc.server import RpcHandlerError
from repro.util.errors import RpcError

__all__ = ["RpcClient"]

_DEFAULT_TIMEOUT = 30.0


class RpcClient:
    """Call methods on one remote :class:`~repro.rpc.server.RpcServer`."""

    def __init__(
        self, host: str, port: int, *, timeout: float = _DEFAULT_TIMEOUT
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._sock: socket.socket | None = None
        self._seq = 0
        self._lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # ------------------------------------------------------------------ calls
    def call(self, method: str, payload: Any = None, *, timeout: float | None = None) -> Any:
        """Invoke ``method`` remotely; returns the reply payload.

        Raises :class:`RpcHandlerError` if the remote handler raised and
        :class:`RpcError` for transport failures (refused, timeout,
        reset) — after which the connection is dropped so the next call
        redials.
        """
        deadline = self.timeout if timeout is None else float(timeout)
        with self._lock:
            self._seq += 1
            seq = self._seq
            sock = self._connect(deadline)
            try:
                sock.settimeout(deadline)
                write_frame(sock, (seq, method, payload))
                reply = read_frame(sock)
            except BaseException:
                # Drop on *any* exception, not just RpcError: a payload
                # that fails to pickle, a KeyboardInterrupt mid-send, or
                # any non-transport error can leave a half-written frame
                # or an unread reply on the wire, desyncing every
                # subsequent call on this connection.
                self._drop()
                raise
            if not (isinstance(reply, tuple) and len(reply) in (3, 4)):
                self._drop()
                raise RpcError(f"malformed reply {type(reply).__name__}")
            if reply[0] == "ok":
                _, rseq, result = reply
                if rseq != seq:
                    self._drop()
                    raise RpcError(f"reply sequence mismatch: sent {seq}, got {rseq}")
                return result
            _, _rseq, kind, message = reply
            raise RpcHandlerError(kind, message)

    def ping(self, *, timeout: float | None = None) -> dict:
        """Liveness probe; returns the server's info payload."""
        return self.call("__ping__", None, timeout=timeout)

    # ------------------------------------------------------------- connection
    def _connect(self, timeout: float) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection((self.host, self.port), timeout=timeout)
        except OSError as exc:
            raise RpcError(f"cannot reach {self.host}:{self.port}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop()

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
