"""Node membership, heartbeats, and fan-out with explicit partial results.

A :class:`Membership` is the coordinator-side table of remote nodes: one
:class:`~repro.rpc.client.RpcClient` per node plus liveness state fed by
every call and by explicit :meth:`heartbeat` sweeps.  Its core primitive
is :meth:`scatter` — issue one call per node concurrently, each with its
own timeout, and return a :class:`ScatterResult` whose ``ok``/``failed``
maps account for *every* node addressed.  Degradation is therefore
always structured: a dead node shows up in ``failed`` with its error
string; nothing is silently cut from the result set.  Both the display
wall's tile fan-out and the sharded serving router are built on this.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.rpc.client import RpcClient
from repro.rpc.server import RpcHandlerError
from repro.util.errors import RpcError, ValidationError

__all__ = ["Membership", "NodeState", "ScatterResult"]

_DEFAULT_TIMEOUT = 30.0


@dataclass
class NodeState:
    """Coordinator-side view of one remote node."""

    node_id: str
    host: str
    port: int
    alive: bool = True
    consecutive_failures: int = 0
    last_ok: float | None = None  # monotonic timestamp of last success
    last_error: str | None = None
    info: dict = field(default_factory=dict)  # latest heartbeat payload

    def as_dict(self) -> dict:
        """JSON-safe snapshot for health reporting."""
        return {
            "node_id": self.node_id,
            "address": f"{self.host}:{self.port}",
            "alive": self.alive,
            "consecutive_failures": self.consecutive_failures,
            "lag_seconds": (
                None if self.last_ok is None else round(time.monotonic() - self.last_ok, 3)
            ),
            "last_error": self.last_error,
            "info": dict(self.info),
        }


@dataclass(frozen=True)
class ScatterResult:
    """Per-node outcome of one fan-out; every addressed node appears once."""

    ok: dict[str, Any]
    failed: dict[str, str]

    @property
    def complete(self) -> bool:
        return not self.failed


class Membership:
    """A table of RPC nodes with liveness tracking and concurrent fan-out."""

    def __init__(
        self,
        nodes: Mapping[str, tuple[str, int]] | Iterable[tuple[str, str, int]],
        *,
        timeout: float = _DEFAULT_TIMEOUT,
    ) -> None:
        if isinstance(nodes, Mapping):
            entries = [(nid, host, port) for nid, (host, port) in nodes.items()]
        else:
            entries = [(nid, host, port) for nid, host, port in nodes]
        if not entries:
            raise ValidationError("membership needs at least one node")
        seen: set[str] = set()
        for nid, _h, _p in entries:
            if nid in seen:
                raise ValidationError(f"duplicate node id {nid!r}")
            seen.add(nid)
        self.timeout = float(timeout)
        self._states: dict[str, NodeState] = {}
        self._clients: dict[str, RpcClient] = {}
        self._lock = threading.Lock()
        for nid, host, port in entries:
            self._states[nid] = NodeState(node_id=nid, host=host, port=int(port))
            self._clients[nid] = RpcClient(host, int(port), timeout=self.timeout)

    # ---------------------------------------------------------------- queries
    @property
    def node_ids(self) -> list[str]:
        return list(self._states)

    def state(self, node_id: str) -> NodeState:
        try:
            return self._states[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def alive_ids(self) -> list[str]:
        return [nid for nid, st in self._states.items() if st.alive]

    def stats(self) -> dict[str, dict]:
        """Per-node snapshots for the ``/v1/health`` ``shards`` field."""
        return {nid: st.as_dict() for nid, st in self._states.items()}

    # ------------------------------------------------------------------ calls
    def call(
        self, node_id: str, method: str, payload: Any = None, *, timeout: float | None = None
    ) -> Any:
        """One call to one node, updating its liveness state.

        :class:`RpcHandlerError` (the remote handler raised) counts as a
        *live* node — it answered — so only transport failures mark a
        node down.
        """
        state = self.state(node_id)
        client = self._clients[node_id]
        try:
            result = client.call(method, payload, timeout=timeout)
        except RpcHandlerError:
            self._mark_ok(state, info=None)
            raise
        except RpcError as exc:
            self._mark_failed(state, str(exc))
            raise
        self._mark_ok(state, info=None)
        return result

    def scatter(
        self,
        calls: Mapping[str, tuple[str, Any]],
        *,
        timeout: float | None = None,
    ) -> ScatterResult:
        """Issue ``{node_id: (method, payload)}`` concurrently.

        Each node gets its own thread and timeout; the result maps every
        addressed node into ``ok`` or ``failed`` — partial degradation
        is explicit, never a silent cut.
        """
        ok: dict[str, Any] = {}
        failed: dict[str, str] = {}
        lock = threading.Lock()

        def one(nid: str, method: str, payload: Any) -> None:
            try:
                result = self.call(nid, method, payload, timeout=timeout)
            except RpcError as exc:  # includes RpcHandlerError
                with lock:
                    failed[nid] = str(exc)
                return
            with lock:
                ok[nid] = result

        threads = [
            threading.Thread(
                target=one, args=(nid, method, payload), name=f"scatter-{nid}", daemon=True
            )
            for nid, (method, payload) in calls.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return ScatterResult(ok=ok, failed=failed)

    def heartbeat(self, *, timeout: float = 5.0) -> ScatterResult:
        """Ping every node, refreshing alive flags and info payloads."""
        result = self.scatter(
            {nid: ("__ping__", None) for nid in self._states}, timeout=timeout
        )
        for nid, info in result.ok.items():
            if isinstance(info, dict):
                with self._lock:
                    self._states[nid].info = info
        return result

    # -------------------------------------------------------------- liveness
    def _mark_ok(self, state: NodeState, info: dict | None) -> None:
        with self._lock:
            state.alive = True
            state.consecutive_failures = 0
            state.last_ok = time.monotonic()
            state.last_error = None
            if info is not None:
                state.info = info

    def _mark_failed(self, state: NodeState, error: str) -> None:
        with self._lock:
            state.alive = False
            state.consecutive_failures += 1
            state.last_error = error

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def __enter__(self) -> "Membership":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
