"""Node membership, heartbeats, and fan-out with explicit partial results.

A :class:`Membership` is the coordinator-side table of remote nodes: one
:class:`~repro.rpc.client.RpcClient` per node plus liveness state fed by
every call and by explicit :meth:`heartbeat` sweeps.  Its core primitive
is :meth:`scatter` — issue one call per node concurrently, each with its
own timeout, and return a :class:`ScatterResult` whose ``ok``/``failed``
maps account for *every* node addressed.  Degradation is therefore
always structured: a dead node shows up in ``failed`` with its error
string; nothing is silently cut from the result set.  Both the display
wall's tile fan-out and the sharded serving router are built on this.

Fault policy lives here too, because the membership table is the one
place that sees every call to every node:

- transport failures are retried per :class:`~repro.rpc.policy.RetryPolicy`
  (jittered exponential backoff, idempotent calls only — pass
  ``retry=RetryPolicy.none()`` per call to opt out);
- each node gets a :class:`~repro.rpc.policy.CircuitBreaker`; once it
  opens, calls fail fast with ``circuit open`` instead of burning a
  connect timeout per request.  ``__ping__`` probes bypass the open
  gate — an explicit :meth:`heartbeat` is how a recovered node heals
  its breaker immediately (the per-call half-open probe is the
  time-based fallback);
- every wait is clamped by the caller's
  :class:`~repro.util.deadline.Deadline` so one request chain never
  spends more than its end-to-end budget.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.rpc.client import RpcClient
from repro.rpc.policy import CircuitBreaker, RetryPolicy
from repro.rpc.server import RpcHandlerError
from repro.util.deadline import Deadline, DeadlineExceeded
from repro.util.errors import RpcError, ValidationError

__all__ = ["Membership", "NodeState", "ScatterResult"]

_DEFAULT_TIMEOUT = 30.0


@dataclass
class NodeState:
    """Coordinator-side view of one remote node."""

    node_id: str
    host: str
    port: int
    alive: bool = True
    consecutive_failures: int = 0
    last_ok: float | None = None  # monotonic timestamp of last success
    last_error: str | None = None
    info: dict = field(default_factory=dict)  # latest heartbeat payload

    def as_dict(self) -> dict:
        """JSON-safe snapshot for health reporting."""
        return {
            "node_id": self.node_id,
            "address": f"{self.host}:{self.port}",
            "alive": self.alive,
            "consecutive_failures": self.consecutive_failures,
            "lag_seconds": (
                None if self.last_ok is None else round(time.monotonic() - self.last_ok, 3)
            ),
            "last_error": self.last_error,
            "info": dict(self.info),
        }


@dataclass(frozen=True)
class ScatterResult:
    """Per-node outcome of one fan-out; every addressed node appears once."""

    ok: dict[str, Any]
    failed: dict[str, str]

    @property
    def complete(self) -> bool:
        return not self.failed


class Membership:
    """A table of RPC nodes with liveness tracking and concurrent fan-out."""

    def __init__(
        self,
        nodes: Mapping[str, tuple[str, int]] | Iterable[tuple[str, str, int]],
        *,
        timeout: float = _DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 3.0,
        seed: int = 0,
    ) -> None:
        if isinstance(nodes, Mapping):
            entries = [(nid, host, port) for nid, (host, port) in nodes.items()]
        else:
            entries = [(nid, host, port) for nid, host, port in nodes]
        if not entries:
            raise ValidationError("membership needs at least one node")
        seen: set[str] = set()
        for nid, _h, _p in entries:
            if nid in seen:
                raise ValidationError(f"duplicate node id {nid!r}")
            seen.add(nid)
        self.timeout = float(timeout)
        self.retry = RetryPolicy() if retry is None else retry
        self._rng = random.Random(seed)
        self._states: dict[str, NodeState] = {}
        self._clients: dict[str, RpcClient] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._lock = threading.Lock()
        for nid, host, port in entries:
            self._states[nid] = NodeState(node_id=nid, host=host, port=int(port))
            self._clients[nid] = RpcClient(host, int(port), timeout=self.timeout)
            self._breakers[nid] = CircuitBreaker(
                failure_threshold=breaker_failure_threshold,
                reset_timeout=breaker_reset_timeout,
            )

    # ---------------------------------------------------------------- queries
    @property
    def node_ids(self) -> list[str]:
        return list(self._states)

    def state(self, node_id: str) -> NodeState:
        try:
            return self._states[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    def alive_ids(self) -> list[str]:
        return [nid for nid, st in self._states.items() if st.alive]

    def stats(self) -> dict[str, dict]:
        """Per-node snapshots for the ``/v1/health`` ``shards`` field."""
        out = {}
        for nid, st in self._states.items():
            snap = st.as_dict()
            snap["breaker"] = self._breakers[nid].snapshot()
            out[nid] = snap
        return out

    def breaker(self, node_id: str) -> CircuitBreaker:
        try:
            return self._breakers[node_id]
        except KeyError:
            raise ValidationError(f"unknown node {node_id!r}") from None

    # ------------------------------------------------------------------ calls
    def call(
        self,
        node_id: str,
        method: str,
        payload: Any = None,
        *,
        timeout: float | None = None,
        deadline: Deadline | None = None,
        retry: RetryPolicy | None = None,
    ) -> Any:
        """One call to one node, updating liveness and breaker state.

        :class:`RpcHandlerError` (the remote handler raised) counts as a
        *live* node — it answered — so only transport failures mark a
        node down or trip its breaker.  Transport failures are retried
        per the policy (membership default unless overridden); every try
        and every backoff sleep is clamped to ``deadline``.  ``__ping__``
        bypasses an open breaker: it *is* the probe.
        """
        state = self.state(node_id)
        client = self._clients[node_id]
        breaker = self._breakers[node_id]
        policy = self.retry if retry is None else retry
        budget = Deadline.never() if deadline is None else deadline
        attempt = 0
        while True:
            attempt += 1
            budget.check(f"call {method!r} on {node_id}")
            if method != "__ping__" and not breaker.allow():
                raise RpcError(f"circuit open for node {node_id}")
            per_try = budget.clamp(self.timeout if timeout is None else float(timeout))
            try:
                result = client.call(method, payload, timeout=per_try)
            except RpcHandlerError:
                breaker.record_success()
                self._mark_ok(state, info=None)
                raise
            except RpcError as exc:
                breaker.record_failure()
                self._mark_failed(state, str(exc))
                if attempt >= policy.max_tries:
                    raise
                delay = policy.delay(attempt, self._rng)
                remaining = budget.remaining()
                if remaining is not None and delay >= remaining:
                    raise  # no budget left to back off and retry
                if delay > 0:
                    time.sleep(delay)
                continue
            breaker.record_success()
            self._mark_ok(state, info=None)
            return result

    def scatter(
        self,
        calls: Mapping[str, tuple[str, Any]],
        *,
        timeout: float | None = None,
        deadline: Deadline | None = None,
        retry: RetryPolicy | None = None,
    ) -> ScatterResult:
        """Issue ``{node_id: (method, payload)}`` concurrently.

        Each node gets its own thread and timeout; the result maps every
        addressed node into ``ok`` or ``failed`` — partial degradation
        is explicit, never a silent cut.  A spent deadline lands the
        node in ``failed`` too; the caller decides whether that becomes
        a partial result or a structured ``DEADLINE_EXCEEDED``.
        """
        ok: dict[str, Any] = {}
        failed: dict[str, str] = {}
        lock = threading.Lock()

        def one(nid: str, method: str, payload: Any) -> None:
            try:
                result = self.call(
                    nid, method, payload, timeout=timeout, deadline=deadline, retry=retry
                )
            except (RpcError, DeadlineExceeded) as exc:  # RpcError incl. RpcHandlerError
                with lock:
                    failed[nid] = str(exc)
                return
            with lock:
                ok[nid] = result

        threads = [
            threading.Thread(
                target=one, args=(nid, method, payload), name=f"scatter-{nid}", daemon=True
            )
            for nid, (method, payload) in calls.items()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return ScatterResult(ok=ok, failed=failed)

    def heartbeat(self, *, timeout: float = 5.0) -> ScatterResult:
        """Ping every node, refreshing alive flags, breakers, and info.

        Pings bypass open breakers (single attempt, no retry): a sweep
        after a shard restart immediately closes its breaker and brings
        it back into routing without waiting out the reset timeout.
        """
        result = self.scatter(
            {nid: ("__ping__", None) for nid in self._states},
            timeout=timeout,
            retry=RetryPolicy.none(),
        )
        for nid, info in result.ok.items():
            if isinstance(info, dict):
                with self._lock:
                    self._states[nid].info = info
        return result

    # -------------------------------------------------------------- liveness
    def _mark_ok(self, state: NodeState, info: dict | None) -> None:
        with self._lock:
            state.alive = True
            state.consecutive_failures = 0
            state.last_ok = time.monotonic()
            state.last_error = None
            if info is not None:
                state.info = info

    def _mark_failed(self, state: NodeState, error: str) -> None:
        with self._lock:
            state.alive = False
            state.consecutive_failures += 1
            state.last_error = error

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        for client in self._clients.values():
            client.close()

    def __enter__(self) -> "Membership":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
