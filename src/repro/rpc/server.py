"""Threaded request/reply RPC server with a handler registry.

One :class:`RpcServer` owns a listening TCP socket; each accepted
connection gets a thread that answers frames sequentially (a connection
is a client-side request pipeline, so ordering per connection is free).
Handlers are plain callables ``payload -> reply payload``; an exception
escaping a handler travels back to the caller as a structured error
reply — it never kills the connection thread or the server, mirroring
the exceptions-are-data rule of the index worker pool.

The built-in ``__ping__`` method answers liveness probes with the node's
id, registered methods, request counters, and whatever the owner's
``info`` callback reports (shard nodes put their dataset fingerprints
here, which is what lets the router refuse stale shards).
"""

from __future__ import annotations

import logging
import socket
import threading
from typing import Any, Callable, Mapping

from repro.rpc.faults import FaultPlan
from repro.rpc.framing import FrameError, encode_message, read_frame, write_frame
from repro.util.errors import RpcError

__all__ = ["RpcHandlerError", "RpcServer"]

_log = logging.getLogger(__name__)


class RpcHandlerError(RpcError):
    """A remote handler raised; carries the remote exception's type name."""

    def __init__(self, kind: str, message: str):
        self.kind = kind
        super().__init__(f"remote {kind}: {message}")


class RpcServer:
    """Serve a registry of named handlers over framed TCP."""

    def __init__(
        self,
        handlers: Mapping[str, Callable[[Any], Any]],
        *,
        node_id: str = "node",
        host: str = "127.0.0.1",
        port: int = 0,
        info: Callable[[], dict] | None = None,
        fault_plan: FaultPlan | None = None,
        join_timeout: float = 5.0,
        strict_join: bool = False,
    ) -> None:
        self.node_id = node_id
        self._handlers = dict(handlers)
        self._info = info
        self._fault_plan = fault_plan
        self.join_timeout = float(join_timeout)
        self.strict_join = bool(strict_join)
        self.leaked = False  # accept thread outlived close()'s join
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self._accept_thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def serve_background(self) -> "RpcServer":
        """Start the accept loop on a daemon thread; returns self."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"rpc-accept-{self.node_id}", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        """Stop the node dead: listener *and* live connections drop.

        Tearing down established connections (not just the listener) is
        what makes ``close`` model node death — a peer blocked on a
        reply sees the transport fail now, not a half-alive server that
        still answers its old connections.  Safe to call twice.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        # shutdown() before close(): closing a listening socket does not
        # wake a thread blocked in accept() on Linux, shutdown() does
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=self.join_timeout)
            if self._accept_thread.is_alive():
                # A leaked accept thread means the listener teardown did
                # not unblock accept() — surface it instead of leaving a
                # zombie thread holding the port.
                self.leaked = True
                message = (
                    f"rpc server {self.node_id!r} accept thread still alive "
                    f"{self.join_timeout}s after close()"
                )
                _log.warning(message)
                if self.strict_join:
                    raise RpcError(message)

    def __enter__(self) -> "RpcServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- loops
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener closed
            if self._fault_plan is not None and self._fault_plan.connect_fault():
                # Injected connect-refused: accept then drop before
                # reading a frame — the client sees a reset on first use.
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            t = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"rpc-conn-{self.node_id}",
                daemon=True,
            )
            with self._lock:
                self._threads = [x for x in self._threads if x.is_alive()]
                self._threads.append(t)
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            self._conns.add(conn)
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while not self._closed.is_set():
                    try:
                        message = read_frame(conn)
                    except (FrameError, RpcError, OSError):
                        return  # peer hung up or sent garbage; drop the connection
                    if self._closed.is_set():
                        return  # raced close(): a dead node answers nothing
                    reply = self._answer(message)
                    try:
                        if not self._send_reply(conn, message, reply):
                            return
                    except (RpcError, OSError):
                        return
        finally:
            with self._lock:
                self._conns.discard(conn)

    def _send_reply(self, conn: socket.socket, message: Any, reply: tuple) -> bool:
        """Send one reply, consulting the fault plan; False drops the conn."""
        plan = self._fault_plan
        if plan is not None:
            method = message[1] if isinstance(message, tuple) and len(message) == 3 else ""
            kind = plan.reply_fault(str(method))
            if kind is not None:
                dropped = plan.inject_reply(
                    conn, encode_message(reply), kind=kind, abort=self._closed
                )
                return not dropped
        write_frame(conn, reply)
        return True

    def _answer(self, message: Any) -> tuple:
        if not (isinstance(message, tuple) and len(message) == 3):
            return ("err", None, "FrameError", f"malformed request {type(message).__name__}")
        seq, method, payload = message
        with self._lock:
            self.requests += 1
        if method == "__ping__":
            return ("ok", seq, self._ping_payload())
        handler = self._handlers.get(method)
        if handler is None:
            with self._lock:
                self.errors += 1
            return ("err", seq, "UnknownMethod", f"no handler for {method!r}")
        try:
            return ("ok", seq, handler(payload))
        except Exception as exc:  # noqa: BLE001 — handler exceptions are data
            with self._lock:
                self.errors += 1
            return ("err", seq, type(exc).__name__, str(exc))

    def _ping_payload(self) -> dict:
        payload = {
            "node_id": self.node_id,
            "methods": sorted(self._handlers),
            "requests": self.requests,
            "errors": self.errors,
        }
        if self._fault_plan is not None:
            payload["faults"] = self._fault_plan.stats()
        if self._info is not None:
            try:
                payload.update(self._info())
            except Exception as exc:  # noqa: BLE001 — a bad info hook must not kill pings
                payload["info_error"] = f"{type(exc).__name__}: {exc}"
        return payload
