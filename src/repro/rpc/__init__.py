"""Generic length-prefixed RPC layer shared by the wall and the serving tier.

The paper's cluster has two communication patterns: the display wall's
master/node tile protocol and (in our reproduction) the sharded serving
tier's scatter-gather query fan-out.  Both need the same substrate —
typed messages over a framed byte transport, node membership with
liveness, and fan-out with per-node timeouts whose failures surface as
*structured partial results*, never silent cuts.  This package provides
that substrate:

- :mod:`repro.rpc.mailbox` — (source, tag)-matched message buffering,
  extracted from the in-process MPI-style communicator so both transports
  share one matching engine.
- :mod:`repro.rpc.framing` — length-prefixed frames with magic + size
  guards over any socket-like stream.
- :mod:`repro.rpc.server` / :mod:`repro.rpc.client` — a threaded TCP
  request/reply server with a handler registry and a reconnecting client.
- :mod:`repro.rpc.membership` — node tables, heartbeats, and
  ``scatter`` fan-out returning explicit per-node ok/failed maps.
"""

from repro.rpc.client import RpcClient
from repro.rpc.faults import FAULT_KINDS, FaultPlan
from repro.rpc.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_message,
    encode_message,
    read_frame,
    write_frame,
)
from repro.rpc.mailbox import ANY_SOURCE, ANY_TAG, Envelope, Mailbox, matches
from repro.rpc.membership import Membership, NodeState, ScatterResult
from repro.rpc.policy import CircuitBreaker, RetryPolicy
from repro.rpc.server import RpcHandlerError, RpcServer
from repro.util.deadline import Deadline, DeadlineExceeded
from repro.util.errors import RpcError

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "Envelope",
    "FAULT_KINDS",
    "FaultPlan",
    "FrameError",
    "Mailbox",
    "matches",
    "MAX_FRAME_BYTES",
    "Membership",
    "NodeState",
    "RetryPolicy",
    "RpcClient",
    "RpcError",
    "RpcHandlerError",
    "RpcServer",
    "ScatterResult",
    "decode_message",
    "encode_message",
    "read_frame",
    "write_frame",
]
