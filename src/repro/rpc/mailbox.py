"""(source, tag)-matched message buffering.

This is the matching engine behind every transport in the repo: the
in-process MPI-style :class:`~repro.parallel.comm.Communicator` posts
envelopes into per-rank mailboxes, and the RPC server uses the same
structure to pair replies with outstanding requests.  A message that
arrives before a matching ``take`` is posted waits in ``pending``;
``take`` scans pending first, then blocks on the queue.
"""

from __future__ import annotations

import queue
import time
from dataclasses import dataclass
from typing import Any

from repro.util.errors import CommunicationError

__all__ = ["ANY_SOURCE", "ANY_TAG", "Envelope", "Mailbox", "matches"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Envelope:
    source: int
    tag: int
    payload: Any


def matches(env: Envelope, source: int, tag: int) -> bool:
    return (source == ANY_SOURCE or env.source == source) and (
        tag == ANY_TAG or env.tag == tag
    )


class Mailbox:
    """Incoming-message store with (source, tag) matching.

    Messages that arrive before a matching ``take`` is posted wait in
    ``pending``; ``take`` scans pending first, then blocks on the queue.
    """

    def __init__(self) -> None:
        self.queue: "queue.Queue[Envelope]" = queue.Queue()
        self.pending: list[Envelope] = []

    def put(self, env: Envelope) -> None:
        self.queue.put(env)

    def take(self, source: int, tag: int, timeout: float) -> Envelope:
        deadline = time.monotonic() + timeout
        # scan buffered messages first
        for i, env in enumerate(self.pending):
            if matches(env, source, tag):
                return self.pending.pop(i)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CommunicationError(
                    f"recv timed out waiting for source={source} tag={tag}"
                )
            try:
                env = self.queue.get(timeout=remaining)
            except queue.Empty:
                continue
            if matches(env, source, tag):
                return env
            self.pending.append(env)
