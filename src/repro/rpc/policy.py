"""Client-side fault policies: jittered retry backoff + circuit breakers.

Both policies live on the *caller* (the membership layer) because that
is where the blast radius of a flapping node is decided.  The split of
responsibilities across the stack:

- :class:`RetryPolicy` re-issues an **idempotent** call after a
  transport failure, with exponential backoff and seeded jitter so a
  thundering herd of routers does not re-synchronize on a recovering
  shard.  Handler errors (the remote ran and *answered* with an error)
  are never retried here — the remote already did the work once.
- :class:`CircuitBreaker` tracks consecutive transport failures per
  node and, once a threshold trips, fails calls fast for a cool-off
  window instead of burning a full connect timeout per request.  After
  the window one probe is let through (*half-open*); success closes the
  breaker, failure re-opens it.  Heartbeats use the same probe gate, so
  a dead shard is probed at the cool-off cadence, not hammered by every
  query.

Hedging (racing a second replica for tail latency) is deliberately
*not* here: it needs the replica map, which only the router has — see
:mod:`repro.cluster_serving.hedging`.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.util.errors import ValidationError

__all__ = ["BREAKER_CLOSED", "BREAKER_HALF_OPEN", "BREAKER_OPEN", "CircuitBreaker", "RetryPolicy"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for idempotent calls.

    ``max_tries`` counts the first attempt: ``max_tries=3`` means one
    call plus at most two retries.  The delay before retry *n* (1-based)
    is ``base_delay * multiplier**(n-1)`` capped at ``max_delay``, then
    scaled by a uniform factor in ``[1-jitter, 1]`` drawn from the
    caller's seeded RNG — jitter only ever shortens the wait, so the
    worst-case latency contribution stays the deterministic cap.
    """

    max_tries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_tries < 1:
            raise ValidationError(f"max_tries must be >= 1, got {self.max_tries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValidationError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValidationError(f"multiplier must be >= 1, got {self.multiplier}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValidationError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValidationError(f"retry_index must be >= 1, got {retry_index}")
        raw = min(self.base_delay * self.multiplier ** (retry_index - 1), self.max_delay)
        return raw * (1.0 - self.jitter * rng.random())

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt, no retries — the pre-breaker behaviour."""
        return cls(max_tries=1)


class CircuitBreaker:
    """Per-node closed → open → half-open failure gate.

    Thread-safe; the clock is injectable so tests drive state
    transitions without sleeping.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 3.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValidationError(f"reset_timeout must be > 0, got {reset_timeout}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_inflight = False
        self.opens = 0  # lifetime count, surfaced in health

    # ------------------------------------------------------------------- gate
    def allow(self) -> bool:
        """May a call proceed now?  Half-open admits exactly one probe."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._state = BREAKER_HALF_OPEN
                self._probe_inflight = False
            # half-open: one probe slot
            if self._probe_inflight:
                return False
            self._probe_inflight = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._state = BREAKER_CLOSED
            self._failures = 0
            self._opened_at = None
            self._probe_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == BREAKER_HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != BREAKER_OPEN:
                    self.opens += 1
                self._state = BREAKER_OPEN
                self._opened_at = self._clock()
                self._probe_inflight = False

    # ------------------------------------------------------------ introspection
    @property
    def state(self) -> str:
        """Current state, accounting for cool-off expiry (read-only)."""
        with self._lock:
            if (
                self._state == BREAKER_OPEN
                and self._opened_at is not None
                and self._clock() - self._opened_at >= self.reset_timeout
            ):
                return BREAKER_HALF_OPEN
            return self._state

    def snapshot(self) -> dict:
        """JSON-safe state for ``/v1/health``."""
        state = self.state
        with self._lock:
            retry_in = None
            if self._state == BREAKER_OPEN and self._opened_at is not None:
                retry_in = max(0.0, self.reset_timeout - (self._clock() - self._opened_at))
            return {
                "state": state,
                "consecutive_failures": self._failures,
                "opens": self.opens,
                "retry_in_seconds": retry_in,
            }
