"""Deterministic fault injection for the RPC seams.

A :class:`FaultPlan` is a *seeded* source of failure decisions that an
:class:`~repro.rpc.server.RpcServer` consults at its two seams with the
outside world:

- **accept time** — :meth:`FaultPlan.connect_fault` decides whether the
  freshly accepted connection is closed immediately (the client sees a
  connect-then-reset, the practical twin of ``ECONNREFUSED``);
- **reply time** — :meth:`FaultPlan.reply_fault` picks at most one fault
  kind per request, executed by :meth:`FaultPlan.inject_reply` against
  the already-encoded reply frame.

Fault kinds (all at the framing layer, where real networks break):

================  ======================================================
``connect_refused``  accept then close before reading a frame
``reset_mid_frame``  send the first half of the reply frame, then close
``stall``            hold the reply for ``stall_seconds`` before sending
``slow_drip``        send the reply in tiny chunks with pauses between
``garbage``          send a junk frame (bad magic), then close
================  ======================================================

Decisions come from one ``random.Random(seed)`` consumed behind a lock,
so a plan replays the same decision *sequence* for the same seed; under
concurrent connections the interleaving of draws is the only source of
nondeterminism.  ``max_faults`` bounds the total injected so a plan can
model "flaps N times, then heals" — the schedule chaos tests drive
recovery assertions from.

Plans are usable in-process (pass ``fault_plan=`` to ``RpcServer`` /
``ShardNode``) and from the shard CLI via ``--fault-plan`` with a spec
string like ``seed=7,reset_mid_frame=0.3,stall=0.1,stall_seconds=2``.
"""

from __future__ import annotations

import random
import socket
import threading

from repro.util.errors import ValidationError

__all__ = ["FAULT_KINDS", "FaultPlan"]

FAULT_KINDS = ("connect_refused", "reset_mid_frame", "stall", "slow_drip", "garbage")

_INT_PARAMS = ("seed", "max_faults")
_FLOAT_PARAMS = ("stall_seconds", "drip_interval")


class FaultPlan:
    """Seeded per-server schedule of injected transport faults."""

    def __init__(
        self,
        *,
        seed: int = 0,
        rates: dict[str, float] | None = None,
        stall_seconds: float = 5.0,
        drip_chunk_bytes: int = 5,
        drip_interval: float = 0.05,
        max_faults: int | None = None,
        methods: tuple[str, ...] | None = None,
        **kind_rates: float,
    ) -> None:
        merged = dict(rates or {})
        merged.update(kind_rates)
        for kind, rate in merged.items():
            if kind not in FAULT_KINDS:
                raise ValidationError(
                    f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                )
            if not (0.0 <= float(rate) <= 1.0):
                raise ValidationError(f"fault rate for {kind!r} must be in [0, 1], got {rate}")
        if stall_seconds < 0 or drip_interval < 0:
            raise ValidationError("fault delays must be >= 0")
        if drip_chunk_bytes < 1:
            raise ValidationError(f"drip_chunk_bytes must be >= 1, got {drip_chunk_bytes}")
        self.seed = int(seed)
        self.rates = {k: float(merged.get(k, 0.0)) for k in FAULT_KINDS}
        self.stall_seconds = float(stall_seconds)
        self.drip_chunk_bytes = int(drip_chunk_bytes)
        self.drip_interval = float(drip_interval)
        self.max_faults = None if max_faults is None else int(max_faults)
        self.methods = None if methods is None else tuple(methods)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}

    # ------------------------------------------------------------------ spec
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,...`` CLI spec string."""
        kwargs: dict = {}
        rates: dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValidationError(f"fault-plan item {item!r} is not key=value")
            key, value = (part.strip() for part in item.split("=", 1))
            if key in FAULT_KINDS:
                rates[key] = float(value)
            elif key in _INT_PARAMS:
                kwargs[key] = int(value)
            elif key in _FLOAT_PARAMS:
                kwargs[key] = float(value)
            elif key == "drip_chunk_bytes":
                kwargs[key] = int(value)
            elif key == "methods":
                kwargs["methods"] = tuple(m for m in value.split("|") if m)
            else:
                raise ValidationError(f"unknown fault-plan key {key!r}")
        return cls(rates=rates, **kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts += [f"{k}={v}" for k, v in self.rates.items() if v > 0]
        if self.max_faults is not None:
            parts.append(f"max_faults={self.max_faults}")
        return ",".join(parts)

    # ------------------------------------------------------------- decisions
    def _spend(self, kind: str) -> bool:
        """Count one injected fault; False if the budget is exhausted."""
        if self.max_faults is not None and sum(self.injected.values()) >= self.max_faults:
            return False
        self.injected[kind] += 1
        return True

    def connect_fault(self) -> bool:
        """Decide at accept time whether to refuse this connection."""
        with self._lock:
            rate = self.rates["connect_refused"]
            if rate <= 0.0:
                return False
            return self._rng.random() < rate and self._spend("connect_refused")

    def reply_fault(self, method: str) -> str | None:
        """Pick at most one reply-seam fault kind for this request."""
        if self.methods is not None and method not in self.methods:
            return None
        with self._lock:
            for kind in ("reset_mid_frame", "stall", "slow_drip", "garbage"):
                rate = self.rates[kind]
                if rate > 0.0 and self._rng.random() < rate:
                    return kind if self._spend(kind) else None
            return None

    # -------------------------------------------------------------- execution
    def inject_reply(
        self,
        conn: socket.socket,
        frame: bytes,
        *,
        kind: str,
        abort: threading.Event,
    ) -> bool:
        """Apply ``kind`` to an encoded reply frame.

        Returns True when the connection must be dropped afterwards
        (the fault consumed the reply); False when the full reply was
        eventually delivered (stall / slow drip) and serving continues.
        ``abort`` is the server's closed event so injected delays never
        outlive shutdown.
        """
        if kind == "reset_mid_frame":
            conn.sendall(frame[: max(1, len(frame) // 2)])
            return True
        if kind == "garbage":
            conn.sendall(b"JUNK" + frame[4:8] + b"\xde\xad\xbe\xef")
            return True
        if kind == "stall":
            if abort.wait(self.stall_seconds):
                return True
            conn.sendall(frame)
            return False
        if kind == "slow_drip":
            for start in range(0, len(frame), self.drip_chunk_bytes):
                if abort.wait(self.drip_interval):
                    return True
                conn.sendall(frame[start : start + self.drip_chunk_bytes])
            return False
        raise ValidationError(f"unknown reply fault kind {kind!r}")

    def stats(self) -> dict:
        with self._lock:
            return {
                "seed": self.seed,
                "injected": {k: v for k, v in self.injected.items() if v},
                "total_injected": sum(self.injected.values()),
            }
