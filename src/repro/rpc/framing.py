"""Length-prefixed frames over a stream socket.

Wire format, little-endian::

    MAGIC (4 bytes) | length (uint32) | payload (length bytes)

The magic word rejects cross-protocol garbage (an HTTP client poking the
RPC port) before a single payload byte is read, and the length guard
bounds allocation so a corrupt or hostile peer cannot make a node
swallow a multi-gigabyte frame.  Payloads are pickled message objects —
the RPC tier is an *internal* transport between our own trusted
processes (the same trust model as :mod:`multiprocessing`'s pipes used
by the index worker pool); it is never exposed to clients, who speak
the JSON v1 protocol through the HTTP facade.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.util.errors import RpcError

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "FrameError",
    "encode_message",
    "decode_message",
    "read_frame",
    "write_frame",
]

MAGIC = b"RPRC"
_HEADER = struct.Struct("<4sI")

#: Upper bound on a single frame's payload.  A shard reply for a large
#: batch is tens of megabytes of float64 scores; 256 MiB leaves headroom
#: while still refusing absurd lengths from a corrupt header.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FrameError(RpcError):
    """A frame violated the wire format (bad magic, oversize, truncated)."""


def encode_message(obj: Any) -> bytes:
    """Serialize one message into a complete frame (header + payload)."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"message of {len(payload)} bytes exceeds frame cap {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(MAGIC, len(payload)) + payload


def decode_message(payload: bytes) -> Any:
    """Deserialize one frame payload back into a message object."""
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 — any unpickling failure is a frame error
        raise FrameError(f"undecodable frame payload: {exc}") from exc


def write_frame(sock: socket.socket, obj: Any) -> None:
    """Encode ``obj`` and send it as one frame; raises :class:`RpcError` on a dead peer."""
    try:
        sock.sendall(encode_message(obj))
    except OSError as exc:
        raise RpcError(f"send failed: {exc}") from exc


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 1 << 20))
        except socket.timeout as exc:
            raise RpcError(f"recv timed out after {sock.gettimeout()}s") from exc
        except OSError as exc:
            raise RpcError(f"recv failed: {exc}") from exc
        if not chunk:
            raise FrameError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Any:
    """Read one complete frame and return the decoded message.

    Raises :class:`FrameError` for protocol violations and
    :class:`RpcError` for transport failures (timeout, reset).  An EOF
    cleanly *between* frames raises ``FrameError`` with 0 bytes read —
    callers that treat shutdown as normal catch that case.
    """
    header = _read_exact(sock, _HEADER.size)
    magic, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    return decode_message(_read_exact(sock, length))
