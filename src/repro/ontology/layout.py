"""Layered graph layout for GOLEM's local exploration map.

GOLEM draws a neighbourhood of the GO DAG (Figure 5): ancestors above the
focus term, descendants below.  We assign each node a layer (its signed
distance from the focus), then reduce edge crossings with a few
barycenter sweeps — the standard Sugiyama recipe, small enough to be
exact for GOLEM-sized maps (tens of nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import OntologyError

__all__ = ["NodePosition", "layered_layout"]


@dataclass(frozen=True)
class NodePosition:
    term_id: str
    layer: int  # 0 = focus row; negative = ancestors (drawn above)
    slot: int  # ordinal position within the layer
    x: float  # normalized [0, 1] horizontal coordinate
    y: float  # normalized [0, 1] vertical coordinate (0 = top)


def layered_layout(
    nodes: set[str],
    edges: list[tuple[str, str]],
    layers: dict[str, int],
    *,
    barycenter_sweeps: int = 4,
) -> dict[str, NodePosition]:
    """Compute display coordinates for a GOLEM neighbourhood.

    Parameters
    ----------
    nodes / edges:
        Subgraph as produced by :meth:`GeneOntology.neighborhood`
        (edges are (child, parent) pairs).
    layers:
        Layer index per node; parents must sit on smaller (higher-drawn)
        layers than children wherever both ends of an edge are present.
    """
    if not nodes:
        return {}
    missing = {n for n in nodes if n not in layers}
    if missing:
        raise OntologyError(f"nodes missing layer assignment: {sorted(missing)[:5]}")
    for child, parent in edges:
        if layers[parent] >= layers[child]:
            raise OntologyError(
                f"edge {child}->{parent} does not point to a smaller layer "
                f"({layers[child]} -> {layers[parent]})"
            )

    by_layer: dict[int, list[str]] = {}
    for node in sorted(nodes):
        by_layer.setdefault(layers[node], []).append(node)
    layer_keys = sorted(by_layer)

    # adjacency for barycenter ordering
    neighbours: dict[str, list[str]] = {n: [] for n in nodes}
    for child, parent in edges:
        neighbours[child].append(parent)
        neighbours[parent].append(child)

    order: dict[str, int] = {}
    for layer in layer_keys:
        for slot, node in enumerate(by_layer[layer]):
            order[node] = slot

    for sweep in range(barycenter_sweeps):
        # alternate top-down / bottom-up sweeps
        keys = layer_keys if sweep % 2 == 0 else list(reversed(layer_keys))
        for layer in keys:
            row = by_layer[layer]
            scores: dict[str, float] = {}
            for node in row:
                adjacent = [order[n] for n in neighbours[node] if layers[n] != layer]
                scores[node] = sum(adjacent) / len(adjacent) if adjacent else float(order[node])
            row.sort(key=lambda n: (scores[n], n))
            for slot, node in enumerate(row):
                order[node] = slot

    n_layers = len(layer_keys)
    positions: dict[str, NodePosition] = {}
    for li, layer in enumerate(layer_keys):
        row = by_layer[layer]
        width = len(row)
        y = 0.5 if n_layers == 1 else li / (n_layers - 1)
        for slot, node in enumerate(row):
            x = 0.5 if width == 1 else (slot + 0.5) / width
            positions[node] = NodePosition(term_id=node, layer=layer, slot=slot, x=x, y=y)
    return positions
