"""Minimal OBO 1.2 flat-file parser/writer for GO term stanzas.

Supports the subset of OBO the GO consortium files actually use for
structure: ``[Term]`` stanzas with ``id``, ``name``, ``namespace``,
``def``, ``is_a`` and ``is_obsolete`` tags.  Unknown tags are ignored
(the real files carry dozens we do not need).
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.ontology.dag import GeneOntology, Term
from repro.util.errors import DataFormatError

__all__ = ["parse_obo", "format_obo", "read_obo", "write_obo"]


def parse_obo(text: str, *, path: str | None = None, keep_obsolete: bool = False) -> GeneOntology:
    """Parse OBO text into a :class:`GeneOntology`.

    Obsolete terms are dropped by default (they have no is_a links and
    would pollute enrichment universes).
    """
    terms: list[Term] = []
    stanza: dict[str, list[str]] | None = None
    stanza_line = 0

    def flush() -> None:
        nonlocal stanza
        if stanza is None:
            return
        if "id" not in stanza:
            raise DataFormatError("[Term] stanza missing id", path=path, line=stanza_line)
        obsolete = stanza.get("is_obsolete", ["false"])[0].strip().lower() == "true"
        term = Term(
            term_id=stanza["id"][0].strip(),
            name=stanza.get("name", [""])[0].strip(),
            namespace=stanza.get("namespace", ["biological_process"])[0].strip(),
            parents=tuple(
                v.split("!")[0].strip() for v in stanza.get("is_a", ())
            ),
            definition=_unquote(stanza.get("def", [""])[0]),
            obsolete=obsolete,
        )
        if keep_obsolete or not obsolete:
            terms.append(term)
        stanza = None

    in_term = False
    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.strip()
        if not line or line.startswith("!"):
            continue
        if line.startswith("["):
            flush()
            in_term = line == "[Term]"
            if in_term:
                stanza = {}
                stanza_line = line_no
            continue
        if not in_term or stanza is None:
            continue
        if ":" not in line:
            raise DataFormatError(f"malformed tag line {line!r}", path=path, line=line_no)
        tag, _, value = line.partition(":")
        stanza.setdefault(tag.strip(), []).append(value.strip())
    flush()
    if not terms:
        raise DataFormatError("OBO file contains no [Term] stanzas", path=path)
    # obsolete terms may still be referenced as parents if kept; when dropped,
    # strip dangling parent links so the DAG constructor does not reject them.
    known = {t.term_id for t in terms}
    cleaned = [
        Term(
            term_id=t.term_id,
            name=t.name,
            namespace=t.namespace,
            parents=tuple(p for p in t.parents if p in known),
            definition=t.definition,
            obsolete=t.obsolete,
        )
        for t in terms
    ]
    return GeneOntology(cleaned)


def format_obo(ontology: GeneOntology, *, header: str = "format-version: 1.2") -> str:
    out = io.StringIO()
    out.write(header + "\n\n")
    for term_id in ontology.topological_order():
        term = ontology.term(term_id)
        out.write("[Term]\n")
        out.write(f"id: {term.term_id}\n")
        out.write(f"name: {term.name}\n")
        out.write(f"namespace: {term.namespace}\n")
        if term.definition:
            out.write(f'def: "{term.definition}"\n')
        for parent in term.parents:
            out.write(f"is_a: {parent} ! {ontology.term(parent).name}\n")
        if term.obsolete:
            out.write("is_obsolete: true\n")
        out.write("\n")
    return out.getvalue()


def read_obo(path: str | Path) -> GeneOntology:
    path = Path(path)
    return parse_obo(path.read_text(), path=str(path))


def write_obo(ontology: GeneOntology, path: str | Path) -> None:
    Path(path).write_text(format_obo(ontology))


def _unquote(value: str) -> str:
    value = value.strip()
    if value.startswith('"'):
        end = value.find('"', 1)
        if end > 0:
            return value[1:end]
    return value
