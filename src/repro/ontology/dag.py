"""The Gene Ontology DAG: terms, is-a edges, traversal.

GO "organizes known biological information into a hierarchical graph
structure" (paper §3).  Terms form a rooted DAG — a term may have several
parents — and GOLEM's views and enrichment both need fast ancestor /
descendant closure, so we precompute adjacency both ways and memoize
closures on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.util.errors import OntologyError

__all__ = ["Term", "GeneOntology"]


@dataclass(frozen=True)
class Term:
    """One GO term.  ``parents`` holds is-a edges toward the root(s)."""

    term_id: str
    name: str = ""
    namespace: str = "biological_process"
    parents: tuple[str, ...] = ()
    definition: str = ""
    obsolete: bool = False


class GeneOntology:
    """An immutable-after-build DAG of :class:`Term` objects.

    Construction validates that every parent reference resolves and that
    the graph is acyclic (a corrupted OBO file must fail loudly, not hang
    a traversal).
    """

    def __init__(self, terms: Iterable[Term]) -> None:
        self._terms: dict[str, Term] = {}
        for term in terms:
            if term.term_id in self._terms:
                raise OntologyError(f"duplicate term id {term.term_id!r}")
            self._terms[term.term_id] = term
        self._children: dict[str, list[str]] = {tid: [] for tid in self._terms}
        for term in self._terms.values():
            for parent in term.parents:
                if parent not in self._terms:
                    raise OntologyError(
                        f"term {term.term_id!r} references unknown parent {parent!r}"
                    )
                self._children[parent].append(term.term_id)
        for kids in self._children.values():
            kids.sort()
        self._assert_acyclic()
        self._ancestor_cache: dict[str, frozenset[str]] = {}
        self._descendant_cache: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term_id: str) -> bool:
        return term_id in self._terms

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms.values())

    def term(self, term_id: str) -> Term:
        try:
            return self._terms[term_id]
        except KeyError:
            raise KeyError(f"no term {term_id!r} in ontology") from None

    def term_ids(self) -> list[str]:
        return list(self._terms)

    def parents(self, term_id: str) -> list[str]:
        return list(self.term(term_id).parents)

    def children(self, term_id: str) -> list[str]:
        self.term(term_id)  # raise uniformly on unknown ids
        return list(self._children[term_id])

    def roots(self) -> list[str]:
        return sorted(tid for tid, t in self._terms.items() if not t.parents)

    def leaves(self) -> list[str]:
        return sorted(tid for tid in self._terms if not self._children[tid])

    # -------------------------------------------------------------- traversal
    def ancestors(self, term_id: str) -> frozenset[str]:
        """All terms reachable via is-a edges toward the roots (exclusive)."""
        cached = self._ancestor_cache.get(term_id)
        if cached is not None:
            return cached
        out: set[str] = set()
        stack = list(self.term(term_id).parents)
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._terms[current].parents)
        result = frozenset(out)
        self._ancestor_cache[term_id] = result
        return result

    def descendants(self, term_id: str) -> frozenset[str]:
        """All terms below ``term_id`` (exclusive)."""
        cached = self._descendant_cache.get(term_id)
        if cached is not None:
            return cached
        out: set[str] = set()
        stack = list(self.children(term_id))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.add(current)
            stack.extend(self._children[current])
        result = frozenset(out)
        self._descendant_cache[term_id] = result
        return result

    def depth(self, term_id: str) -> int:
        """Shortest is-a path length from any root to ``term_id``."""
        self.term(term_id)
        # BFS upward: depth(t) = 0 for roots
        from collections import deque

        seen = {term_id: 0}
        queue = deque([term_id])
        while queue:
            current = queue.popleft()
            parents = self._terms[current].parents
            if not parents:
                return seen[current]
            for p in parents:
                if p not in seen:
                    seen[p] = seen[current] + 1
                    queue.append(p)
        raise OntologyError(f"term {term_id!r} is not connected to any root")

    def topological_order(self) -> list[str]:
        """Parents-before-children order (stable across runs)."""
        in_degree = {tid: len(t.parents) for tid, t in self._terms.items()}
        ready = sorted(tid for tid, deg in in_degree.items() if deg == 0)
        out: list[str] = []
        import heapq

        heap = list(ready)
        heapq.heapify(heap)
        while heap:
            tid = heapq.heappop(heap)
            out.append(tid)
            for child in self._children[tid]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    heapq.heappush(heap, child)
        if len(out) != len(self._terms):
            raise OntologyError("ontology contains a cycle")
        return out

    def _assert_acyclic(self) -> None:
        self.topological_order()

    # -------------------------------------------------------------- subgraphs
    def neighborhood(
        self, focus: str, *, up: int = 2, down: int = 2
    ) -> tuple[set[str], list[tuple[str, str]]]:
        """Terms within ``up`` levels above and ``down`` below ``focus``.

        Returns ``(node_ids, edges)`` with edges as (child, parent) pairs
        restricted to the selected nodes — the raw material of GOLEM's
        local exploration map.
        """
        if up < 0 or down < 0:
            raise OntologyError(f"up/down must be non-negative, got up={up} down={down}")
        nodes: set[str] = {focus}
        frontier = {focus}
        for _ in range(up):
            frontier = {p for t in frontier for p in self.term(t).parents}
            nodes.update(frontier)
        frontier = {focus}
        for _ in range(down):
            frontier = {c for t in frontier for c in self._children[t]}
            nodes.update(frontier)
        edges = [
            (child, parent)
            for child in sorted(nodes)
            for parent in self._terms[child].parents
            if parent in nodes
        ]
        return nodes, edges

    def to_networkx(self):
        """Export as a networkx DiGraph with child->parent edges."""
        import networkx as nx

        graph = nx.DiGraph()
        for term in self._terms.values():
            graph.add_node(term.term_id, name=term.name, namespace=term.namespace)
        for term in self._terms.values():
            for parent in term.parents:
                graph.add_edge(term.term_id, parent)
        return graph
