"""GAF 2.x gene-association file support.

Real GO annotations ship as GAF — 17 tab-separated columns per
association line.  We read/write the subset GOLEM needs: DB object id
(column 2), GO id (column 5), qualifier (column 4, to honour NOT),
aspect (column 9) and evidence code (column 7).  Comment lines start
with ``!``.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.ontology.annotations import TermAnnotations
from repro.ontology.dag import GeneOntology
from repro.util.errors import DataFormatError

__all__ = ["parse_gaf", "format_gaf", "read_gaf", "write_gaf"]

_N_COLUMNS = 17
_ASPECTS = {"P": "biological_process", "F": "molecular_function", "C": "cellular_component"}


def parse_gaf(
    text: str,
    ontology: GeneOntology,
    *,
    path: str | None = None,
    skip_unknown_terms: bool = False,
) -> TermAnnotations:
    """Parse GAF content into a :class:`TermAnnotations` store.

    ``NOT``-qualified associations are skipped (they assert absence).
    Unknown GO ids raise unless ``skip_unknown_terms`` (the real GO
    release drifts faster than annotation files).
    """
    store = TermAnnotations(ontology)
    saw_association = False
    for line_no, raw in enumerate(io.StringIO(text), start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if not line or line.startswith("!"):
            continue
        cells = line.split("\t")
        if len(cells) < 15:  # GAF 2.0 has 17 columns; 15/16 tolerated on old files
            raise DataFormatError(
                f"GAF line has {len(cells)} columns, expected >= 15", path=path, line=line_no
            )
        gene_id = cells[1].strip()
        qualifier = cells[3].strip()
        term_id = cells[4].strip()
        if not gene_id or not term_id:
            raise DataFormatError("empty gene or term id", path=path, line=line_no)
        saw_association = True
        if "NOT" in qualifier.split("|"):
            continue
        if term_id not in ontology:
            if skip_unknown_terms:
                continue
            raise DataFormatError(
                f"unknown GO term {term_id!r}", path=path, line=line_no
            )
        store.annotate(gene_id, term_id)
    if not saw_association:
        raise DataFormatError("GAF file contains no association lines", path=path)
    return store


def format_gaf(
    store: TermAnnotations,
    *,
    db: str = "REPRO",
    evidence: str = "IEA",
    taxon: str = "taxon:4932",
) -> str:
    """Serialize direct annotations as GAF 2.2 (deterministic order)."""
    out = io.StringIO()
    out.write("!gaf-version: 2.2\n")
    ontology = store.ontology
    for gene_id in store.genes():
        for term_id in sorted(store.terms_for(gene_id)):
            term = ontology.term(term_id)
            aspect = next(
                (a for a, ns in _ASPECTS.items() if ns == term.namespace), "P"
            )
            cells = [
                db,                # 1 DB
                gene_id,           # 2 DB object id
                gene_id,           # 3 DB object symbol
                "involved_in",     # 4 qualifier
                term_id,           # 5 GO id
                "REPRO:0000001",   # 6 reference
                evidence,          # 7 evidence code
                "",                # 8 with/from
                aspect,            # 9 aspect
                "",                # 10 name
                "",                # 11 synonyms
                "gene",            # 12 type
                taxon,             # 13 taxon
                "20070326",        # 14 date
                db,                # 15 assigned by
                "",                # 16 extension
                "",                # 17 isoform
            ]
            out.write("\t".join(cells) + "\n")
    return out.getvalue()


def read_gaf(path: str | Path, ontology: GeneOntology, **kwargs) -> TermAnnotations:
    path = Path(path)
    return parse_gaf(path.read_text(), ontology, path=str(path), **kwargs)


def write_gaf(store: TermAnnotations, path: str | Path, **kwargs) -> None:
    Path(path).write_text(format_gaf(store, **kwargs))
