"""GOLEM and its Gene Ontology substrate.

The paper integrates GOLEM (Gene Ontology Local Exploration Map) with
ForestView for enrichment analysis of selected gene clusters.  This
package provides the GO DAG, the OBO file format, gene annotations with
true-path-rule propagation, the hypergeometric enrichment engine, and
GOLEM's laid-out local exploration maps.
"""

from repro.ontology.dag import GeneOntology, Term
from repro.ontology.obo import parse_obo, format_obo, read_obo, write_obo
from repro.ontology.annotations import TermAnnotations
from repro.ontology.enrichment import TermEnrichment, EnrichmentReport, enrich
from repro.ontology.layout import NodePosition, layered_layout
from repro.ontology.golem import Golem, LocalMap, MapNode
from repro.ontology.gaf import parse_gaf, format_gaf, read_gaf, write_gaf
from repro.ontology.render import GolemMapStyle, golem_map_commands

__all__ = [
    "GeneOntology",
    "Term",
    "parse_obo",
    "format_obo",
    "read_obo",
    "write_obo",
    "TermAnnotations",
    "TermEnrichment",
    "EnrichmentReport",
    "enrich",
    "NodePosition",
    "layered_layout",
    "Golem",
    "LocalMap",
    "MapNode",
    "parse_gaf",
    "format_gaf",
    "read_gaf",
    "write_gaf",
    "GolemMapStyle",
    "golem_map_commands",
]
