"""GOLEM — Gene Ontology Local Exploration Map (Sealfon et al. 2006).

The application object combines three capabilities the paper highlights:
navigating the GO graph locally around a focus term, overlaying
annotation counts, and running enrichment analysis whose results color
the local map.  ForestView's integration adapter drives this class when
the user asks "is my selected gene cluster enriched for anything?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.ontology.annotations import TermAnnotations
from repro.ontology.dag import GeneOntology
from repro.ontology.enrichment import EnrichmentReport, enrich
from repro.ontology.layout import NodePosition, layered_layout
from repro.util.errors import OntologyError

__all__ = ["LocalMap", "MapNode", "Golem"]


@dataclass(frozen=True)
class MapNode:
    """One term in a local exploration map, ready for display."""

    term_id: str
    name: str
    layer: int  # signed distance from focus (negative = ancestor)
    position: NodePosition
    n_direct: int  # genes directly annotated
    n_propagated: int  # genes annotated after true-path propagation
    pvalue: float | None = None  # enrichment p-value when an overlay is active
    significant: bool = False


@dataclass(frozen=True)
class LocalMap:
    """A laid-out neighbourhood of the GO DAG around ``focus``."""

    focus: str
    nodes: tuple[MapNode, ...]
    edges: tuple[tuple[str, str], ...]  # (child, parent)
    up: int
    down: int

    def node(self, term_id: str) -> MapNode:
        for n in self.nodes:
            if n.term_id == term_id:
                return n
        raise KeyError(f"term {term_id!r} not in local map")

    def term_ids(self) -> list[str]:
        return [n.term_id for n in self.nodes]

    def __len__(self) -> int:
        return len(self.nodes)


class Golem:
    """The GOLEM application: local maps + enrichment over one annotation set."""

    def __init__(self, ontology: GeneOntology, annotations: TermAnnotations) -> None:
        if annotations.ontology is not ontology:
            raise OntologyError("annotations were built against a different ontology")
        self.ontology = ontology
        self.annotations = annotations
        self._propagated = annotations.propagated()
        self._last_report: EnrichmentReport | None = None

    # ------------------------------------------------------------- enrichment
    def enrich_selection(
        self,
        selection: Iterable[str],
        *,
        universe: Sequence[str] | None = None,
        alpha: float = 0.05,
        correction: str = "benjamini-hochberg",
        min_term_size: int = 2,
    ) -> EnrichmentReport:
        """Run enrichment and remember the report for map overlays."""
        report = enrich(
            self._propagated,
            selection,
            universe=universe,
            alpha=alpha,
            correction=correction,
            min_term_size=min_term_size,
            propagate=False,  # store is already the closure
        )
        self._last_report = report
        return report

    @property
    def last_report(self) -> EnrichmentReport | None:
        return self._last_report

    # -------------------------------------------------------------- local map
    def local_map(self, focus: str, *, up: int = 2, down: int = 2) -> LocalMap:
        """Build the laid-out neighbourhood map around ``focus``.

        If an enrichment report is active, its p-values decorate the
        nodes (this is the "view how those results relate to each other
        in the larger context of the GO hierarchy" of §3).
        """
        if focus not in self.ontology:
            raise KeyError(f"no term {focus!r} in ontology")
        nodes, edges = self.ontology.neighborhood(focus, up=up, down=down)
        layers = self._layer_assignment(focus, nodes)
        positions = layered_layout(nodes, edges, layers)

        pvals: dict[str, float] = {}
        sig: dict[str, bool] = {}
        if self._last_report is not None:
            for r in self._last_report.results:
                pvals[r.term_id] = r.pvalue
                sig[r.term_id] = r.significant

        map_nodes = tuple(
            MapNode(
                term_id=tid,
                name=self.ontology.term(tid).name,
                layer=layers[tid],
                position=positions[tid],
                n_direct=len(self.annotations.genes_for(tid)),
                n_propagated=len(self._propagated.genes_for(tid)),
                pvalue=pvals.get(tid),
                significant=sig.get(tid, False),
            )
            for tid in sorted(nodes, key=lambda t: (layers[t], positions[t].slot))
        )
        return LocalMap(focus=focus, nodes=map_nodes, edges=tuple(sorted(edges)), up=up, down=down)

    def expand(self, current: LocalMap, term_id: str) -> LocalMap:
        """Re-focus the map on ``term_id`` (GOLEM's click-to-navigate)."""
        if term_id not in {n.term_id for n in current.nodes}:
            raise KeyError(f"term {term_id!r} is not on the current map")
        return self.local_map(term_id, up=current.up, down=current.down)

    def most_enriched_map(self, *, up: int = 2, down: int = 2) -> LocalMap:
        """Map focused on the most significant term of the last enrichment."""
        if self._last_report is None or not len(self._last_report):
            raise OntologyError("no enrichment report available; run enrich_selection first")
        return self.local_map(self._last_report.results[0].term_id, up=up, down=down)

    def _layer_assignment(self, focus: str, nodes: set[str]) -> dict[str, int]:
        """Signed BFS distance from the focus, ancestors negative."""
        layers = {focus: 0}
        frontier = {focus}
        level = 0
        ancestors = self.ontology.ancestors(focus)
        while frontier:
            level -= 1
            frontier = {
                p
                for t in frontier
                for p in self.ontology.parents(t)
                if p in nodes and p in ancestors and p not in layers
            }
            for p in frontier:
                layers[p] = level
        frontier = {focus}
        level = 0
        descendants = self.ontology.descendants(focus)
        while frontier:
            level += 1
            frontier = {
                c
                for t in frontier
                for c in self.ontology.children(t)
                if c in nodes and c in descendants and c not in layers
            }
            for c in frontier:
                layers[c] = level
        # nodes reachable only via other paths default to their relative depth
        for node in nodes:
            if node not in layers:
                layers[node] = self.ontology.depth(node) - self.ontology.depth(focus)
        return layers
