"""GOLEM's statistical enrichment engine.

"GOLEM provides a powerful framework for quantifying the statistical
functional enrichment of lists of genes" (paper §3).  Given a selected
gene list, each GO term is scored with the one-sided hypergeometric test
against the annotation universe, then corrected for multiple testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.ontology.annotations import TermAnnotations
from repro.stats.correction import benjamini_hochberg, bonferroni
from repro.stats.hypergeom import enrichment_pvalues
from repro.util.errors import ValidationError

__all__ = ["TermEnrichment", "EnrichmentReport", "enrich"]


@dataclass(frozen=True)
class TermEnrichment:
    """Enrichment verdict for one GO term."""

    term_id: str
    name: str
    n_selected_annotated: int  # k: selected genes carrying the term
    n_universe_annotated: int  # K: universe genes carrying the term
    n_selected: int  # n: selection size (within universe)
    n_universe: int  # N: universe size
    pvalue: float
    adjusted_pvalue: float
    significant: bool

    @property
    def fold_enrichment(self) -> float:
        """Observed / expected annotated fraction (inf when expectation is 0)."""
        expected = self.n_universe_annotated * self.n_selected / self.n_universe
        if expected == 0:
            return float("inf") if self.n_selected_annotated else 0.0
        return self.n_selected_annotated / expected


@dataclass(frozen=True)
class EnrichmentReport:
    """All scored terms, most significant first, plus the test configuration."""

    results: tuple[TermEnrichment, ...]
    alpha: float
    correction: str
    n_selected: int
    n_universe: int

    def significant_terms(self) -> list[TermEnrichment]:
        return [r for r in self.results if r.significant]

    def term(self, term_id: str) -> TermEnrichment:
        for r in self.results:
            if r.term_id == term_id:
                return r
        raise KeyError(f"term {term_id!r} was not scored")

    def __len__(self) -> int:
        return len(self.results)


def enrich(
    annotations: TermAnnotations,
    selection: Iterable[str],
    *,
    universe: Sequence[str] | None = None,
    alpha: float = 0.05,
    correction: str = "benjamini-hochberg",
    min_term_size: int = 1,
    propagate: bool = True,
) -> EnrichmentReport:
    """Score every annotated GO term for enrichment in ``selection``.

    Parameters
    ----------
    annotations:
        Direct annotations; the true-path closure is applied internally
        unless ``propagate=False`` (pass an already-propagated store).
    selection:
        Gene ids the researcher highlighted.  Genes without annotations
        (outside the universe) are ignored, per standard practice.
    universe:
        Background gene set; defaults to every annotated gene.
    correction:
        ``"benjamini-hochberg"`` (default) or ``"bonferroni"``.
    min_term_size:
        Skip terms annotating fewer universe genes than this.
    """
    if correction not in ("benjamini-hochberg", "bonferroni"):
        raise ValidationError(f"unknown correction {correction!r}")
    store = annotations.propagated() if propagate else annotations
    if universe is None:
        universe_set = set(store.genes())
    else:
        universe_set = set(str(g) for g in universe)
        universe_set &= set(store.genes()) | universe_set  # keep caller's order semantics simple
    selection_set = {str(g) for g in selection} & universe_set
    n_universe = len(universe_set)
    n_selected = len(selection_set)
    if n_universe == 0:
        raise ValidationError("enrichment universe is empty")
    if n_selected == 0:
        raise ValidationError("selection contains no genes from the universe")

    term_ids: list[str] = []
    ks: list[int] = []
    Ks: list[int] = []
    for term_id in store.annotated_terms():
        term_genes = store.genes_for(term_id) & universe_set
        K = len(term_genes)
        if K < min_term_size:
            continue
        term_ids.append(term_id)
        Ks.append(K)
        ks.append(len(term_genes & selection_set))
    if not term_ids:
        return EnrichmentReport((), alpha, correction, n_selected, n_universe)

    pvals = enrichment_pvalues(
        np.asarray(ks), n_universe, np.asarray(Ks), n_selected
    )
    if correction == "bonferroni":
        corrected = bonferroni(pvals, alpha=alpha)
    else:
        corrected = benjamini_hochberg(pvals, alpha=alpha)

    results = [
        TermEnrichment(
            term_id=tid,
            name=store.ontology.term(tid).name,
            n_selected_annotated=k,
            n_universe_annotated=K,
            n_selected=n_selected,
            n_universe=n_universe,
            pvalue=float(p),
            adjusted_pvalue=float(q),
            significant=bool(sig),
        )
        for tid, k, K, p, q, sig in zip(
            term_ids, ks, Ks, pvals, corrected.adjusted, corrected.significant
        )
    ]
    results.sort(key=lambda r: (r.pvalue, r.term_id))
    return EnrichmentReport(tuple(results), alpha, correction, n_selected, n_universe)
