"""Gene-to-GO-term annotations with true-path-rule propagation.

A gene annotated to a term is implicitly annotated to every ancestor of
that term (the "true path rule"); enrichment must run on the propagated
closure or specific terms starve their parents.  Direct and propagated
stores are kept separate so GOLEM can show both counts.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.ontology.dag import GeneOntology
from repro.util.errors import OntologyError

__all__ = ["TermAnnotations"]


class TermAnnotations:
    """Bidirectional gene <-> term association store.

    Build it with direct annotations then call :meth:`propagated` to get
    the closure used for enrichment.  Term ids are validated against the
    ontology on insertion.
    """

    def __init__(self, ontology: GeneOntology) -> None:
        self.ontology = ontology
        self._gene_to_terms: dict[str, set[str]] = {}
        self._term_to_genes: dict[str, set[str]] = {}

    # ---------------------------------------------------------------- editing
    def annotate(self, gene_id: str, term_id: str) -> None:
        if term_id not in self.ontology:
            raise OntologyError(f"cannot annotate to unknown term {term_id!r}")
        gene_id = str(gene_id)
        self._gene_to_terms.setdefault(gene_id, set()).add(term_id)
        self._term_to_genes.setdefault(term_id, set()).add(gene_id)

    def annotate_many(self, pairs: Iterable[tuple[str, str]]) -> None:
        for gene_id, term_id in pairs:
            self.annotate(gene_id, term_id)

    @classmethod
    def from_mapping(
        cls, ontology: GeneOntology, gene_terms: Mapping[str, Iterable[str]]
    ) -> "TermAnnotations":
        store = cls(ontology)
        for gene_id, term_ids in gene_terms.items():
            for term_id in term_ids:
                store.annotate(gene_id, term_id)
        return store

    # ----------------------------------------------------------------- lookup
    def terms_for(self, gene_id: str) -> frozenset[str]:
        return frozenset(self._gene_to_terms.get(str(gene_id), ()))

    def genes_for(self, term_id: str) -> frozenset[str]:
        if term_id not in self.ontology:
            raise KeyError(f"no term {term_id!r} in ontology")
        return frozenset(self._term_to_genes.get(term_id, ()))

    def genes(self) -> list[str]:
        return sorted(self._gene_to_terms)

    def annotated_terms(self) -> list[str]:
        return sorted(t for t, g in self._term_to_genes.items() if g)

    def n_annotations(self) -> int:
        return sum(len(ts) for ts in self._gene_to_terms.values())

    def __len__(self) -> int:
        return len(self._gene_to_terms)

    # ------------------------------------------------------------ propagation
    def propagated(self) -> "TermAnnotations":
        """New store with the true-path closure applied.

        Every (gene, term) pair is expanded to (gene, ancestor) for all
        ancestors.  The result satisfies: for any term t and child c,
        ``genes_for(t) ⊇ genes_for(c)``.
        """
        out = TermAnnotations(self.ontology)
        for gene_id, term_ids in self._gene_to_terms.items():
            closure: set[str] = set()
            for term_id in term_ids:
                closure.add(term_id)
                closure.update(self.ontology.ancestors(term_id))
            out._gene_to_terms[gene_id] = closure
            for term_id in closure:
                out._term_to_genes.setdefault(term_id, set()).add(gene_id)
        return out

    def term_sizes(self) -> dict[str, int]:
        """Gene count per annotated term (on whatever closure this store holds)."""
        return {t: len(g) for t, g in self._term_to_genes.items() if g}
