"""Render GOLEM local exploration maps to display-list commands.

Turns a laid-out :class:`~repro.ontology.golem.LocalMap` into the
Figure 5 picture: term boxes arranged in layers, is-a edges drawn
upward, enrichment significance coloring the boxes, the focus term
outlined.  Output is display-list commands, so a GOLEM panel can sit
beside ForestView panes on the wall (Figure 6's combined screen).
"""

from __future__ import annotations

from repro.ontology.golem import LocalMap, MapNode
from repro.util.errors import RenderError
from repro.viz.layout import Box
from repro.viz.scene import Command, LineCmd, RectCmd, TextCmd
from repro.viz.text import GLYPH_HEIGHT, text_width

__all__ = ["GolemMapStyle", "golem_map_commands"]


class GolemMapStyle:
    """Colors and box geometry for the map (one knob-set, like FrameStyle)."""

    node_width = 96
    node_height = 22
    background = (18, 18, 24)
    node_fill = (40, 40, 56)
    node_fill_significant = (120, 40, 24)
    node_border = (110, 110, 130)
    focus_border = (255, 200, 60)
    edge_color = (90, 90, 110)
    text_color = (225, 225, 235)
    count_color = (150, 150, 170)


def golem_map_commands(
    local_map: LocalMap,
    box: Box,
    *,
    style: type[GolemMapStyle] = GolemMapStyle,
    show_counts: bool = True,
) -> list[Command]:
    """Build the commands for ``local_map`` drawn inside ``box``.

    Node (x, y) come from the map's normalized layout positions; edges
    are drawn first so boxes overlay them.
    """
    if box.w < style.node_width + 4 or box.h < style.node_height * 2:
        raise RenderError(f"map box too small: {box.w}x{box.h}")
    if len(local_map) == 0:
        raise RenderError("cannot render an empty local map")

    commands: list[Command] = [RectCmd(box.x, box.y, box.w, box.h, style.background)]

    # usable area keeps whole node boxes inside
    usable_w = box.w - style.node_width
    usable_h = box.h - style.node_height

    def node_origin(node: MapNode) -> tuple[int, int]:
        x = box.x + int(node.position.x * usable_w)
        y = box.y + int(node.position.y * usable_h)
        return x, y

    centers: dict[str, tuple[int, int]] = {}
    for node in local_map.nodes:
        x, y = node_origin(node)
        centers[node.term_id] = (x + style.node_width // 2, y + style.node_height // 2)

    for child, parent in local_map.edges:
        cx, cy = centers[child]
        px, py = centers[parent]
        commands.append(LineCmd(cx, cy, px, py, style.edge_color))

    for node in local_map.nodes:
        x, y = node_origin(node)
        fill = style.node_fill_significant if node.significant else style.node_fill
        commands.append(RectCmd(x, y, style.node_width, style.node_height, fill))
        border = style.focus_border if node.term_id == local_map.focus else style.node_border
        commands.append(RectCmd(x, y, style.node_width, 1, border))
        commands.append(RectCmd(x, y + style.node_height - 1, style.node_width, 1, border))
        commands.append(RectCmd(x, y, 1, style.node_height, border))
        commands.append(RectCmd(x + style.node_width - 1, y, 1, style.node_height, border))
        label = _fit(node.name.upper(), style.node_width - 4)
        commands.append(TextCmd(x + 2, y + 2, label, style.text_color))
        if show_counts:
            count = f"{node.n_propagated}G"
            if node.pvalue is not None:
                count += f" P={node.pvalue:.0e}"
            commands.append(
                TextCmd(x + 2, y + 3 + GLYPH_HEIGHT, _fit(count, style.node_width - 4),
                        style.count_color)
            )
    return commands


def _fit(text: str, max_px: int) -> str:
    while text and text_width(text) > max_px:
        text = text[:-1]
    return text
