"""repro — a reproduction of Wallace et al., *Scalable, Dynamic Analysis and
Visualization for Genomic Datasets* (IPPS 2007).

The package implements the paper's three systems and every substrate they
depend on:

* :mod:`repro.core` — **ForestView**, the multi-dataset visualization and
  analysis application (merged dataset interface, synchronized views,
  selection, search, export, display-wall rendering).
* :mod:`repro.spell` — **SPELL**, query-driven search over a microarray
  compendium returning ordered datasets and ordered genes.
* :mod:`repro.ontology` — **GOLEM**, Gene Ontology local exploration and
  statistical enrichment.

Substrates: :mod:`repro.data` (matrices, PCL/CDT/GTR/ATR formats,
compendium, merged 3-D interface), :mod:`repro.cluster` (hierarchical
clustering and dendrograms), :mod:`repro.stats` (hypergeometric tests,
FDR, missing-data correlation), :mod:`repro.viz` (software framebuffer
renderer), :mod:`repro.wall` (simulated tiled display wall on an
MPI-style communicator), :mod:`repro.parallel` (in-process message
passing and data-parallel helpers), :mod:`repro.synth` (synthetic
compendia with planted biology standing in for the paper's proprietary
datasets).

Quickstart
----------
>>> from repro.synth import make_stress_compendium
>>> from repro.core import ForestView
>>> compendium = make_stress_compendium(n_genes=300, seed=7)
>>> app = ForestView.from_compendium(compendium)
>>> app.select_genes(compendium[0].gene_ids[:20], source="quickstart")
>>> len(app.panes) == len(compendium)
True
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
