"""Tiny 5x7 bitmap font for gene labels and pane titles.

Glyphs are stored as 7 rows of 5-bit patterns.  Lowercase input is
rendered with the uppercase glyphs (gene names are uppercase anyway);
unknown characters draw as a hollow box so label bugs are visible rather
than silent.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import RenderError
from repro.viz.framebuffer import Color, Framebuffer

__all__ = ["GLYPH_WIDTH", "GLYPH_HEIGHT", "text_width", "draw_text", "render_text_array"]

GLYPH_WIDTH = 5
GLYPH_HEIGHT = 7
_SPACING = 1  # blank columns between glyphs

# fmt: off
_FONT: dict[str, tuple[int, ...]] = {
    "A": (0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001),
    "B": (0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110),
    "C": (0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110),
    "D": (0b11110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11110),
    "E": (0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111),
    "F": (0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000),
    "G": (0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111),
    "H": (0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001),
    "I": (0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110),
    "J": (0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100),
    "K": (0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001),
    "L": (0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111),
    "M": (0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001),
    "N": (0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001),
    "O": (0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110),
    "P": (0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000),
    "Q": (0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101),
    "R": (0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001),
    "S": (0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110),
    "T": (0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100),
    "U": (0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110),
    "V": (0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100),
    "W": (0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010),
    "X": (0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001),
    "Y": (0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100),
    "Z": (0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111),
    "0": (0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110),
    "1": (0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110),
    "2": (0b01110, 0b10001, 0b00001, 0b00110, 0b01000, 0b10000, 0b11111),
    "3": (0b11110, 0b00001, 0b00001, 0b01110, 0b00001, 0b00001, 0b11110),
    "4": (0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010),
    "5": (0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110),
    "6": (0b01110, 0b10000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110),
    "7": (0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000),
    "8": (0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110),
    "9": (0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00001, 0b01110),
    " ": (0, 0, 0, 0, 0, 0, 0),
    "-": (0, 0, 0, 0b01110, 0, 0, 0),
    "_": (0, 0, 0, 0, 0, 0, 0b11111),
    ":": (0, 0b00100, 0, 0, 0, 0b00100, 0),
    ".": (0, 0, 0, 0, 0, 0b00110, 0b00110),
    ",": (0, 0, 0, 0, 0b00110, 0b00110, 0b01000),
    "/": (0b00001, 0b00010, 0b00010, 0b00100, 0b01000, 0b01000, 0b10000),
    "(": (0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010),
    ")": (0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000),
    "+": (0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0),
    "=": (0, 0, 0b11111, 0, 0b11111, 0, 0),
    "<": (0b00010, 0b00100, 0b01000, 0b10000, 0b01000, 0b00100, 0b00010),
    ">": (0b01000, 0b00100, 0b00010, 0b00001, 0b00010, 0b00100, 0b01000),
    "*": (0, 0b10101, 0b01110, 0b11111, 0b01110, 0b10101, 0),
    "%": (0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011),
    "'": (0b00100, 0b00100, 0b01000, 0, 0, 0, 0),
    "#": (0b01010, 0b11111, 0b01010, 0b01010, 0b01010, 0b11111, 0b01010),
}
# fmt: on
_UNKNOWN = (0b11111, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11111)


def _glyph(ch: str) -> tuple[int, ...]:
    return _FONT.get(ch.upper(), _UNKNOWN)


def text_width(text: str, *, scale: int = 1) -> int:
    """Pixel width of ``text`` at the given integer scale."""
    if not text:
        return 0
    return (len(text) * (GLYPH_WIDTH + _SPACING) - _SPACING) * scale


def render_text_array(text: str, *, scale: int = 1) -> np.ndarray:
    """Boolean (h, w) coverage mask for ``text`` (True = inked pixel)."""
    if scale < 1:
        raise RenderError(f"scale must be >= 1, got {scale}")
    if not text:
        return np.zeros((GLYPH_HEIGHT * scale, 0), dtype=bool)
    w = len(text) * (GLYPH_WIDTH + _SPACING) - _SPACING
    mask = np.zeros((GLYPH_HEIGHT, w), dtype=bool)
    for i, ch in enumerate(text):
        rows = _glyph(ch)
        x0 = i * (GLYPH_WIDTH + _SPACING)
        for r, bits in enumerate(rows):
            for c in range(GLYPH_WIDTH):
                if bits & (1 << (GLYPH_WIDTH - 1 - c)):
                    mask[r, x0 + c] = True
    if scale > 1:
        mask = np.repeat(np.repeat(mask, scale, axis=0), scale, axis=1)
    return mask


def draw_text(
    fb: Framebuffer, x: int, y: int, text: str, color: Color, *, scale: int = 1
) -> None:
    """Draw ``text`` with its top-left corner at (x, y), clipped at edges."""
    mask = render_text_array(text, scale=scale)
    if mask.size == 0:
        return
    h, w = mask.shape
    x0 = max(0, x)
    y0 = max(0, y)
    x1 = min(fb.width, x + w)
    y1 = min(fb.height, y + h)
    if x0 >= x1 or y0 >= y1:
        return
    sub = mask[y0 - y : y1 - y, x0 - x : x1 - x]
    region = fb.pixels[y0:y1, x0:x1]
    region[sub] = np.asarray(color, dtype=np.uint8)
