"""Software RGB framebuffer over a NumPy array.

All rendering in this reproduction targets this buffer (the Java/Swing
surface of the original is substituted per DESIGN.md §2).  Drawing
primitives clip silently at the edges so callers can draw in absolute
canvas coordinates and let tiles crop — that property is what makes the
tiled wall renderer byte-identical to a single-surface render.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import RenderError

__all__ = ["Framebuffer", "Color"]

Color = tuple[int, int, int]


def _check_color(color: Color) -> np.ndarray:
    arr = np.asarray(color, dtype=np.int64)
    if arr.shape != (3,) or (arr < 0).any() or (arr > 255).any():
        raise RenderError(f"color must be 3 ints in [0,255], got {color!r}")
    return arr.astype(np.uint8)


class Framebuffer:
    """A (height, width, 3) uint8 RGB pixel surface with clipped primitives."""

    def __init__(self, width: int, height: int, *, background: Color = (0, 0, 0)) -> None:
        if width < 1 or height < 1:
            raise RenderError(f"framebuffer size must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.pixels = np.empty((self.height, self.width, 3), dtype=np.uint8)
        self.pixels[:] = _check_color(background)

    # ------------------------------------------------------------------ query
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.pixels.shape

    def get(self, x: int, y: int) -> Color:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise RenderError(f"pixel ({x},{y}) outside {self.width}x{self.height}")
        r, g, b = self.pixels[y, x]
        return (int(r), int(g), int(b))

    # -------------------------------------------------------------- primitives
    def fill(self, color: Color) -> None:
        self.pixels[:] = _check_color(color)

    def fill_rect(self, x: int, y: int, w: int, h: int, color: Color) -> None:
        """Fill [x, x+w) x [y, y+h), clipped to the buffer."""
        c = _check_color(color)
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + w)
        y1 = min(self.height, y + h)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = c

    def hline(self, x: int, y: int, length: int, color: Color) -> None:
        self.fill_rect(x, y, length, 1, color)

    def vline(self, x: int, y: int, length: int, color: Color) -> None:
        self.fill_rect(x, y, 1, length, color)

    def line(self, x0: int, y0: int, x1: int, y1: int, color: Color) -> None:
        """Bresenham line, clipped per-pixel (segments are short in practice)."""
        c = _check_color(color)
        dx = abs(x1 - x0)
        dy = -abs(y1 - y0)
        sx = 1 if x0 < x1 else -1
        sy = 1 if y0 < y1 else -1
        err = dx + dy
        x, y = x0, y0
        while True:
            if 0 <= x < self.width and 0 <= y < self.height:
                self.pixels[y, x] = c
            if x == x1 and y == y1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def blit_array(self, x: int, y: int, block: np.ndarray) -> None:
        """Copy an (h, w, 3) uint8 block at (x, y), clipped."""
        if block.ndim != 3 or block.shape[2] != 3:
            raise RenderError(f"blit block must be (h, w, 3), got {block.shape}")
        bh, bw = block.shape[:2]
        x0 = max(0, x)
        y0 = max(0, y)
        x1 = min(self.width, x + bw)
        y1 = min(self.height, y + bh)
        if x0 >= x1 or y0 >= y1:
            return
        self.pixels[y0:y1, x0:x1] = block[y0 - y : y1 - y, x0 - x : x1 - x]

    def crop(self, x: int, y: int, w: int, h: int) -> np.ndarray:
        """Copy of the [x, x+w) x [y, y+h) region (must be fully inside)."""
        if not (0 <= x and 0 <= y and x + w <= self.width and y + h <= self.height):
            raise RenderError(
                f"crop ({x},{y},{w},{h}) exceeds {self.width}x{self.height}"
            )
        return self.pixels[y : y + h, x : x + w].copy()

    def nonbackground_fraction(self, background: Color = (0, 0, 0)) -> float:
        """Fraction of pixels differing from ``background`` (used in tests/benches)."""
        bg = _check_color(background)
        return float((self.pixels != bg).any(axis=2).mean())
