"""PPM (P6) image encoding so rendered frames can be saved and inspected.

PPM needs no external imaging library, round-trips exactly, and any
viewer opens it — good enough for a reproduction whose assertions run on
the pixel arrays themselves.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.errors import DataFormatError

__all__ = ["encode_ppm", "decode_ppm", "write_ppm", "read_ppm"]


def encode_ppm(pixels: np.ndarray) -> bytes:
    """Encode an (h, w, 3) uint8 array as binary PPM (P6)."""
    arr = np.asarray(pixels)
    if arr.ndim != 3 or arr.shape[2] != 3 or arr.dtype != np.uint8:
        raise DataFormatError(
            f"pixels must be (h, w, 3) uint8, got shape {arr.shape} dtype {arr.dtype}"
        )
    h, w = arr.shape[:2]
    header = f"P6\n{w} {h}\n255\n".encode("ascii")
    return header + np.ascontiguousarray(arr).tobytes()


def decode_ppm(data: bytes) -> np.ndarray:
    """Decode binary PPM (P6) bytes back to an (h, w, 3) uint8 array."""
    # header: magic, width, height, maxval — whitespace/comment separated
    fields: list[bytes] = []
    pos = 0
    while len(fields) < 4:
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if pos < len(data) and data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        if start == pos:
            raise DataFormatError("truncated PPM header")
        fields.append(data[start:pos])
    pos += 1  # single whitespace after maxval
    magic, w_b, h_b, maxval_b = fields
    if magic != b"P6":
        raise DataFormatError(f"not a binary PPM (magic {magic!r})")
    try:
        w, h, maxval = int(w_b), int(h_b), int(maxval_b)
    except ValueError:
        raise DataFormatError("non-numeric PPM dimensions")
    if maxval != 255:
        raise DataFormatError(f"only maxval 255 supported, got {maxval}")
    expected = w * h * 3
    body = data[pos : pos + expected]
    if len(body) != expected:
        raise DataFormatError(
            f"PPM body has {len(body)} bytes, expected {expected} for {w}x{h}"
        )
    return np.frombuffer(body, dtype=np.uint8).reshape(h, w, 3).copy()


def write_ppm(pixels: np.ndarray, path: str | Path) -> None:
    Path(path).write_bytes(encode_ppm(pixels))


def read_ppm(path: str | Path) -> np.ndarray:
    return decode_ppm(Path(path).read_bytes())
