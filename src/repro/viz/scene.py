"""Display list: retained-mode drawing commands with region rendering.

ForestView builds one :class:`DisplayList` describing the entire virtual
canvas (which may be wall-sized); rendering is then *region-addressed* —
``render_region`` produces any sub-rectangle's pixels independently.
Because every command draws as a pure function of absolute coordinates,
tiles rendered on different nodes and composited are byte-identical to a
single full render (asserted by the wall integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.errors import RenderError
from repro.viz.colormap import DivergingColormap
from repro.viz.framebuffer import Color, Framebuffer
from repro.viz.heatmap import render_heatmap_block
from repro.viz.text import draw_text

__all__ = ["RectCmd", "HeatmapCmd", "LineCmd", "TextCmd", "DisplayList"]


@dataclass(frozen=True)
class RectCmd:
    """Filled axis-aligned rectangle."""

    x: int
    y: int
    w: int
    h: int
    color: Color

    def bbox(self) -> tuple[int, int, int, int]:
        return (self.x, self.y, self.w, self.h)

    def draw(self, fb: Framebuffer, ox: int, oy: int) -> None:
        fb.fill_rect(self.x - ox, self.y - oy, self.w, self.h, self.color)


@dataclass(frozen=True)
class HeatmapCmd:
    """Expression block; ``values`` is referenced, not copied."""

    x: int
    y: int
    w: int
    h: int
    values: np.ndarray = field(repr=False)
    colormap: DivergingColormap = field(repr=False)

    def bbox(self) -> tuple[int, int, int, int]:
        return (self.x, self.y, self.w, self.h)

    def draw(self, fb: Framebuffer, ox: int, oy: int) -> None:
        block = render_heatmap_block(
            self.values,
            self.colormap,
            x=self.x,
            y=self.y,
            w=self.w,
            h=self.h,
            rx=ox,
            ry=oy,
            rw=fb.width,
            rh=fb.height,
        )
        if block.size:
            fb.blit_array(max(self.x, ox) - ox, max(self.y, oy) - oy, block)


@dataclass(frozen=True)
class LineCmd:
    x0: int
    y0: int
    x1: int
    y1: int
    color: Color

    def bbox(self) -> tuple[int, int, int, int]:
        x = min(self.x0, self.x1)
        y = min(self.y0, self.y1)
        return (x, y, abs(self.x1 - self.x0) + 1, abs(self.y1 - self.y0) + 1)

    def draw(self, fb: Framebuffer, ox: int, oy: int) -> None:
        fb.line(self.x0 - ox, self.y0 - oy, self.x1 - ox, self.y1 - oy, self.color)


@dataclass(frozen=True)
class TextCmd:
    x: int
    y: int
    text: str
    color: Color
    scale: int = 1

    def bbox(self) -> tuple[int, int, int, int]:
        from repro.viz.text import GLYPH_HEIGHT, text_width

        return (self.x, self.y, text_width(self.text, scale=self.scale), GLYPH_HEIGHT * self.scale)

    def draw(self, fb: Framebuffer, ox: int, oy: int) -> None:
        draw_text(fb, self.x - ox, self.y - oy, self.text, self.color, scale=self.scale)


Command = RectCmd | HeatmapCmd | LineCmd | TextCmd


class DisplayList:
    """An ordered list of drawing commands over a fixed virtual canvas."""

    def __init__(self, width: int, height: int, *, background: Color = (0, 0, 0)) -> None:
        if width < 1 or height < 1:
            raise RenderError(f"canvas size must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.background = background
        self.commands: list[Command] = []

    def add(self, command: Command) -> None:
        self.commands.append(command)

    def extend(self, commands: Sequence[Command]) -> None:
        self.commands.extend(commands)

    def __len__(self) -> int:
        return len(self.commands)

    # -------------------------------------------------------------- rendering
    def render_region(self, x: int, y: int, w: int, h: int) -> np.ndarray:
        """Pixels of canvas region [x, x+w) x [y, y+h) as (h, w, 3) uint8.

        The region must lie inside the canvas.  Commands whose bounding
        box misses the region are skipped (the per-tile win that makes
        wall rendering scale).
        """
        if w < 1 or h < 1:
            raise RenderError(f"region size must be positive, got {w}x{h}")
        if not (0 <= x and 0 <= y and x + w <= self.width and y + h <= self.height):
            raise RenderError(
                f"region ({x},{y},{w},{h}) exceeds canvas {self.width}x{self.height}"
            )
        fb = Framebuffer(w, h, background=self.background)
        for cmd in self.commands:
            cx, cy, cw, ch = cmd.bbox()
            if cx + cw <= x or cx >= x + w or cy + ch <= y or cy >= y + h:
                continue
            cmd.draw(fb, x, y)
        return fb.pixels

    def render_full(self) -> np.ndarray:
        """Render the whole canvas (the single-node reference path)."""
        return self.render_region(0, 0, self.width, self.height)

    def command_cost(self, x: int, y: int, w: int, h: int) -> int:
        """Number of commands intersecting a region (scheduler load estimate)."""
        count = 0
        for cmd in self.commands:
            cx, cy, cw, ch = cmd.bbox()
            if not (cx + cw <= x or cx >= x + w or cy + ch <= y or cy >= y + h):
                count += 1
        return count
