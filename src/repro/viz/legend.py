"""Colormap legends: the expression-scale bar drawn beside heatmaps.

Users reading a red/green heatmap need to know what full-red means; the
legend renders the colormap's value->color ramp with tick labels as
display-list commands, so it tiles across the wall like everything else.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import RenderError
from repro.viz.colormap import DivergingColormap
from repro.viz.layout import Box
from repro.viz.scene import Command, HeatmapCmd, RectCmd, TextCmd
from repro.viz.text import GLYPH_HEIGHT, text_width

__all__ = ["legend_commands"]


def legend_commands(
    colormap: DivergingColormap,
    box: Box,
    *,
    orientation: str = "horizontal",
    n_ticks: int = 3,
    text_color: tuple[int, int, int] = (220, 220, 220),
    border_color: tuple[int, int, int] = (90, 90, 110),
) -> list[Command]:
    """Build the display-list commands for a color scale bar in ``box``.

    The ramp spans ``[-saturation, +saturation]``; ``n_ticks`` labels are
    spread across it (always including both ends and, for odd counts,
    zero in the middle).
    """
    if orientation not in ("horizontal", "vertical"):
        raise RenderError(f"orientation must be horizontal/vertical, got {orientation!r}")
    if n_ticks < 2:
        raise RenderError(f"need >= 2 ticks, got {n_ticks}")
    if box.w < 20 or box.h < 10:
        raise RenderError(f"legend box too small: {box.w}x{box.h}")

    commands: list[Command] = []
    sat = colormap.saturation
    label_h = GLYPH_HEIGHT + 2

    if orientation == "horizontal":
        ramp_box = Box(box.x, box.y, box.w, max(3, box.h - label_h))
        # the ramp itself is a 1-row heatmap over a linear value sweep
        ramp_values = np.linspace(-sat, sat, max(box.w, 2))[None, :]
        commands.append(
            HeatmapCmd(ramp_box.x, ramp_box.y, ramp_box.w, ramp_box.h, ramp_values, colormap)
        )
        commands.append(RectCmd(ramp_box.x, ramp_box.y, ramp_box.w, 1, border_color))
        commands.append(RectCmd(ramp_box.x, ramp_box.y1 - 1, ramp_box.w, 1, border_color))
        for i in range(n_ticks):
            t = i / (n_ticks - 1)
            value = -sat + 2 * sat * t
            label = _fmt(value)
            x = box.x + int(t * (box.w - 1)) - text_width(label) // 2
            x = min(max(x, box.x), box.x1 - text_width(label))
            commands.append(TextCmd(x, ramp_box.y1 + 2, label, text_color))
    else:
        label_w = max(text_width(_fmt(-sat)), text_width(_fmt(sat))) + 2
        ramp_box = Box(box.x, box.y, max(3, box.w - label_w), box.h)
        ramp_values = np.linspace(sat, -sat, max(box.h, 2))[:, None]  # + on top
        commands.append(
            HeatmapCmd(ramp_box.x, ramp_box.y, ramp_box.w, ramp_box.h, ramp_values, colormap)
        )
        for i in range(n_ticks):
            t = i / (n_ticks - 1)
            value = sat - 2 * sat * t
            y = box.y + int(t * (box.h - 1)) - GLYPH_HEIGHT // 2
            y = min(max(y, box.y), box.y1 - GLYPH_HEIGHT)
            commands.append(TextCmd(ramp_box.x1 + 2, y, _fmt(value), text_color))
    return commands


def _fmt(value: float) -> str:
    if value == int(value):
        return f"{int(value):+d}" if value else "0"
    return f"{value:+.1f}"
