"""Expression colormaps: the red/green microarray convention and friends.

Values map symmetrically around zero: ``-saturation`` is full ``low``
color, 0 is ``zero`` color, ``+saturation`` full ``high`` color; NaN
renders as the ``missing`` color.  "The expression level colors can be
adjusted independently for datasets" (paper §2) — ForestView's
per-dataset preferences pick from :data:`COLORMAPS` and set
``saturation`` (the contrast control).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.util.errors import RenderError

__all__ = ["DivergingColormap", "COLORMAPS", "get_colormap"]


@dataclass(frozen=True)
class DivergingColormap:
    """Symmetric two-sided colormap with a missing-value color."""

    name: str
    low: tuple[int, int, int]
    zero: tuple[int, int, int]
    high: tuple[int, int, int]
    missing: tuple[int, int, int] = (96, 96, 96)
    saturation: float = 2.0  # |value| mapped to full color

    def __post_init__(self) -> None:
        if self.saturation <= 0:
            raise RenderError(f"saturation must be positive, got {self.saturation}")

    def with_saturation(self, saturation: float) -> "DivergingColormap":
        return replace(self, saturation=float(saturation))

    def map(self, values: np.ndarray) -> np.ndarray:
        """Vectorized map of any-shaped float array -> uint8 RGB (shape + (3,))."""
        v = np.asarray(values, dtype=np.float64)
        nan_mask = np.isnan(v)
        t = np.clip(np.where(nan_mask, 0.0, v) / self.saturation, -1.0, 1.0)
        low = np.asarray(self.low, dtype=np.float64)
        zero = np.asarray(self.zero, dtype=np.float64)
        high = np.asarray(self.high, dtype=np.float64)
        tt = t[..., None]
        out = np.where(
            tt >= 0,
            zero + (high - zero) * tt,
            zero + (low - zero) * (-tt),
        )
        out = np.clip(np.rint(out), 0, 255).astype(np.uint8)
        if nan_mask.any():
            out[nan_mask] = np.asarray(self.missing, dtype=np.uint8)
        return out

    def map_scalar(self, value: float) -> tuple[int, int, int]:
        r, g, b = self.map(np.asarray([value]))[0]
        return (int(r), int(g), int(b))


COLORMAPS: dict[str, DivergingColormap] = {
    "red-green": DivergingColormap(
        "red-green", low=(0, 255, 0), zero=(0, 0, 0), high=(255, 0, 0)
    ),
    "red-blue": DivergingColormap(
        "red-blue", low=(0, 64, 255), zero=(0, 0, 0), high=(255, 32, 0)
    ),
    "yellow-blue": DivergingColormap(
        "yellow-blue", low=(0, 96, 224), zero=(16, 16, 16), high=(255, 224, 0)
    ),
    "grayscale": DivergingColormap(
        "grayscale", low=(0, 0, 0), zero=(128, 128, 128), high=(255, 255, 255),
        missing=(255, 0, 255),
    ),
}


def get_colormap(name: str) -> DivergingColormap:
    try:
        return COLORMAPS[name]
    except KeyError:
        raise RenderError(
            f"unknown colormap {name!r}; choose from {sorted(COLORMAPS)}"
        ) from None
