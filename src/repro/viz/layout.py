"""Rectangle layout helpers for composing pane geometry."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.util.errors import RenderError

__all__ = ["Box", "hsplit", "vsplit", "grid_boxes"]


@dataclass(frozen=True)
class Box:
    """An axis-aligned rectangle in canvas coordinates."""

    x: int
    y: int
    w: int
    h: int

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise RenderError(f"box extent must be non-negative, got {self.w}x{self.h}")

    @property
    def x1(self) -> int:
        return self.x + self.w

    @property
    def y1(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    def inset(self, margin: int) -> "Box":
        """Shrink by ``margin`` on every side (clamped to empty, never negative)."""
        if margin < 0:
            raise RenderError(f"margin must be non-negative, got {margin}")
        w = max(0, self.w - 2 * margin)
        h = max(0, self.h - 2 * margin)
        return Box(self.x + margin, self.y + margin, w, h)

    def contains(self, x: int, y: int) -> bool:
        return self.x <= x < self.x1 and self.y <= y < self.y1

    def intersects(self, other: "Box") -> bool:
        return not (
            other.x1 <= self.x or other.x >= self.x1 or other.y1 <= self.y or other.y >= self.y1
        )


def _split(total: int, fractions: Sequence[float], gap: int) -> list[tuple[int, int]]:
    if not fractions:
        raise RenderError("need at least one fraction")
    if any(f < 0 for f in fractions):
        raise RenderError(f"fractions must be non-negative: {list(fractions)}")
    ssum = sum(fractions)
    if ssum <= 0:
        raise RenderError("fractions must sum to a positive value")
    n = len(fractions)
    usable = total - gap * (n - 1)
    if usable < n:
        raise RenderError(f"extent {total} too small for {n} parts with gap {gap}")
    # largest-remainder allocation so sizes sum exactly to usable
    raw = [f / ssum * usable for f in fractions]
    sizes = [int(r) for r in raw]
    remainder = usable - sum(sizes)
    order = sorted(range(n), key=lambda i: -(raw[i] - sizes[i]))
    for i in order[:remainder]:
        sizes[i] += 1
    out: list[tuple[int, int]] = []
    cursor = 0
    for s in sizes:
        out.append((cursor, s))
        cursor += s + gap
    return out


def hsplit(box: Box, fractions: Sequence[float], *, gap: int = 0) -> list[Box]:
    """Split horizontally into side-by-side boxes with the given width fractions."""
    return [Box(box.x + off, box.y, size, box.h) for off, size in _split(box.w, fractions, gap)]


def vsplit(box: Box, fractions: Sequence[float], *, gap: int = 0) -> list[Box]:
    """Split vertically into stacked boxes with the given height fractions."""
    return [Box(box.x, box.y + off, box.w, size) for off, size in _split(box.h, fractions, gap)]


def grid_boxes(box: Box, rows: int, cols: int, *, gap: int = 0) -> list[list[Box]]:
    """Uniform rows x cols grid inside ``box`` (row-major nested lists)."""
    if rows < 1 or cols < 1:
        raise RenderError(f"grid needs rows, cols >= 1, got {rows}x{cols}")
    row_boxes = vsplit(box, [1.0] * rows, gap=gap)
    return [hsplit(rb, [1.0] * cols, gap=gap) for rb in row_boxes]
