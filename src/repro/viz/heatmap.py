"""Heatmap rendering: expression matrices to pixel blocks.

The mapping from pixels to matrix cells is defined in *absolute* canvas
coordinates — pixel column ``px`` inside a block of width ``w`` starting
at ``x`` shows matrix column ``(px - x) * ncols // w``.  Because the
mapping depends only on absolute coordinates, rendering any sub-rectangle
of a heatmap yields exactly the pixels the full render would contain,
which is the invariant the tiled display wall relies on.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import RenderError
from repro.viz.colormap import DivergingColormap
from repro.viz.framebuffer import Framebuffer

__all__ = ["cell_indices", "render_heatmap_block", "draw_heatmap"]


def cell_indices(start_px: int, end_px: int, origin_px: int, span_px: int, n_cells: int) -> np.ndarray:
    """Matrix-cell index for each pixel in [start_px, end_px).

    ``origin_px``/``span_px`` define where the full heatmap block lives on
    the canvas; the requested pixel range must lie inside it.
    """
    if span_px < 1 or n_cells < 1:
        raise RenderError(f"span_px ({span_px}) and n_cells ({n_cells}) must be >= 1")
    if start_px < origin_px or end_px > origin_px + span_px:
        raise RenderError(
            f"pixel range [{start_px},{end_px}) outside block [{origin_px},{origin_px + span_px})"
        )
    px = np.arange(start_px, end_px, dtype=np.int64)
    return (px - origin_px) * n_cells // span_px


def render_heatmap_block(
    values: np.ndarray,
    colormap: DivergingColormap,
    *,
    x: int,
    y: int,
    w: int,
    h: int,
    rx: int,
    ry: int,
    rw: int,
    rh: int,
) -> np.ndarray:
    """Render the intersection of heatmap block (x,y,w,h) with region (rx,ry,rw,rh).

    Returns an (ih, iw, 3) uint8 array for the intersection, or an empty
    array when they do not overlap.  Fully vectorized: one fancy-index
    gather plus one colormap application.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2 or values.size == 0:
        raise RenderError(f"heatmap values must be non-empty 2-D, got shape {values.shape}")
    nrows, ncols = values.shape
    ix0 = max(x, rx)
    iy0 = max(y, ry)
    ix1 = min(x + w, rx + rw)
    iy1 = min(y + h, ry + rh)
    if ix0 >= ix1 or iy0 >= iy1:
        return np.empty((0, 0, 3), dtype=np.uint8)
    col_idx = cell_indices(ix0, ix1, x, w, ncols)
    row_idx = cell_indices(iy0, iy1, y, h, nrows)
    sampled = values[np.ix_(row_idx, col_idx)]
    return colormap.map(sampled)


def draw_heatmap(
    fb: Framebuffer,
    x: int,
    y: int,
    w: int,
    h: int,
    values: np.ndarray,
    colormap: DivergingColormap,
) -> None:
    """Draw a full heatmap block onto a framebuffer (clipped at edges)."""
    block = render_heatmap_block(
        values, colormap, x=x, y=y, w=w, h=h,
        rx=max(x, 0), ry=max(y, 0),
        rw=min(x + w, fb.width) - max(x, 0),
        rh=min(y + h, fb.height) - max(y, 0),
    )
    if block.size:
        fb.blit_array(max(x, 0), max(y, 0), block)
