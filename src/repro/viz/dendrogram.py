"""Dendrogram geometry: a clustering tree to drawable line segments.

Java TreeView draws the gene tree to the left of the heatmap with leaves
pointing right; ForestView keeps that convention.  This module only
computes segments (in absolute canvas coordinates) — actual pixel drawing
goes through the display list so the wall can clip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.tree import DendrogramTree, TreeNode
from repro.util.errors import RenderError

__all__ = ["Segment", "dendrogram_segments"]


@dataclass(frozen=True)
class Segment:
    x0: int
    y0: int
    x1: int
    y1: int


def dendrogram_segments(
    tree: DendrogramTree,
    *,
    x: int,
    y: int,
    w: int,
    h: int,
    orientation: str = "left",
) -> list[Segment]:
    """Segments for ``tree`` drawn in the box (x, y, w, h).

    ``orientation='left'``: root at the left edge, leaves on the right
    edge, leaf k centred in band k of ``h / n_leaves`` (matching heatmap
    row bands).  ``orientation='top'``: root at top, leaves along the
    bottom (used for array trees above the heatmap).
    """
    if orientation not in ("left", "top"):
        raise RenderError(f"orientation must be 'left' or 'top', got {orientation!r}")
    if w < 2 or h < 2:
        raise RenderError(f"dendrogram box too small: {w}x{h}")
    n = tree.n_leaves
    max_height = tree.max_height() or 1.0
    along = h if orientation == "left" else w  # leaf axis extent
    depth_extent = w if orientation == "left" else h  # height axis extent

    # leaf display positions: centre of band k
    order = tree.leaf_order()
    band = {leaf_index: k for k, leaf_index in enumerate(order)}

    pos_cache: dict[int, tuple[float, float]] = {}  # id(node) -> (leaf_coord, depth_coord)
    segments: list[Segment] = []

    def leaf_coord(k: int) -> float:
        return (k + 0.5) * along / n

    def depth_coord(height: float) -> float:
        # leaves (height 0) at full extent; root (max height) at 0
        t = min(max(height / max_height, 0.0), 1.0)
        return (1.0 - t) * (depth_extent - 1)

    def place(node: TreeNode) -> tuple[float, float]:
        key = id(node)
        if key in pos_cache:
            return pos_cache[key]
        if node.is_leaf:
            pos = (leaf_coord(band[node.index]), float(depth_extent - 1))
        else:
            assert node.left is not None and node.right is not None
            l_leaf, l_depth = place(node.left)
            r_leaf, r_depth = place(node.right)
            d = depth_coord(node.height)
            # connector across the two children at this node's depth
            segments.append(_seg(orientation, x, y, l_leaf, d, r_leaf, d))
            # stems from the connector down to each child's own depth
            segments.append(_seg(orientation, x, y, l_leaf, d, l_leaf, l_depth))
            segments.append(_seg(orientation, x, y, r_leaf, d, r_leaf, r_depth))
            pos = ((l_leaf + r_leaf) / 2.0, d)
        pos_cache[key] = pos
        return pos

    root_leaf, root_depth = place(tree.root)
    # root stem to the box edge
    segments.append(_seg(orientation, x, y, root_leaf, root_depth, root_leaf, 0.0))
    return segments


def _seg(
    orientation: str, x: int, y: int, leaf0: float, depth0: float, leaf1: float, depth1: float
) -> Segment:
    """Convert (leaf_axis, depth_axis) coordinates to absolute pixels."""
    if orientation == "left":
        return Segment(
            x0=x + int(depth0), y0=y + int(leaf0), x1=x + int(depth1), y1=y + int(leaf1)
        )
    return Segment(
        x0=x + int(leaf0), y0=y + int(depth0), x1=x + int(leaf1), y1=y + int(depth1)
    )
