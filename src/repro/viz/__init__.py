"""Rendering substrate: framebuffer, colormaps, heatmaps, dendrograms,
bitmap text, layout boxes, and the region-addressable display list.

This package substitutes for the original system's Java/Swing surface
(DESIGN.md §2).  Everything renders into NumPy pixel arrays; the display
list's region rendering is what lets the simulated wall render tiles in
parallel with byte-identical compositing.
"""

from repro.viz.framebuffer import Framebuffer, Color
from repro.viz.colormap import DivergingColormap, COLORMAPS, get_colormap
from repro.viz.heatmap import cell_indices, render_heatmap_block, draw_heatmap
from repro.viz.dendrogram import Segment, dendrogram_segments
from repro.viz.text import draw_text, text_width, render_text_array, GLYPH_WIDTH, GLYPH_HEIGHT
from repro.viz.scene import DisplayList, RectCmd, HeatmapCmd, LineCmd, TextCmd
from repro.viz.layout import Box, hsplit, vsplit, grid_boxes
from repro.viz.ppm import encode_ppm, decode_ppm, write_ppm, read_ppm
from repro.viz.legend import legend_commands

__all__ = [
    "Framebuffer",
    "Color",
    "DivergingColormap",
    "COLORMAPS",
    "get_colormap",
    "cell_indices",
    "render_heatmap_block",
    "draw_heatmap",
    "Segment",
    "dendrogram_segments",
    "draw_text",
    "text_width",
    "render_text_array",
    "GLYPH_WIDTH",
    "GLYPH_HEIGHT",
    "DisplayList",
    "RectCmd",
    "HeatmapCmd",
    "LineCmd",
    "TextCmd",
    "Box",
    "hsplit",
    "vsplit",
    "grid_boxes",
    "encode_ppm",
    "decode_ppm",
    "write_ppm",
    "read_ppm",
    "legend_commands",
]
